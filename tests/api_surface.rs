//! API-surface snapshot for the session and service facades.
//!
//! The unified [`m2m_core::session`] entry points and the multi-tenant
//! [`m2m_core::service`] registry are the crate's outward contract;
//! callers build against them, and the deprecated `run_round*` shims
//! must stay until their removal is deliberate. This pins every `pub`
//! item signature in those two modules against a committed snapshot so
//! any addition, removal, or signature change shows up as a reviewable
//! diff instead of slipping into a release.
//!
//! Regenerate after an intentional surface change with:
//! `UPDATE_GOLDEN=1 cargo test -p m2m-core --test api_surface`

use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the snapshot lives in the
    // workspace-level tests/ directory next to this file.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/api_surface.txt")
}

fn source_path(module: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("src/{module}.rs"))
}

/// Extracts the declaration line of every `pub` item (functions, types,
/// enums, structs, consts, variants excluded) outside `#[cfg(test)]`
/// modules, normalized to single-space tokens. Multi-line signatures are
/// folded up to the opening brace/semicolon so only real signature
/// changes move the snapshot.
fn surface_of(module: &str) -> Vec<String> {
    let path = source_path(module);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut items = Vec::new();
    let mut lines = text.lines().peekable();
    let mut deprecated = false;
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break; // the test module is always last in these files
        }
        if trimmed.starts_with("#[") {
            // Fold a multi-line attribute to its closing bracket so its
            // arguments don't read as a surface-resetting item line.
            let mut attr = trimmed.to_string();
            let balance = |s: &str| {
                s.chars().fold(0i32, |n, c| match c {
                    '[' => n + 1,
                    ']' => n - 1,
                    _ => n,
                })
            };
            let mut depth = balance(&attr);
            while depth > 0 {
                let Some(next) = lines.next() else { break };
                attr.push(' ');
                attr.push_str(next.trim());
                depth += balance(next);
            }
            if attr.starts_with("#[deprecated") {
                deprecated = true;
            }
            continue;
        }
        let is_item = trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub struct ")
            || trimmed.starts_with("pub enum ")
            || trimmed.starts_with("pub const ")
            || trimmed.starts_with("pub type ")
            || trimmed.starts_with("pub trait ");
        if !is_item {
            if !trimmed.starts_with('#') && !trimmed.is_empty() && !trimmed.starts_with("//") {
                deprecated = false;
            }
            continue;
        }
        // Fold the signature until its body opens or the item ends.
        let mut sig = trimmed.to_string();
        while !sig.contains('{') && !sig.ends_with(';') {
            let Some(next) = lines.next() else { break };
            sig.push(' ');
            sig.push_str(next.trim());
        }
        let cut = sig.find('{').map_or(sig.len(), |i| i);
        let mut decl = sig[..cut].trim_end().trim_end_matches(';').to_string();
        decl = decl.split_whitespace().collect::<Vec<_>>().join(" ");
        if deprecated {
            decl = format!("[deprecated] {decl}");
            deprecated = false;
        }
        items.push(format!("{module}: {decl}"));
    }
    items
}

#[test]
fn public_surface_matches_the_committed_snapshot() {
    let mut surface = Vec::new();
    for module in ["session", "service"] {
        surface.extend(surface_of(module));
    }
    let rendered = surface.join("\n") + "\n";

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write api snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "the public API surface of session/service drifted from \
         tests/golden/api_surface.txt (bless intentional changes with \
         UPDATE_GOLDEN=1)"
    );
}
