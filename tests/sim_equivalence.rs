//! Property: three runtimes, one answer — to the bit.
//!
//! The compiled executor ([`m2m_core::exec`]), the discrete-event
//! simulator ([`m2m_core::sim`]), and the table-programmed node automata
//! ([`m2m_core::node_machine`]) execute the same plan through radically
//! different machinery: flat op arrays, an event wheel with bounded
//! per-link queues, and per-node automata exchanging wire messages. At
//! p = 0 all three must produce **bit-identical** per-destination
//! results — same `f64` bits — across every routing mode, any retry
//! policy, and any queue bound / link latency, because all three fold
//! contributions in the same canonical order. Under real loss, the
//! simulator must be a pure function of `(readings, model, policy,
//! salt)`: replays are exact, and the queue bound never changes results
//! (it is pressure accounting, not a drop policy).

use std::collections::BTreeMap;

use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::faults::RetryPolicy;
use m2m_core::node_machine::run_distributed_round;
use m2m_core::plan::GlobalPlan;
use m2m_core::sim::{SimExec, SimParams};
use m2m_core::tables::NodeTables;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{DeliveryModel, Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

fn reading(source: NodeId, round: usize, salt: u64) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    let k = salt as f64;
    (s * 0.91 + r * 1.37 + k * 0.043).sin() * 28.0 + s * 0.01
}

struct Built {
    spec: m2m_core::spec::AggregationSpec,
    plan: GlobalPlan,
    compiled: CompiledSchedule,
    net: Network,
}

fn build(
    place_seed: u64,
    wl_seed: u64,
    dests: usize,
    sources_per: usize,
    mode: RoutingMode,
) -> Built {
    let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
    let spec = generate_workload(
        &net,
        &WorkloadConfig::paper_default(dests, sources_per, wl_seed),
    );
    let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
    let plan = GlobalPlan::build(&net, &spec, &routing);
    let compiled = CompiledSchedule::compile(&net, &spec, &plan).expect("schedulable");
    Built {
        spec,
        plan,
        compiled,
        net,
    }
}

fn mode_of(pick: usize) -> RoutingMode {
    match pick {
        0 => RoutingMode::ShortestPathTrees,
        1 => RoutingMode::SharedSpanningTree,
        _ => RoutingMode::SteinerTrees,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Compiled executor, event simulator, and node automata agree to
    /// the bit at p = 0, for any retry policy and any sim parameters.
    #[test]
    fn three_runtimes_are_bit_identical_when_lossless(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        round_salt in 0u64..1_000_000,
        dest_count in 4usize..10,
        sources_per in 3usize..8,
        mode_pick in 0usize..3,
        knobs in 0u64..1_000_000,
    ) {
        // Pack the sim knobs into one seed: the compat proptest only
        // implements `Strategy` for tuples of up to eight ranges.
        let queue_cap = 1 + (knobs % 63) as u32;
        let latency = 1 + ((knobs >> 6) % 4) as u32;
        let policy_pick = ((knobs >> 9) % 3) as usize;
        let b = build(place_seed, wl_seed, dest_count, sources_per, mode_of(mode_pick));

        let readings_map: BTreeMap<NodeId, f64> = b
            .compiled
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, 0, value_salt)))
            .collect();

        // Runtime 1: the compiled executor.
        let mut state = ExecState::for_schedule(&b.compiled);
        let plain_cost = b.compiled.run_round_on(&readings_map, &mut state);
        let dests: Vec<NodeId> = b.compiled.destinations().collect();
        let exact: Vec<f64> = state.results().to_vec();

        // Runtime 2: the discrete-event simulator, lossless.
        let policy = match policy_pick {
            0 => RetryPolicy::unlimited(100_000),
            1 => RetryPolicy::bounded(0, 0, 100_000),
            _ => RetryPolicy::bounded(6, 3, 100_000),
        };
        let sim = SimExec::with_params(
            &b.net,
            &b.compiled,
            SimParams { queue_cap, latency },
        );
        let mut st = sim.state();
        let out = sim.run_on(&readings_map, &DeliveryModel::reliable(), &policy, round_salt, &mut st);
        prop_assert!(out.outcome.delivered);
        prop_assert_eq!(out.outcome.retransmissions, 0);
        prop_assert_eq!(out.queue_overflows == 0, queue_cap as usize >= out.peak_queue_depth as usize);
        for (i, d) in dests.iter().enumerate() {
            let got = out.outcome.results[i].expect("lossless round delivers");
            prop_assert_eq!(got.to_bits(), exact[i].to_bits(), "sim vs exec at {}", d);
        }
        prop_assert_eq!(out.outcome.cost, plain_cost, "sim cost must be bit-identical");

        // Runtime 3: the node automata, driven purely by their tables.
        let tables = NodeTables::build(&b.spec, &b.plan);
        let round = run_distributed_round(&b.spec, &tables, &readings_map)
            .expect("Theorem 2: no deadlock");
        for (i, d) in dests.iter().enumerate() {
            let got = round.results[d];
            prop_assert_eq!(got.to_bits(), exact[i].to_bits(), "automata vs exec at {}", d);
        }
    }

    /// Under loss the simulator is replayable and queue-bound invariant:
    /// the bound is accounting, never a drop policy.
    #[test]
    fn lossy_sim_rounds_replay_exactly_and_ignore_the_queue_bound(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        base_salt in 0u64..1_000_000,
        p in 0.05f64..0.45,
        mode_pick in 0usize..3,
    ) {
        let b = build(place_seed, wl_seed, 7, 5, mode_of(mode_pick));
        let model = DeliveryModel::uniform(p, place_seed ^ 0xd15c);
        let policy = RetryPolicy::bounded(4, 1, 100_000);
        let readings_map: BTreeMap<NodeId, f64> = b
            .compiled
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, 1, value_salt)))
            .collect();

        let roomy = SimExec::with_params(&b.net, &b.compiled, SimParams { queue_cap: 1024, latency: 1 });
        let tight = SimExec::with_params(&b.net, &b.compiled, SimParams { queue_cap: 1, latency: 1 });
        let mut st_roomy = roomy.state();
        let mut st_tight = tight.state();
        let a = roomy.run_on(&readings_map, &model, &policy, base_salt, &mut st_roomy);
        let c = tight.run_on(&readings_map, &model, &policy, base_salt, &mut st_tight);
        prop_assert_eq!(&a.outcome, &c.outcome, "queue bound must not change outcomes");
        prop_assert!(c.queue_overflows >= a.queue_overflows);

        // Replay through the same warm state: identical outcome, bit for bit.
        let replay = roomy.run_on(&readings_map, &model, &policy, base_salt, &mut st_roomy);
        prop_assert_eq!(&a.outcome, &replay.outcome);
        prop_assert_eq!(a.events, replay.events);
        prop_assert_eq!(a.ticks, replay.ticks);
    }
}
