//! Property: the lane-batched executor is bit-identical to the scalar
//! round.
//!
//! [`m2m_core::exec::CompiledSchedule::run_rounds_batched`] executes `W`
//! independent rounds per pass with the round index as the fastest-moving
//! lane dimension. Lanes are whole rounds — within-round op order and
//! merge association are untouched — so every written result must carry
//! the **exact `f64` bits** of a scalar
//! [`run_round`](m2m_core::exec::CompiledSchedule::run_round) of the same
//! readings: across every aggregate kind (including the multi-component
//! `WeightedVariance`, `Range`, and the log-space `GeometricMean`), all
//! three routing modes, every supported lane width, 1/2/8 worker threads,
//! ragged tails (`rounds % W != 0`), and NaN/±inf readings (comparisons
//! go through `to_bits`, since `NaN != NaN` under `PartialEq`).

use m2m_core::agg::{AggregateFunction, AggregateKind};
use m2m_core::exec::{
    run_epochs, run_epochs_slab, CompiledSchedule, ExecState, SUPPORTED_LANE_WIDTHS,
};
use m2m_core::plan::GlobalPlan;
use m2m_core::spec::AggregationSpec;
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

const KINDS: [AggregateKind; 8] = [
    AggregateKind::WeightedSum,
    AggregateKind::WeightedAverage,
    AggregateKind::WeightedVariance,
    AggregateKind::Min,
    AggregateKind::Max,
    AggregateKind::Count,
    AggregateKind::Range,
    AggregateKind::GeometricMean,
];

/// Splitmix-style deterministic index stream for spec construction.
struct Pick(u64);

impl Pick {
    fn next(&mut self, m: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % m
    }
}

/// A workload where every destination runs `kind`, with distinct sources
/// and positive weights (GeometricMean requires positive weight sums).
fn build_spec(
    net: &Network,
    kind: AggregateKind,
    dest_count: usize,
    sources_per: usize,
    seed: u64,
) -> AggregationSpec {
    let nodes: Vec<NodeId> = net.nodes().collect();
    let mut pick = Pick(seed);
    let mut spec = AggregationSpec::new();
    for _ in 0..dest_count {
        let dest = nodes[pick.next(nodes.len())];
        let start = pick.next(nodes.len());
        let stride = 1 + pick.next(7);
        let mut pairs: Vec<(NodeId, f64)> = Vec::new();
        for k in 0..sources_per {
            let s = nodes[(start + k * stride) % nodes.len()];
            if pairs.iter().all(|&(p, _)| p != s) {
                pairs.push((s, 0.5 + pick.next(200) as f64 / 100.0));
            }
        }
        spec.add_function(dest, AggregateFunction::new(kind, pairs));
    }
    spec
}

/// Deterministic readings: strictly positive for `GeometricMean` (its
/// pre-aggregation asserts positivity), NaN/±inf sprinkled in for every
/// other kind to pin down lane-vs-scalar float semantics.
fn reading(kind: AggregateKind, slot: usize, round: usize, salt: u64) -> f64 {
    let base = ((slot as f64) * 0.59 + (round as f64) * 1.33 + (salt as f64) * 0.091).sin() * 30.0
        - slot as f64 * 0.04;
    if kind == AggregateKind::GeometricMean {
        return base.abs() + 0.125;
    }
    match (slot * 13 + round * 29 + salt as usize) % 23 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => base,
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_rounds_match_scalar_bit_for_bit(
        place_seed in 0u64..10_000,
        spec_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        mode_pick in 0usize..3,
        dest_count in 3usize..9,
        sources_per in 3usize..8,
        round_count in 1usize..20,
    ) {
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        for kind in KINDS {
        let spec = build_spec(&net, kind, dest_count, sources_per, spec_seed);
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan)
            .expect("plan must be schedulable");

        let slots = compiled.sources().len();
        let dests = compiled.destination_count();
        let rounds: Vec<Vec<f64>> = (0..round_count)
            .map(|r| (0..slots).map(|s| reading(kind, s, r, value_salt)).collect())
            .collect();

        // The oracle: one scalar run_round per reading row.
        let mut scalar = ExecState::for_schedule(&compiled);
        let mut expected: Vec<f64> = Vec::with_capacity(round_count * dests);
        for row in &rounds {
            scalar.readings_mut().copy_from_slice(row);
            compiled.run_round(&mut scalar);
            expected.extend_from_slice(scalar.results());
        }
        let expected_bits = bits(&expected);

        // Every lane width, including ragged tails (round_count % W != 0).
        for width in SUPPORTED_LANE_WIDTHS {
            let mut state = ExecState::batched(&compiled, width);
            let mut out = vec![0.0; round_count * dests];
            let cost = compiled.run_rounds_batched(&rounds, &mut state, &mut out);
            prop_assert_eq!(cost, compiled.round_cost());
            prop_assert_eq!(&bits(&out), &expected_bits, "width = {}", width);

            // The chunked fan-out at every thread count, same width.
            for threads in [1usize, 2, 8] {
                let slab = run_epochs_slab(&compiled, &rounds, width, threads);
                prop_assert_eq!(
                    &bits(slab.results()),
                    &expected_bits,
                    "width = {}, threads = {}",
                    width,
                    threads
                );
                prop_assert_eq!(slab.cost(), compiled.round_cost());
                prop_assert_eq!(slab.rounds(), round_count);
            }
        }

        // The compatibility shape batches at the default width.
        for threads in [1usize, 2, 8] {
            let outcomes = run_epochs(&compiled, &rounds, threads);
            prop_assert_eq!(outcomes.len(), round_count);
            for (r, outcome) in outcomes.iter().enumerate() {
                prop_assert_eq!(
                    &bits(&outcome.results),
                    &expected_bits[r * dests..(r + 1) * dests].to_vec(),
                    "round = {}, threads = {}",
                    r,
                    threads
                );
                prop_assert_eq!(outcome.cost, compiled.round_cost());
            }
        }
        }
    }
}
