//! End-to-end correctness: for every algorithm, routing mode, aggregate
//! kind, and a spread of random workloads, the value delivered at every
//! destination equals the out-of-network reference computation, and the
//! schedule obeys the paper's structural claims (one message per edge,
//! acyclic wait-for).

use std::collections::BTreeMap;

use m2m_core::agg::AggregateKind;
use m2m_core::baselines::{plan_for_algorithm, Algorithm};
use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::metrics::RoundCost;
use m2m_core::plan::GlobalPlan;
use m2m_core::spec::AggregationSpec;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

struct Round {
    results: BTreeMap<NodeId, f64>,
    cost: RoundCost,
}

/// One round on the compiled executor (the public execution surface).
fn execute_round(
    net: &Network,
    spec: &AggregationSpec,
    plan: &GlobalPlan,
    readings: &BTreeMap<NodeId, f64>,
) -> Round {
    let compiled = CompiledSchedule::compile(net, spec, plan).expect("plan must be schedulable");
    let mut state = ExecState::for_schedule(&compiled);
    let cost = compiled.run_round_on(readings, &mut state);
    Round {
        results: state.result_map(&compiled),
        cost,
    }
}

fn readings_for(net: &Network, salt: u64) -> BTreeMap<NodeId, f64> {
    net.nodes()
        .map(|v| {
            let x = (u64::from(v.0) * 2654435761 + salt * 40503) % 1000;
            (v, x as f64 / 10.0 - 50.0)
        })
        .collect()
}

#[test]
fn all_algorithms_all_modes_match_reference() {
    let net = Network::with_default_energy(Deployment::great_duck_island(6));
    for seed in [1u64, 2, 3] {
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 12, seed));
        let readings = readings_for(&net, seed);
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            for alg in Algorithm::PLANNED {
                let plan = plan_for_algorithm(&net, &spec, &routing, alg);
                plan.validate(&spec, &routing)
                    .unwrap_or_else(|e| panic!("{seed}/{mode:?}/{}: {e}", alg.name()));
                let round = execute_round(&net, &spec, &plan, &readings);
                assert_eq!(round.results.len(), spec.destination_count());
                for (d, f) in spec.functions() {
                    let expected = f.reference_result(&readings);
                    let got = round.results[&d];
                    assert!(
                        (got - expected).abs() < 1e-9,
                        "{seed}/{mode:?}/{}: dest {d} got {got}, want {expected}",
                        alg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn every_aggregate_kind_survives_the_full_pipeline() {
    let net = Network::with_default_energy(Deployment::great_duck_island(9));
    let readings = readings_for(&net, 5);
    for kind in [
        AggregateKind::WeightedSum,
        AggregateKind::WeightedAverage,
        AggregateKind::WeightedVariance,
        AggregateKind::Min,
        AggregateKind::Max,
        AggregateKind::Count,
        AggregateKind::Range,
    ] {
        let spec = generate_workload(
            &net,
            &WorkloadConfig {
                kind,
                ..WorkloadConfig::paper_default(8, 10, 33)
            },
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
        let round = execute_round(&net, &spec, &plan, &readings);
        for (d, f) in spec.functions() {
            let expected = f.reference_result(&readings);
            assert!(
                (round.results[&d] - expected).abs() < 1e-9,
                "{kind:?}: dest {d}"
            );
        }
    }
}

#[test]
fn geometric_mean_end_to_end_on_positive_readings() {
    let net = Network::with_default_energy(Deployment::great_duck_island(9));
    let readings: BTreeMap<NodeId, f64> = net
        .nodes()
        .map(|v| (v, 1.0 + f64::from(v.0 % 17)))
        .collect();
    let spec = generate_workload(
        &net,
        &WorkloadConfig {
            kind: AggregateKind::GeometricMean,
            ..WorkloadConfig::paper_default(8, 10, 33)
        },
    );
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    let round = execute_round(&net, &spec, &plan, &readings);
    for (d, f) in spec.functions() {
        let expected = f.reference_result(&readings);
        assert!(
            (round.results[&d] - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "dest {d}"
        );
    }
}

#[test]
fn one_message_per_edge_as_in_the_paper() {
    // "for all our experiments, our approach only sends one message per
    // multicast tree edge, regardless of the number of trees sharing this
    // edge" (§3).
    let net = Network::with_default_energy(Deployment::great_duck_island(12));
    for seed in [4u64, 5] {
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(20, 20, seed));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
        let schedule = m2m_core::schedule::build_schedule(&spec, &plan).unwrap();
        assert_eq!(schedule.max_messages_on_any_edge(), 1, "seed {seed}");
        // Theorem 2 witnessed by the topological order's existence.
        assert_eq!(schedule.topo_order.len(), schedule.units.len());
    }
}

#[test]
fn uniform_source_selection_end_to_end() {
    // The Figure 6 style workload (sources uniform over the network)
    // exercises long routes; results must still be exact.
    let net =
        Network::with_default_energy(Deployment::connected_uniform(80, 130.0, 220.0, 50.0, 44));
    let spec = generate_workload(
        &net,
        &WorkloadConfig {
            selection: SourceSelection::Uniform,
            ..WorkloadConfig::paper_default(20, 12, 3)
        },
    );
    let readings = readings_for(&net, 77);
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    let round = execute_round(&net, &spec, &plan, &readings);
    for (d, f) in spec.functions() {
        assert!((round.results[&d] - f.reference_result(&readings)).abs() < 1e-9);
    }
}

#[test]
fn distributed_automata_agree_with_central_runtime() {
    // The event-driven node machines (driven solely by the §3 tables)
    // must produce exactly the central runtime's results, for every
    // algorithm and routing mode.
    use m2m_core::node_machine::run_distributed_round;
    use m2m_core::tables::NodeTables;
    let net = Network::with_default_energy(Deployment::great_duck_island(18));
    for seed in [2u64, 9] {
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 12, seed));
        let readings = readings_for(&net, seed);
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            for alg in Algorithm::PLANNED {
                let plan = plan_for_algorithm(&net, &spec, &routing, alg);
                let central = execute_round(&net, &spec, &plan, &readings);
                let tables = NodeTables::build(&spec, &plan);
                let distributed = run_distributed_round(&spec, &tables, &readings)
                    .unwrap_or_else(|e| panic!("{seed}/{mode:?}/{}: {e}", alg.name()));
                for (d, _) in spec.functions() {
                    assert!(
                        (central.results[&d] - distributed.results[&d]).abs() < 1e-9,
                        "{seed}/{mode:?}/{}: dest {d} central {} vs distributed {}",
                        alg.name(),
                        central.results[&d],
                        distributed.results[&d]
                    );
                }
                // Same traffic: one wire message per active plan edge.
                assert_eq!(distributed.messages.len(), plan.solutions().len());
            }
        }
    }
}

#[test]
fn energy_accounting_is_internally_consistent() {
    let net = Network::with_default_energy(Deployment::great_duck_island(15));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 15, 6));
    let readings = readings_for(&net, 9);
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    let round = execute_round(&net, &spec, &plan, &readings);
    // Payload bytes in the cost equal the plan's payload accounting.
    assert_eq!(round.cost.payload_bytes, plan.total_payload_bytes());
    assert_eq!(round.cost.units, plan.total_units());
    // Energy is at least per-byte cost of all payload, plus headers.
    let e = net.energy();
    let floor = round.cost.payload_bytes as f64 * (e.tx_uj_per_byte + e.rx_uj_per_byte);
    assert!(round.cost.total_uj() > floor);
}
