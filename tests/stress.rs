//! Stress tests: larger networks, heavier workloads, and long churn
//! sequences. These are sized to stay fast in debug builds while pushing
//! well past the unit tests' scale.

use std::collections::BTreeMap;

use m2m_core::baselines::{plan_for_algorithm, Algorithm};
use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::node_machine::run_distributed_round;
use m2m_core::schedule::build_schedule;
use m2m_core::tables::NodeTables;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

#[test]
fn hundred_fifty_node_network_end_to_end() {
    let deployment = Deployment::scaled_series(&[150], 3).remove(0);
    let net = Network::with_default_energy(deployment);
    let n = net.node_count();
    let spec = generate_workload(
        &net,
        &WorkloadConfig {
            selection: SourceSelection::Uniform,
            ..WorkloadConfig::paper_default(n / 4, (n * 15) / 100, 8)
        },
    );
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    plan.validate(&spec, &routing).unwrap();
    let readings: BTreeMap<NodeId, f64> = net
        .nodes()
        .map(|v| (v, f64::from(v.0) * 0.3 - 20.0))
        .collect();
    let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
    let mut state = ExecState::for_schedule(&compiled);
    compiled.run_round_on(&readings, &mut state);
    let results = state.result_map(&compiled);
    for (d, f) in spec.functions() {
        assert!((results[&d] - f.reference_result(&readings)).abs() < 1e-9);
    }
    // The distributed automata agree at this scale too.
    let tables = NodeTables::build(&spec, &plan);
    let distributed = run_distributed_round(&spec, &tables, &readings).unwrap();
    for (d, _) in spec.functions() {
        assert!((results[&d] - distributed.results[&d]).abs() < 1e-9);
    }
}

#[test]
fn dense_workload_every_node_is_a_destination() {
    // Figure 3's rightmost point: every node a destination, heavy trees.
    let net = Network::with_default_energy(Deployment::great_duck_island(40));
    let n = net.node_count();
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(n, 20, 2));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    plan.validate(&spec, &routing).unwrap();
    let schedule = build_schedule(&spec, &plan).unwrap();
    // Theorem 2: units on an edge merge into one message unless a
    // wait-for cycle forces a split, which dense shortest-path-tree
    // workloads occasionally do. Perfect merging must still be the
    // overwhelmingly common case.
    assert!(schedule.max_messages_on_any_edge() <= 2);
    let mut per_edge: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    for m in &schedule.messages {
        *per_edge.entry(m.edge).or_default() += 1;
    }
    let merged = per_edge.values().filter(|&&c| c == 1).count();
    assert!(
        merged * 10 >= per_edge.len() * 9,
        "only {merged}/{} edges fully merged",
        per_edge.len()
    );
    // Every node participates.
    let mut touched = vec![false; n];
    for m in &schedule.messages {
        touched[m.edge.0.index()] = true;
        touched[m.edge.1.index()] = true;
    }
    assert!(touched.iter().filter(|&&t| t).count() >= n * 9 / 10);
}

#[test]
fn twenty_update_churn_sequence_stays_consistent() {
    let net = Network::with_default_energy(Deployment::great_duck_island(51));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 5));
    let mut maintainer = PlanMaintainer::new(net.clone(), spec, RoutingMode::ShortestPathTrees);

    // A deterministic pseudo-random churn stream.
    let mut state = 0x1234_5678u64;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for step in 0..20 {
        let dests: Vec<NodeId> = maintainer.spec().destinations().collect();
        let d = dests[next(dests.len() as u64) as usize];
        let f = maintainer.spec().function(d).unwrap().clone();
        let update = if f.source_count() > 3 && next(2) == 0 {
            let victims: Vec<NodeId> = f.sources().collect();
            WorkloadUpdate::RemoveSource {
                destination: d,
                source: victims[next(victims.len() as u64) as usize],
            }
        } else {
            let candidates: Vec<NodeId> = net
                .nodes()
                .filter(|&s| !f.has_source(s) && s != d)
                .collect();
            WorkloadUpdate::AddSource {
                destination: d,
                source: candidates[next(candidates.len() as u64) as usize],
                weight: 1.0 + next(5) as f64 * 0.25,
            }
        };
        let stats = maintainer.apply(update);
        assert!(stats.edges_total() > 0, "step {step} emptied the plan");
        maintainer
            .plan()
            .validate(maintainer.spec(), maintainer.routing())
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        // Incremental result matches a from-scratch rebuild.
        let scratch =
            m2m_core::plan::GlobalPlan::build(&net, maintainer.spec(), maintainer.routing());
        assert_eq!(
            maintainer.plan().total_payload_bytes(),
            scratch.total_payload_bytes(),
            "step {step}: incremental diverged from scratch"
        );
    }
}

#[test]
fn long_suppression_run_is_stable() {
    use m2m_core::plan::GlobalPlan;
    use m2m_core::suppression::{OverridePolicy, SuppressionSim};
    let net = Network::with_default_energy(Deployment::great_duck_island(60));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(15, 15, 6));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
    // 200 rounds at several probabilities; costs must be finite, ordered,
    // and reproducible.
    let mut last = 0.0;
    for p in [0.1, 0.3, 0.6, 0.9] {
        let a = sim.average_cost(&spec, p, 200, OverridePolicy::Medium, 99);
        let b = sim.average_cost(&spec, p, 200, OverridePolicy::Medium, 99);
        assert!(
            (a.total_uj() - b.total_uj()).abs() < 1e-9,
            "p={p} not reproducible"
        );
        assert!(a.total_uj().is_finite() && a.total_uj() >= last);
        last = a.total_uj();
    }
}
