//! Integration tests pinning the paper's worked example (Figures 1–2) and
//! the qualitative shape of every evaluation figure (Figures 3–7).
//!
//! Absolute energies depend on radio constants; what these tests pin is
//! who wins where — the relationships the paper's text calls out.

use std::collections::BTreeSet;

use m2m_core::agg::AggregateFunction;
use m2m_core::baselines::{flood_round_cost, plan_for_algorithm, Algorithm};
use m2m_core::plan::GlobalPlan;
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::suppression::{OverridePolicy, SuppressionSim};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::{Graph, NodeId};
use m2m_netsim::{Deployment, EnergyModel, Network, RoutingMode, RoutingTables};

/// Average round energy (mJ) of an algorithm on a workload.
fn energy_mj(net: &Network, spec: &AggregationSpec, alg: Algorithm) -> f64 {
    if alg == Algorithm::Flood {
        return flood_round_cost(net, spec).total_mj();
    }
    let routing = RoutingTables::build(
        net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(net, spec, &routing, alg);
    build_schedule(spec, &plan)
        .expect("schedulable")
        .round_cost(net.energy())
        .total_mj()
}

fn gdi() -> Network {
    Network::with_default_energy(Deployment::great_duck_island(1))
}

/// Figure 1(C) / Figure 2: the worked example's optimal plan for edge
/// i→j is raw {a} plus partial records for {k, l} — three message units.
#[test]
fn figure_1c_and_2_worked_example() {
    let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    let (i, j) = (NodeId(4), NodeId(5));
    let (k, l, m) = (NodeId(6), NodeId(7), NodeId(8));
    let mut graph = Graph::new(9);
    for s in [a, b, c, d] {
        graph.add_edge(s, i);
    }
    graph.add_edge(i, j);
    for t in [k, l, m] {
        graph.add_edge(j, t);
    }
    let net = Network::from_graph(graph, EnergyModel::mica2());
    let mut spec = AggregationSpec::new();
    spec.add_function(
        k,
        AggregateFunction::weighted_sum([(a, 1.0), (b, 1.0), (c, 1.0), (d, 1.0)]),
    );
    spec.add_function(
        l,
        AggregateFunction::weighted_sum([(a, 1.0), (b, 1.0), (c, 1.0)]),
    );
    spec.add_function(m, AggregateFunction::weighted_sum([(a, 1.0)]));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    plan.validate(&spec, &routing).unwrap();

    let sol = plan.solution((i, j)).expect("edge i->j exists");
    assert_eq!(sol.raw, vec![a], "v_a travels raw (it serves k, l, and m)");
    let record_dests: Vec<NodeId> = sol.agg.iter().map(|g| g.destination).collect();
    assert_eq!(record_dests, vec![k, l], "records for k and l");
    assert_eq!(sol.unit_count(), 3, "total message size three (§2.2)");

    // Figure 1(A) sub-case: i's upstream edges each carry one raw value.
    for s in [a, b, c, d] {
        let up = plan.solution((s, i)).unwrap();
        assert_eq!(up.raw, vec![s]);
        assert!(up.agg.is_empty());
    }
}

/// Figure 3: (i) at few destinations aggregation beats multicast, (ii) at
/// many destinations multicast beats aggregation, (iii) optimal beats
/// both everywhere and its margin grows, (iv) flood is far worse at light
/// workloads but approaches the baselines at the heaviest.
#[test]
fn figure_3_shape() {
    let net = gdi();
    let n = net.node_count();
    let light = generate_workload(&net, &WorkloadConfig::paper_default(n / 10, 20, 11));
    let heavy = generate_workload(&net, &WorkloadConfig::paper_default(n, 20, 11));

    let opt_l = energy_mj(&net, &light, Algorithm::Optimal);
    let mc_l = energy_mj(&net, &light, Algorithm::Multicast);
    let ag_l = energy_mj(&net, &light, Algorithm::Aggregation);
    let fl_l = energy_mj(&net, &light, Algorithm::Flood);
    assert!(
        ag_l <= mc_l * 1.02,
        "few destinations: aggregation ≈ or beats multicast"
    );
    assert!(opt_l <= mc_l && opt_l <= ag_l);
    assert!(
        fl_l > 3.0 * opt_l,
        "flood is much more expensive on light workloads"
    );

    let opt_h = energy_mj(&net, &heavy, Algorithm::Optimal);
    let mc_h = energy_mj(&net, &heavy, Algorithm::Multicast);
    let ag_h = energy_mj(&net, &heavy, Algorithm::Aggregation);
    let fl_h = energy_mj(&net, &heavy, Algorithm::Flood);
    assert!(
        mc_h < ag_h,
        "many destinations: multicast beats aggregation"
    );
    assert!(opt_h < mc_h && opt_h < ag_h);
    assert!(
        fl_h < ag_h * 1.1,
        "at the heaviest workload flood approaches the baselines"
    );

    // Optimal's absolute advantage grows with the workload.
    assert!(mc_h - opt_h > mc_l - opt_l);
}

/// Figure 4: multicast wins at the fewest sources per destination;
/// aggregation catches up as sources (and thus convergence) grow.
#[test]
fn figure_4_shape() {
    let net = gdi();
    let n = net.node_count();
    let few = generate_workload(&net, &WorkloadConfig::paper_default(n / 5, 5, 13));
    let many = generate_workload(&net, &WorkloadConfig::paper_default(n / 5, 40, 13));

    let mc_few = energy_mj(&net, &few, Algorithm::Multicast);
    let ag_few = energy_mj(&net, &few, Algorithm::Aggregation);
    assert!(
        mc_few < ag_few,
        "fewest sources: multicast beats aggregation"
    );

    let mc_many = energy_mj(&net, &many, Algorithm::Multicast);
    let ag_many = energy_mj(&net, &many, Algorithm::Aggregation);
    // Aggregation's relative position improves with more sources.
    assert!(ag_many / mc_many < ag_few / mc_few);

    for spec in [&few, &many] {
        let opt = energy_mj(&net, spec, Algorithm::Optimal);
        assert!(opt <= energy_mj(&net, spec, Algorithm::Multicast));
        assert!(opt <= energy_mj(&net, spec, Algorithm::Aggregation));
    }
}

/// Figure 5: optimal dominates across the whole dispersion range.
#[test]
fn figure_5_shape() {
    let net = gdi();
    let n = net.node_count();
    for tenths in [0u32, 5, 10] {
        let d = f64::from(tenths) / 10.0;
        let spec = generate_workload(
            &net,
            &WorkloadConfig {
                selection: m2m_core::workload::SourceSelection::Dispersion {
                    dispersion: d,
                    max_hops: 4,
                },
                ..WorkloadConfig::paper_default(n / 5, 20, 17)
            },
        );
        let opt = energy_mj(&net, &spec, Algorithm::Optimal);
        assert!(opt <= energy_mj(&net, &spec, Algorithm::Multicast));
        assert!(opt <= energy_mj(&net, &spec, Algorithm::Aggregation));
    }
}

/// Figure 6: optimal's advantage grows with network size.
#[test]
fn figure_6_shape() {
    let series = Deployment::scaled_series(&[50, 150], 5);
    let mut advantage = Vec::new();
    for deployment in series {
        let net = Network::with_default_energy(deployment);
        let n = net.node_count();
        let spec = generate_workload(
            &net,
            &WorkloadConfig {
                selection: m2m_core::workload::SourceSelection::Uniform,
                ..WorkloadConfig::paper_default(n / 4, (n * 15) / 100, 19)
            },
        );
        let opt = energy_mj(&net, &spec, Algorithm::Optimal);
        let mc = energy_mj(&net, &spec, Algorithm::Multicast);
        let ag = energy_mj(&net, &spec, Algorithm::Aggregation);
        assert!(opt <= mc && opt <= ag);
        advantage.push(mc.min(ag) - opt);
    }
    assert!(
        advantage[1] > advantage[0],
        "larger network, larger absolute savings: {advantage:?}"
    );
}

/// Figure 7: override saves energy at low change probability; the
/// aggressive policy degrades (relative to itself) as changes become
/// frequent, while conservative stays close to the default plan.
#[test]
fn figure_7_shape() {
    let net = gdi();
    let n = net.node_count();
    let spec = generate_workload(&net, &WorkloadConfig::paper_default((n * 3) / 10, 25, 23));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    let sim = SuppressionSim::new(&net, &spec, &routing, &plan);

    let improvement = |p: f64, policy: OverridePolicy| -> f64 {
        let base = sim.average_cost(&spec, p, 20, OverridePolicy::None, 99);
        let with = sim.average_cost(&spec, p, 20, policy, 99);
        (base.total_uj() - with.total_uj()) / base.total_uj() * 100.0
    };

    let aggr_low = improvement(0.05, OverridePolicy::Aggressive);
    let aggr_high = improvement(0.3, OverridePolicy::Aggressive);
    assert!(
        aggr_low > 0.0,
        "aggressive override saves at low p ({aggr_low:.1}%)"
    );
    assert!(
        aggr_high < aggr_low,
        "aggressive degrades at high p ({aggr_high:.1}% vs {aggr_low:.1}%)"
    );
    let cons_high = improvement(0.3, OverridePolicy::Conservative);
    assert!(
        cons_high >= aggr_high,
        "conservative degrades less than aggressive at high p"
    );

    // Suppression itself: fewer changes, less energy.
    let any: BTreeSet<NodeId> = spec.all_sources().into_iter().take(2).collect();
    let tiny = sim.round_cost(&any, OverridePolicy::None);
    let all: BTreeSet<NodeId> = spec.all_sources().into_iter().collect();
    let full = sim.round_cost(&all, OverridePolicy::None);
    assert!(tiny.total_uj() < full.total_uj());
}
