//! Property: the multi-tenant plan service never perturbs a tenant.
//!
//! [`PlanService`] shares one deployment, interned routing substrates,
//! and a cross-tenant solve cache ([`m2m_core::memo::SharedSolveCache`])
//! across every admitted query. Corollary 1 makes the per-edge solves
//! pure, so all that sharing must be *unobservable* from inside any one
//! tenant: its plan slab and its round results must be bit-identical to
//! a [`Session`] built in isolation over the same network — for every
//! routing mode, at every thread count, no matter which other tenants
//! were admitted first. Checkpoint/restore must preserve the same
//! guarantee: a restored service replays the original's rounds
//! bit-for-bit from the persisted salt cursors, with zero fresh solves.

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_core::config::{Config, Runtime};
use m2m_core::service::{PlanService, TenantId, TenantOptions};
use m2m_core::session::Session;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode};
use proptest::prelude::*;

const MODES: [RoutingMode; 3] = [
    RoutingMode::ShortestPathTrees,
    RoutingMode::SharedSpanningTree,
    RoutingMode::SteinerTrees,
];

fn readings(net: &Network, salt: u64) -> BTreeMap<NodeId, f64> {
    net.nodes()
        .map(|v| {
            let x = f64::from(v.0) * 0.61 + salt as f64 * 0.137;
            (v, x.sin() * 25.0 + f64::from(v.0) * 0.01)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N random specs admitted through one service match N isolated
    /// sessions — plans and round results bit-identical — across all
    /// three routing modes and thread counts 1/2/8.
    #[test]
    fn admitted_tenants_match_isolated_sessions(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        mode_idx in 0usize..3,
        dest_count in 4usize..9,
        sources_per in 3usize..7,
        tenant_count in 2usize..5,
    ) {
        let mode = MODES[mode_idx];
        let net = Arc::new(Network::with_default_energy(
            Deployment::great_duck_island(place_seed),
        ));
        let specs: Vec<_> = (0..tenant_count as u64)
            .map(|i| {
                generate_workload(
                    &net,
                    &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed + i),
                )
            })
            .collect();
        let vals = readings(&net, place_seed);

        for threads in [1usize, 2, 8] {
            let config = Config::builder().threads(threads).build();
            let mut svc = PlanService::with_config(Arc::clone(&net), config.clone());
            let ids: Vec<TenantId> = specs
                .iter()
                .map(|spec| {
                    svc.admit_with(
                        spec.clone(),
                        TenantOptions { mode, ..TenantOptions::default() },
                    )
                    .tenant
                })
                .collect();
            for (spec, &id) in specs.iter().zip(&ids) {
                let mut isolated = Session::builder(Arc::clone(&net), spec.clone())
                    .routing_mode(mode)
                    .config(config.clone())
                    .build();
                prop_assert_eq!(
                    svc.tenant(id).unwrap().driver().maintainer().plan().solutions(),
                    isolated.driver().maintainer().plan().solutions(),
                    "threads {}: tenant {} plan must be bit-identical",
                    threads,
                    id
                );
                let got = svc.run(id, &vals).expect("admitted tenant runs");
                let expect = isolated.run(&vals);
                prop_assert_eq!(
                    got,
                    expect,
                    "threads {}: tenant {} round must be bit-identical",
                    threads,
                    id
                );
            }
            // A clone of the first tenant is served without a single
            // fresh solve — the whole point of the shared substrate.
            let twin = svc.admit_with(
                specs[0].clone(),
                TenantOptions { mode, ..TenantOptions::default() },
            );
            prop_assert!(twin.reused_substrate);
            prop_assert_eq!(twin.solves_fresh, 0u64);
        }
    }

    /// Checkpoint → restore → replay: the restored service resumes every
    /// tenant's salt cursor and replays the original's rounds
    /// bit-identically, without solving anything fresh.
    #[test]
    fn restored_services_replay_bit_identically(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        warmup_rounds in 0usize..4,
        loss_pct in 5u32..35,
    ) {
        let net = Arc::new(Network::with_default_energy(
            Deployment::great_duck_island(place_seed),
        ));
        let delivery = DeliveryModel::uniform(f64::from(loss_pct) / 100.0, 23);
        let mut svc = PlanService::new(Arc::clone(&net));
        let ids: Vec<TenantId> = (0..3u64)
            .map(|i| {
                let spec = generate_workload(
                    &net,
                    &WorkloadConfig::paper_default(5, 4, wl_seed + i),
                );
                svc.admit_with(
                    spec,
                    TenantOptions {
                        runtime: Some(Runtime::Lossy),
                        delivery: delivery.clone(),
                        base_salt: wl_seed ^ 0xa5a5,
                        ..TenantOptions::default()
                    },
                )
                .tenant
            })
            .collect();
        // Advance the tenants' salt streams unevenly before snapshotting.
        let vals = readings(&net, wl_seed);
        for (k, &id) in ids.iter().enumerate() {
            for _ in 0..warmup_rounds + k {
                svc.run(id, &vals).expect("tenant runs");
            }
        }

        let text = svc.checkpoint();
        let mut restored = PlanService::restore(Arc::clone(&net), Config::default(), &text)
            .expect("checkpoint restores");
        prop_assert_eq!(
            restored.solve_cache().lock().unwrap().misses(),
            0,
            "restore must be served entirely from the persisted slabs"
        );
        // Delivery models are runtime config, not plan state: re-apply.
        for &id in &ids {
            restored
                .tenant_mut(id)
                .expect("tenant restored")
                .set_delivery(delivery.clone());
        }
        for &id in &ids {
            prop_assert_eq!(
                restored.tenant(id).unwrap().rounds_run(),
                svc.tenant(id).unwrap().rounds_run(),
                "{} resumes its salt cursor",
                id
            );
            for round in 0..3u64 {
                let a = svc.run(id, &vals).expect("original runs");
                let b = restored.run(id, &vals).expect("restored runs");
                prop_assert_eq!(a, b, "{} round {} replays bit-identically", id, round);
            }
        }
    }
}
