//! ETX-aware routing: when links near the edge of the radio range are
//! lossy, ETX-weighted multicast trees should beat hop-count trees on
//! *expected* transmissions, without giving up plan correctness.

use std::collections::BTreeMap;

use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::plan::GlobalPlan;
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::quality::weighted_routing;
use m2m_netsim::{Deployment, LinkQuality, Network, RoutingMode, RoutingTables};

/// Expected on-air energy of a schedule under per-link loss: each
/// message's unicast cost is scaled by its link's ETX (retransmit until
/// delivered).
fn expected_energy_uj(
    net: &Network,
    schedule: &m2m_core::schedule::Schedule,
    quality: &LinkQuality,
) -> f64 {
    schedule
        .messages
        .iter()
        .map(|m| {
            let body: u32 = m.units.iter().map(|&u| schedule.units[u].size_bytes).sum();
            net.energy().unicast_cost_uj(body) * quality.etx(m.edge.0, m.edge.1)
        })
        .sum()
}

fn setup() -> (Network, AggregationSpec, LinkQuality) {
    let net = Network::with_default_energy(Deployment::great_duck_island(33));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 15, 4));
    let quality = LinkQuality::distance_based(&net, 0.6, 9);
    (net, spec, quality)
}

#[test]
fn etx_routing_reduces_expected_energy_under_loss() {
    // ETX routing is a heuristic: it minimizes expected transmissions per
    // route, while the plan optimizer then minimizes bytes, so on any one
    // random instance hop routing can come out ahead. The claim worth
    // testing is the aggregate one: across instances, ETX-weighted routing
    // spends less expected energy than hop-count routing.
    let mut hop_total = 0.0;
    let mut etx_total = 0.0;
    for seed in 0..6u64 {
        let net = Network::with_default_energy(Deployment::great_duck_island(seed));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 15, 4));
        let quality = LinkQuality::distance_based(&net, 0.6, seed.wrapping_add(9));
        let demands = spec.source_to_destinations();

        let hop_routing = RoutingTables::build(&net, &demands, RoutingMode::ShortestPathTrees);
        let hop_plan = GlobalPlan::build(&net, &spec, &hop_routing);
        let hop_schedule = build_schedule(&spec, &hop_plan).unwrap();

        let etx_routing = weighted_routing(&net, &demands, &quality);
        let etx_plan = GlobalPlan::build(&net, &spec, &etx_routing);
        let etx_schedule = build_schedule(&spec, &etx_plan).unwrap();

        hop_total += expected_energy_uj(&net, &hop_schedule, &quality);
        etx_total += expected_energy_uj(&net, &etx_schedule, &quality);
    }
    assert!(
        etx_total < hop_total,
        "ETX routing ({etx_total:.0} µJ) should beat hop routing ({hop_total:.0} µJ) \
         in aggregate under distance-based loss"
    );
}

#[test]
fn etx_routed_plans_stay_correct() {
    let (net, spec, quality) = setup();
    let routing = weighted_routing(&net, &spec.source_to_destinations(), &quality);
    let plan = GlobalPlan::build(&net, &spec, &routing);
    plan.validate(&spec, &routing).unwrap();
    let readings: BTreeMap<NodeId, f64> = net
        .nodes()
        .map(|v| (v, f64::from(v.0 % 13) - 6.0))
        .collect();
    let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
    let mut state = ExecState::for_schedule(&compiled);
    compiled.run_round_on(&readings, &mut state);
    let results = state.result_map(&compiled);
    for (d, f) in spec.functions() {
        let expected = f.reference_result(&readings);
        assert!((results[&d] - expected).abs() < 1e-9, "dest {d}");
    }
}

#[test]
fn etx_routes_are_never_shorter_than_hop_routes() {
    // Weighted routes may take extra hops to dodge lossy links, never
    // fewer than the hop-optimal count.
    let (net, spec, quality) = setup();
    let demands = spec.source_to_destinations();
    let etx_routing = weighted_routing(&net, &demands, &quality);
    for (s, tree) in etx_routing.trees() {
        for &d in tree.destinations() {
            let hops = tree.path_to(d).unwrap().len() as u32 - 1;
            assert!(hops >= net.hop_distance(s, d).unwrap());
        }
    }
}
