//! The fault-tolerant pipeline end to end, through the [`Session`] facade:
//! injected link outages degrade exactly the demanded sources behind them,
//! bounded retry budgets drop what unlimited budgets deliver, the
//! degradation tracker accumulates per-destination staleness, ETX drift
//! past the configured hysteresis fires the churn loop (reroute →
//! incremental re-plan → recompile), and every retry/hysteresis knob flows
//! from the environment into [`Config`].

use std::collections::BTreeMap;

use m2m_core::config::{
    self, Config, Runtime, BACKOFF_ENV, HYSTERESIS_ENV, MAX_SLOTS_ENV, RETRIES_ENV,
};
use m2m_core::prelude::*;

/// Line network 0-1-2-3-4 with one aggregate at the far end: node 4 sums
/// sources 0 and 3, so killing link 0-1 loses exactly source 0.
fn line_session(config: Config, delivery: DeliveryModel) -> Session {
    let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
    let mut spec = AggregationSpec::new();
    spec.add_function(
        NodeId(4),
        AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(3), 2.0)]),
    );
    Session::builder(net, spec)
        .routing_mode(RoutingMode::ShortestPathTrees)
        .config(config)
        .runtime(Runtime::Lossy)
        .delivery(delivery)
        .build()
}

fn readings_for(session: &Session) -> BTreeMap<NodeId, f64> {
    session
        .network()
        .nodes()
        .map(|v| (v, f64::from(v.0) * 1.5 + 1.0))
        .collect()
}

#[test]
fn an_injected_outage_degrades_exactly_the_sources_behind_it() {
    let trace = FailureTrace::new().down(NodeId(0), NodeId(1), 0, u64::MAX);
    let config = Config::builder().retries(3).max_slots(1_000).build();
    let mut session = line_session(config, DeliveryModel::trace(trace));
    let readings = readings_for(&session);

    let report = session.run(&readings);
    assert!(!report.delivered());
    let out = report.fault().expect("lossy runtime");
    assert!(!out.delivered);
    assert!(out.dropped_messages >= 1);
    assert_eq!(out.degraded_destinations(), 1);

    let cov = &out.coverage[0];
    assert_eq!(cov.destination, NodeId(4));
    assert_eq!(cov.demanded, 2);
    assert_eq!(cov.covered, 1);
    assert_eq!(cov.missing, vec![NodeId(0)]);
    assert!((cov.fraction() - 0.5).abs() < 1e-12);

    // The survivor still aggregates: f_4 = 2·v_3 from what arrived.
    let partial = out.results[0].expect("source 3 still feeds destination 4");
    assert!((partial - 2.0 * readings[&NodeId(3)]).abs() < 1e-9);
}

#[test]
fn bounded_budgets_drop_what_unlimited_budgets_deliver() {
    let lossy = DeliveryModel::uniform(0.45, 99);
    let stingy = Config::builder().retries(1).max_slots(10_000).build();
    let patient = Config::builder().retries(0).max_slots(10_000).build();

    let mut dropped_total = 0usize;
    let mut session = line_session(stingy, lossy.clone());
    let readings = readings_for(&session);
    for _ in 0..20 {
        dropped_total += session
            .run(&readings)
            .fault()
            .expect("lossy runtime")
            .dropped_messages;
    }
    assert!(
        dropped_total > 0,
        "a single attempt at p=0.45 must eventually drop a message"
    );

    let mut session = line_session(patient, lossy);
    let readings = readings_for(&session);
    for _ in 0..20 {
        let report = session.run(&readings);
        let out = report.fault().expect("lossy runtime");
        assert!(out.delivered, "unlimited retries must deliver every round");
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.degraded_destinations(), 0);
    }
}

#[test]
fn the_degradation_tracker_accumulates_staleness_per_destination() {
    let trace = FailureTrace::new().down(NodeId(0), NodeId(1), 0, u64::MAX);
    let config = Config::builder().retries(2).max_slots(1_000).build();
    let mut session = line_session(config, DeliveryModel::trace(trace));
    let readings = readings_for(&session);

    const ROUNDS: u64 = 5;
    for _ in 0..ROUNDS {
        session.run(&readings);
    }
    let tracker = session.degradation();
    assert_eq!(tracker.rounds(), ROUNDS);
    assert_eq!(tracker.staleness(NodeId(4)), ROUNDS);
    assert_eq!(tracker.max_staleness(), ROUNDS);

    // A reliable session never goes stale.
    let config = Config::builder().retries(2).build();
    let mut session = line_session(config, DeliveryModel::reliable());
    let readings = readings_for(&session);
    for _ in 0..ROUNDS {
        session.run(&readings);
    }
    assert_eq!(session.degradation().max_staleness(), 0);
    assert_eq!(session.degradation().rounds(), ROUNDS);
}

#[test]
fn quality_drift_past_hysteresis_fires_the_churn_loop() {
    let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
    let mut spec = AggregationSpec::new();
    spec.add_function(
        NodeId(15),
        AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(2), 1.0), (NodeId(8), 1.0)]),
    );
    spec.add_function(
        NodeId(3),
        AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(12), 1.0)]),
    );
    let baseline = LinkQuality::perfect(&net);
    let config = Config::builder().hysteresis(0.25).build();
    let mut session = Session::builder(net, spec)
        .quality(baseline.clone())
        .config(config)
        .build();
    let recompiles_before = session.driver().recompiles();

    // No drift: the churn controller absorbs the observation.
    assert!(session.observe_quality(&baseline).is_none());
    let churn = session.churn().expect("quality is tracked");
    assert_eq!(churn.reroutes(), 0);
    assert_eq!(churn.suppressed(), 1);

    // Degrade a link the perfect-quality routes rely on far past the
    // hysteresis band (ETX 1 → 2.5, drift 1.5 > 0.25): reroute fires.
    let mut drifted = baseline.clone();
    drifted.set_loss(NodeId(0), NodeId(1), 0.6);
    let stats = session
        .observe_quality(&drifted)
        .expect("drift past hysteresis must reroute");
    assert!(stats.edges_total() > 0);
    assert!(session.driver().recompiles() > recompiles_before);
    let churn = session.churn().expect("quality is tracked");
    assert_eq!(churn.reroutes(), 1);

    // The rebased baseline absorbs the same observation.
    assert!(session.observe_quality(&drifted).is_none());

    // And the rerouted session still computes exact aggregates.
    let readings: BTreeMap<NodeId, f64> = session
        .network()
        .nodes()
        .map(|v| (v, f64::from(v.0) + 0.25))
        .collect();
    let results = session.run(&readings).result_map();
    for (d, v) in &results {
        let expected = session
            .spec()
            .function(*d)
            .unwrap()
            .reference_result(&readings);
        assert!((v - expected).abs() < 1e-9);
    }
}

#[test]
fn retry_and_hysteresis_knobs_flow_from_the_environment() {
    // This is the only test in the workspace touching these variables,
    // and it reads them back synchronously before clearing them.
    std::env::set_var(RETRIES_ENV, "2");
    std::env::set_var(BACKOFF_ENV, "3");
    std::env::set_var(MAX_SLOTS_ENV, "1234");
    std::env::set_var(HYSTERESIS_ENV, "0.5");
    let cfg = Config::from_env();
    std::env::remove_var(RETRIES_ENV);
    std::env::remove_var(BACKOFF_ENV);
    std::env::remove_var(MAX_SLOTS_ENV);
    std::env::remove_var(HYSTERESIS_ENV);

    assert_eq!(cfg.retries(), 2);
    assert_eq!(cfg.backoff_slots(), 3);
    assert_eq!(cfg.max_slots(), 1234);
    assert!((cfg.hysteresis() - 0.5).abs() < 1e-12);
    assert_eq!(cfg.retry_policy(), RetryPolicy::bounded(2, 3, 1234));

    // Unset variables fall back to the documented defaults.
    let cfg = Config::from_env();
    assert_eq!(cfg.retries(), config::DEFAULT_RETRIES);
    assert_eq!(cfg.max_slots(), config::DEFAULT_MAX_SLOTS);
    assert!((cfg.hysteresis() - config::DEFAULT_HYSTERESIS).abs() < 1e-12);
}
