//! Integration tests for the §3 mechanisms: temporal suppression with
//! override, incremental re-optimization (Corollary 1), and milestone
//! routing.

use std::collections::BTreeSet;

use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::milestones::{build_milestone_routing, expected_round_cost, MilestoneConfig};
use m2m_core::plan::GlobalPlan;
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::suppression::{OverridePolicy, SuppressionSim};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn setup(seed: u64) -> (Network, AggregationSpec, RoutingTables, GlobalPlan) {
    let net = Network::with_default_energy(Deployment::great_duck_island(seed));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 12, seed));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    (net, spec, routing, plan)
}

#[test]
fn suppression_full_change_reproduces_static_cost() {
    for seed in [3u64, 8, 21] {
        let (net, spec, routing, plan) = setup(seed);
        let schedule = build_schedule(&spec, &plan).unwrap();
        if schedule.max_messages_on_any_edge() != 1 {
            continue; // the model's one-message-per-edge assumption
        }
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let all: BTreeSet<NodeId> = spec.all_sources().into_iter().collect();
        let supp = sim.round_cost(&all, OverridePolicy::None);
        let stat = schedule.round_cost(net.energy());
        assert_eq!(supp.payload_bytes, stat.payload_bytes, "seed {seed}");
        assert_eq!(supp.messages, stat.messages, "seed {seed}");
        assert!(
            (supp.total_uj() - stat.total_uj()).abs() < 1e-6,
            "seed {seed}"
        );
    }
}

#[test]
fn suppression_cost_is_monotone_in_change_set() {
    let (net, spec, routing, plan) = setup(5);
    let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
    let sources = spec.all_sources();
    let mut previous = 0.0;
    for k in [0usize, 2, 5, 10, sources.len()] {
        let changed: BTreeSet<NodeId> = sources.iter().copied().take(k).collect();
        let cost = sim.round_cost(&changed, OverridePolicy::None).total_uj();
        assert!(cost >= previous, "cost must grow with the change set");
        previous = cost;
    }
}

#[test]
fn override_single_lonely_change_saves_energy() {
    // The paper's motivating case: one changed value whose default plan
    // would spawn several partial records — overriding to raw must not
    // cost more than the default.
    let (net, spec, routing, plan) = setup(13);
    let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
    for s in spec.all_sources().into_iter().take(10) {
        let changed: BTreeSet<NodeId> = [s].into_iter().collect();
        let base = sim.round_cost(&changed, OverridePolicy::None).total_uj();
        let aggr = sim
            .round_cost(&changed, OverridePolicy::Aggressive)
            .total_uj();
        assert!(
            aggr <= base + 1e-9,
            "single-change override must not hurt (source {s}: {aggr} vs {base})"
        );
    }
}

#[test]
fn incremental_updates_match_scratch_builds() {
    let net = Network::with_default_energy(Deployment::great_duck_island(30));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, 4));
    let mut maintainer = PlanMaintainer::new(net.clone(), spec, RoutingMode::ShortestPathTrees);

    // A churn sequence touching every update type.
    let d = maintainer.spec().destinations().nth(2).unwrap();
    let add = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .find(|&s| !maintainer.spec().is_source_of(s, d) && s != d)
        .unwrap();
    let remove = maintainer
        .spec()
        .function(d)
        .unwrap()
        .sources()
        .next()
        .unwrap();
    let fresh = net
        .nodes()
        .find(|&v| maintainer.spec().function(v).is_none())
        .unwrap();
    let fresh_fn = m2m_core::agg::AggregateFunction::weighted_average(
        maintainer
            .spec()
            .all_sources()
            .into_iter()
            .filter(|&s| s != fresh)
            .take(6)
            .map(|s| (s, 1.0))
            .collect::<Vec<_>>(),
    );
    let updates = vec![
        WorkloadUpdate::AddSource {
            destination: d,
            source: add,
            weight: 2.0,
        },
        WorkloadUpdate::RemoveSource {
            destination: d,
            source: remove,
        },
        WorkloadUpdate::AddDestination {
            destination: fresh,
            function: fresh_fn,
        },
        WorkloadUpdate::RemoveDestination { destination: fresh },
    ];
    for update in updates {
        let stats = maintainer.apply(update);
        let scratch = GlobalPlan::build(&net, maintainer.spec(), maintainer.routing());
        assert_eq!(
            maintainer.plan().total_payload_bytes(),
            scratch.total_payload_bytes(),
            "incremental and scratch plans must agree"
        );
        maintainer
            .plan()
            .validate(maintainer.spec(), maintainer.routing())
            .unwrap();
        assert!(stats.edges_total() > 0);
    }
}

#[test]
fn corollary_1_updates_are_local() {
    let net = Network::with_default_energy(Deployment::great_duck_island(42));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 14, 2));
    let mut maintainer = PlanMaintainer::new(net, spec, RoutingMode::ShortestPathTrees);
    let d = maintainer.spec().destinations().next().unwrap();
    let s = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .find(|&s| !maintainer.spec().is_source_of(s, d) && s != d)
        .unwrap();
    let stats = maintainer.apply(WorkloadUpdate::AddSource {
        destination: d,
        source: s,
        weight: 1.0,
    });
    assert!(
        stats.reuse_fraction() >= 0.5,
        "one-pair update should keep most edges: reused {:.0}%",
        stats.reuse_fraction() * 100.0
    );
}

#[test]
fn milestone_trade_off() {
    let (net, spec, routing, _) = setup(18);
    let pinned_cfg = MilestoneConfig {
        spacing: 1,
        detour_overhead: 0.5,
    };
    let flexible_cfg = MilestoneConfig {
        spacing: 3,
        detour_overhead: 0.5,
    };
    let pinned = build_milestone_routing(&net, &routing, &pinned_cfg);
    let flexible = build_milestone_routing(&net, &routing, &flexible_cfg);
    let pinned_plan = GlobalPlan::build_unchecked(&spec, &pinned.routing);
    let flexible_plan = GlobalPlan::build_unchecked(&spec, &flexible.routing);
    pinned_plan.validate(&spec, &pinned.routing).unwrap();
    flexible_plan.validate(&spec, &flexible.routing).unwrap();

    // Fewer milestones ⇒ fewer convergence points ⇒ the *physical*
    // byte·hop volume can only stay equal or grow (a virtual edge's
    // payload is relayed over every physical hop it spans).
    let byte_hops = |plan: &GlobalPlan, m: &m2m_core::milestones::MilestoneRouting| -> u64 {
        plan.iter_solutions()
            .map(|(e, sol)| {
                sol.cost_bytes * u64::from(m.edge_lengths.get(&e).copied().unwrap_or(1))
            })
            .sum()
    };
    assert!(
        byte_hops(&flexible_plan, &flexible) >= byte_hops(&pinned_plan, &pinned),
        "coarser milestones cannot reduce physical payload volume"
    );

    // But pinned routing degrades faster as links get flaky.
    let ratio =
        |plan: &GlobalPlan, m: &m2m_core::milestones::MilestoneRouting, cfg: &MilestoneConfig| {
            let lo = expected_round_cost(plan, m, net.energy(), 0.0, cfg).total_uj();
            let hi = expected_round_cost(plan, m, net.energy(), 0.5, cfg).total_uj();
            hi / lo
        };
    assert!(
        ratio(&pinned_plan, &pinned, &pinned_cfg) > ratio(&flexible_plan, &flexible, &flexible_cfg)
    );
}
