//! Property: the distributed cover solve *is* the centralized one.
//!
//! [`m2m_core::dvc::solve_distributed`] runs the §2.2 per-edge
//! optimization as a three-phase message-passing protocol — demand
//! tokens climbing the trees, purely local per-edge solves over learned
//! record widths, and a descending availability wave for the §2.3
//! repairs. Theorem 1's per-edge decomposability plus the deterministic
//! canonical min-cut mean the composed result must equal the
//! centralized [`m2m_core::plan::GlobalPlan`] slab **exactly** — same
//! problems, same solutions, same repair count — over random
//! deployments, random workloads, and all three routing modes, while
//! converging in diameter-bounded protocol rounds.

use m2m_core::dvc::solve_distributed;
use m2m_core::edge_opt::build_edge_problems;
use m2m_core::plan::GlobalPlan;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_and_centralized_solves_agree_on_random_workloads(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        dest_count in 4usize..14,
        sources_per in 3usize..10,
        mode_pick in 0usize..3,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(&net, &spec, &routing);

        let out = solve_distributed(plan.topology(), &spec);

        // Phase 1 assembled exactly the centralized problems…
        prop_assert_eq!(out.problems, build_edge_problems(plan.topology()));
        // …phases 2+3 converged to exactly the centralized optimum…
        prop_assert!(out.agrees_with(plan.solutions()), "solutions must match bit-for-bit");
        prop_assert_eq!(out.patches, plan.repair_count(), "same §2.3 repair set");
        // …in diameter-bounded rounds with hop-bounded messaging.
        let n = net.node_count() as u64;
        prop_assert!(out.rounds <= n, "rounds {} exceed node count {}", out.rounds, n);
        // Phase 1 sends one token per dest-path hop; the phase-3 wave
        // crosses each tree edge once, and every tree edge lies on at
        // least one dest path — so 2x the hop sum bounds both phases.
        let hop_bound: u64 = 2 * plan
            .topology()
            .trees()
            .iter()
            .flat_map(|t| t.dest_paths())
            .map(|dp| dp.hops().len() as u64)
            .sum::<u64>();
        prop_assert!(out.messages <= hop_bound, "messages {} exceed bound {}", out.messages, hop_bound);
    }
}
