//! Regression: per-worker plane shards flush completely at every
//! thread count.
//!
//! The accumulator planes are shard-per-worker (a
//! [`m2m_core::telemetry::timeseries::NodePlanes`] in each fault
//! scratch / exec state), merged into the global registry when a worker
//! finishes its chunk or drops. A worker whose shard never flushed
//! would under-count silently, and only at `threads > 1` — so the books
//! from a multi-threaded run must equal the single-threaded run's
//! exactly, for both the lossy engine ([`FaultyExec::run_rounds`]) and
//! the compiled slab executor ([`run_epochs_slab`]).
//!
//! One test per file: the obs flag is process global, and a sibling
//! test flipping it concurrently would race.

use m2m_core::exec::{run_epochs_slab, CompiledSchedule, DEFAULT_LANE_WIDTH};
use m2m_core::faults::{FaultyExec, RetryPolicy};
use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::timeseries::{self, NodePlanes};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    (s * 0.61 + round as f64 * 1.19).sin() * 25.0 + s * 0.03
}

/// Runs both executors at `threads` workers and returns the flushed
/// global planes.
fn planes_at(
    compiled: &CompiledSchedule,
    faulty: &FaultyExec,
    batch: &[Vec<f64>],
    threads: usize,
) -> NodePlanes {
    timeseries::reset_planes();
    let outcomes = faulty.run_rounds(
        batch,
        &DeliveryModel::uniform(0.2, 23),
        &RetryPolicy::bounded(4, 1, 10_000),
        0xc0de,
        threads,
    );
    assert!(
        outcomes.iter().map(|o| o.retransmissions).sum::<usize>() > 0,
        "loss model must exercise the retry planes"
    );
    let slab = run_epochs_slab(compiled, batch, DEFAULT_LANE_WIDTH, threads);
    assert_eq!(slab.rounds(), batch.len());
    timeseries::planes_snapshot()
}

#[test]
fn plane_shards_flush_identically_at_any_thread_count() {
    let net = Network::with_default_energy(Deployment::great_duck_island(3));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 8, 3));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    let compiled = CompiledSchedule::compile(&net, &spec, &plan).expect("schedulable plan");
    let faulty = FaultyExec::new(&net, &compiled);
    let batch: Vec<Vec<f64>> = (0..24)
        .map(|round| {
            compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| reading(s, round))
                .collect()
        })
        .collect();

    timeseries::set_obs_enabled(true);
    let serial = planes_at(&compiled, &faulty, &batch, 1);
    assert_eq!(serial.rounds(), 2 * batch.len() as u64);
    for &threads in &[2usize, 4, 8] {
        let parallel = planes_at(&compiled, &faulty, &batch, threads);
        assert_eq!(
            parallel, serial,
            "plane books diverged at {threads} threads"
        );
    }

    // And while disabled, neither executor writes a shard at all.
    timeseries::set_obs_enabled(false);
    let silent = planes_at(&compiled, &faulty, &batch, 4);
    assert!(silent.is_zero(), "disabled planes must stay empty");
    timeseries::reset_planes();
}
