//! The §1 argument for in-network control, measured: out-of-network
//! (base-station) control concentrates traffic near the station, creating
//! the energy bottleneck and shorter network lifetime the paper predicts,
//! while the in-network optimal plan spreads load and — combined with the
//! §3 slot schedule — keeps radios off most of the round.

use m2m_core::baselines::{plan_for_algorithm, Algorithm};
use m2m_core::basestation::{choose_station, BaseStationPlan};
use m2m_core::metrics::{project_lifetime, NodeEnergyLedger};
use m2m_core::schedule::build_schedule;
use m2m_core::slots::assign_slots;
use m2m_core::spec::AggregationSpec;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn setup() -> (Network, AggregationSpec) {
    let net = Network::with_default_energy(Deployment::great_duck_island(21));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(17, 15, 5));
    (net, spec)
}

fn in_network_ledger(net: &Network, spec: &AggregationSpec) -> NodeEnergyLedger {
    let routing = RoutingTables::build(
        net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(net, spec, &routing, Algorithm::Optimal);
    let schedule = build_schedule(spec, &plan).unwrap();
    let mut ledger = NodeEnergyLedger::new(net.node_count());
    schedule.charge_round(net.energy(), &mut ledger);
    ledger
}

#[test]
fn base_station_creates_a_hotspot_in_network_avoids() {
    let (net, spec) = setup();
    let station = choose_station(&net);
    let bs = BaseStationPlan::build(&net, &spec, station);
    let (_, bs_ledger) = bs.round_cost(&net);
    let in_ledger = in_network_ledger(&net, &spec);

    // The bottleneck claim: the station-side hotspot burns more per round
    // than any node under the in-network plan.
    let (bs_hot_node, bs_hot) = bs_ledger.hotspot();
    let (_, in_hot) = in_ledger.hotspot();
    assert!(
        bs_hot > in_hot,
        "base-station hotspot ({bs_hot_node}: {bs_hot:.0} µJ) should exceed \
         in-network hotspot ({in_hot:.0} µJ)"
    );
    // And it sits at or next to the station.
    assert!(net.hop_distance(station, bs_hot_node).unwrap() <= 1);
    // Load is also less evenly spread.
    assert!(bs_ledger.imbalance() > in_ledger.imbalance());
}

#[test]
fn in_network_control_extends_network_lifetime() {
    let (net, spec) = setup();
    let battery_uj = 2.0 * 3600.0 * 3.0 * 1e6; // 2 Ah × 3 V in µJ
    let bs = BaseStationPlan::build(&net, &spec, choose_station(&net));
    let (_, bs_ledger) = bs.round_cost(&net);
    let in_ledger = in_network_ledger(&net, &spec);
    let bs_life = project_lifetime(&bs_ledger, battery_uj);
    let in_life = project_lifetime(&in_ledger, battery_uj);
    assert!(
        in_life.rounds_until_first_death > bs_life.rounds_until_first_death,
        "in-network {:.0} rounds should outlive base-station {:.0} rounds",
        in_life.rounds_until_first_death,
        bs_life.rounds_until_first_death
    );
}

#[test]
fn broadcast_optimization_never_listed_as_worse_in_aggregate() {
    // §3's broadcast optimization: across several workloads its total is
    // no worse than the unicast accounting on the same schedule (raw
    // fan-outs exist in optimal plans near sources).
    let net = Network::with_default_energy(Deployment::great_duck_island(21));
    let mut improved = 0;
    for seed in [1u64, 2, 3, 4] {
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(20, 20, seed));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let unicast = schedule.round_cost(net.energy()).total_uj();
        let broadcast = schedule.round_cost_with_broadcast(net.energy()).total_uj();
        if broadcast < unicast {
            improved += 1;
        }
    }
    assert!(
        improved >= 2,
        "broadcast should help on most workloads ({improved}/4)"
    );
}

#[test]
fn slot_schedule_keeps_radios_mostly_off() {
    let (net, spec) = setup();
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
    let schedule = build_schedule(&spec, &plan).unwrap();
    let slots = assign_slots(&net, &schedule);
    let fraction = slots.listen_fraction(&schedule, &net);
    assert!(
        fraction < 0.5,
        "participating nodes should be radio-on under half the round, got {fraction:.2}"
    );
}
