//! Property: observability never changes what the lossy runtime computes.
//!
//! The flight recorder and the per-node accumulator planes
//! (`m2m_core::telemetry::timeseries`) instrument the fault engine and
//! the compiled executor, so the hard guarantee they must keep is that
//! flipping `M2M_OBS` is *unobservable* from the outside: the same
//! deployment, workload, loss model, and salt stream must produce
//! bit-identical [`m2m_core::faults::FaultOutcome`]s (results, coverage,
//! costs, retry counts, link events) and bit-identical reliable-path
//! epochs whether observability is enabled or disabled. Planes and
//! recorder may only ever read outcomes, never steer them.
//!
//! This file holds exactly one test because the obs flag is process
//! global: a sibling test flipping it concurrently would race. The
//! enabled/disabled comparison lives inside each proptest case instead.

use m2m_core::config::{Config, Runtime};
use m2m_core::exec::{run_epochs, EpochOutcome};
use m2m_core::faults::FaultOutcome;
use m2m_core::session::Session;
use m2m_core::telemetry::timeseries;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode};
use proptest::prelude::*;

fn reading(source: NodeId, round: usize, salt: u64) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    let k = salt as f64;
    (s * 0.47 + r * 1.13 + k * 0.083).sin() * 30.0 + s * 0.02
}

/// Everything observable from one lossy session run: a batched stretch,
/// then single-round stretches (both recorder feeds), plus the
/// reliable-path epoch results.
fn full_pass(
    net: &Network,
    spec: &m2m_core::spec::AggregationSpec,
    loss_p: f64,
    value_salt: u64,
    obs: bool,
) -> (Vec<FaultOutcome>, Vec<EpochOutcome>) {
    // Session::build applies the config, which installs the obs flag.
    let config = Config::builder().obs(obs).obs_cap(64).build();
    let mut session = Session::builder(net.clone(), spec.clone())
        .routing_mode(RoutingMode::ShortestPathTrees)
        .config(config)
        .runtime(Runtime::Lossy)
        .delivery(DeliveryModel::uniform(loss_p, 17))
        .base_salt(value_salt)
        .build();
    assert_eq!(timeseries::obs_enabled(), obs);
    assert_eq!(session.recorder().is_some(), obs);

    let batch: Vec<Vec<f64>> = (0..6)
        .map(|round| {
            session
                .compiled()
                .sources()
                .ids()
                .iter()
                .map(|&s| reading(s, round, value_salt))
                .collect()
        })
        .collect();

    let mut outcomes: Vec<FaultOutcome> = session
        .run_rounds(&batch[..4])
        .into_iter()
        .map(|r| r.fault().expect("lossy runtime").clone())
        .collect();
    for row in &batch[4..] {
        let readings = session
            .compiled()
            .sources()
            .ids()
            .iter()
            .copied()
            .zip(row.iter().copied())
            .collect();
        outcomes.push(
            session
                .run(&readings)
                .fault()
                .expect("lossy runtime")
                .clone(),
        );
    }

    let epochs = run_epochs(
        session.compiled(),
        &batch,
        session.config().resolved_threads(),
    );

    if obs {
        let rec = session.recorder().expect("obs session has a recorder");
        let totals = rec.totals();
        assert_eq!(totals.rounds, outcomes.len() as u64);
        assert_eq!(
            totals.retransmissions,
            outcomes
                .iter()
                .map(|o| o.retransmissions as u64)
                .sum::<u64>()
        );
        assert_eq!(
            totals.dropped,
            outcomes
                .iter()
                .map(|o| o.dropped_messages as u64)
                .sum::<u64>()
        );
        let dump = session.obs_dump().expect("dump renders");
        assert!(
            m2m_core::telemetry::json::JsonValue::parse(&dump.render()).is_ok(),
            "dump must round-trip as JSON"
        );
    }
    timeseries::set_obs_enabled(false);
    (outcomes, epochs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn observability_is_unobservable_in_lossy_outcomes(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        loss_pct in 0u32..40,
        dest_count in 4usize..10,
        sources_per in 3usize..8,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let loss_p = f64::from(loss_pct) / 100.0;

        timeseries::reset_planes();
        let (out_off, epochs_off) = full_pass(&net, &spec, loss_p, value_salt, false);
        let silent = timeseries::planes_snapshot();
        prop_assert!(
            silent.is_zero(),
            "disabled observability must record nothing"
        );

        let (out_on, epochs_on) = full_pass(&net, &spec, loss_p, value_salt, true);
        let recorded = timeseries::planes_snapshot();
        timeseries::reset_planes();
        // 6 lossy rounds plus 6 reliable epochs hit the planes.
        prop_assert_eq!(recorded.rounds(), 12, "enabled planes count every round");
        prop_assert!(
            recorded.msgs_tx().iter().sum::<u64>() > 0,
            "enabled planes must see traffic"
        );

        // The guarantee: flipping the flag is invisible in outcomes.
        // FaultOutcome equality covers results, coverage, exact f64
        // cost bits, retries, drops, and per-link failure events.
        prop_assert_eq!(out_off, out_on);
        prop_assert_eq!(epochs_off, epochs_on);
    }
}
