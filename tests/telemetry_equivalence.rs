//! Property: telemetry never changes what the system computes.
//!
//! The tracing facade (`m2m_core::telemetry`) instruments the optimizer
//! and the executor, so the hard guarantee it must keep is that flipping
//! the flag is *unobservable* from the outside: the same deployments
//! must produce bit-identical [`m2m_core::plan::GlobalPlan`] solutions
//! (at 1, 2, and 8 optimizer threads), bit-identical per-round results,
//! and identical round costs whether tracing is enabled or disabled.
//! Counters may only ever read state, never steer it.
//!
//! This file holds exactly one test because the trace flag is process
//! global: a sibling test flipping it concurrently would race. The
//! enabled/disabled comparison lives inside each proptest case instead.

use std::collections::BTreeMap;

use m2m_core::exec::{run_epochs, CompiledSchedule, EpochOutcome, ExecState};
use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

fn reading(source: NodeId, round: usize, salt: u64) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    let k = salt as f64;
    (s * 0.53 + r * 1.31 + k * 0.071).sin() * 35.0 + s * 0.015
}

/// Everything observable from one full optimize-compile-execute pass.
fn full_pass(
    net: &Network,
    spec: &m2m_core::spec::AggregationSpec,
    routing: &RoutingTables,
    value_salt: u64,
    traced: bool,
) -> (Vec<GlobalPlan>, Vec<Vec<EpochOutcome>>) {
    telemetry::set_enabled(traced);
    let plans: Vec<GlobalPlan> = [1usize, 2, 8]
        .iter()
        .map(|&threads| GlobalPlan::build_with_threads(net, spec, routing, threads))
        .collect();
    let compiled =
        CompiledSchedule::compile(net, spec, &plans[0]).expect("plan must be schedulable");
    let mut state = ExecState::for_schedule(&compiled);
    let batch: Vec<Vec<f64>> = (0..4)
        .map(|round| {
            let readings: BTreeMap<NodeId, f64> = compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| (s, reading(s, round, value_salt)))
                .collect();
            state.load_readings(&compiled, &readings);
            state.readings_mut().to_vec()
        })
        .collect();
    let outcomes: Vec<Vec<EpochOutcome>> = [1usize, 2, 8]
        .iter()
        .map(|&threads| run_epochs(&compiled, &batch, threads))
        .collect();
    telemetry::set_enabled(false);
    (plans, outcomes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tracing_is_unobservable_in_plans_results_and_costs(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        dest_count in 4usize..12,
        sources_per in 3usize..9,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );

        telemetry::reset();
        let (plans_off, outcomes_off) = full_pass(&net, &spec, &routing, value_salt, false);
        let silent = telemetry::snapshot();
        prop_assert_eq!(
            silent.counter(telemetry::names::EDGE_OPT_SOLVES), 0,
            "disabled tracing must record nothing"
        );

        let (plans_on, outcomes_on) = full_pass(&net, &spec, &routing, value_salt, true);
        let recorded = telemetry::snapshot();
        telemetry::reset();
        prop_assert!(
            recorded.counter(telemetry::names::EDGE_OPT_SOLVES) > 0,
            "enabled tracing must record the solves"
        );
        prop_assert!(recorded.counter(telemetry::names::EXEC_ROUNDS) >= 12);

        // The guarantee: bit-identical plans at every thread count,
        // bit-identical results and identical costs at every thread
        // count. EpochOutcome equality covers exact f64 bits.
        for (off, on) in plans_off.iter().zip(&plans_on) {
            prop_assert_eq!(off.solutions(), on.solutions());
        }
        prop_assert_eq!(outcomes_off, outcomes_on);
    }
}
