//! Property tests for the paper's theorems.
//!
//! * **Theorem 1** — under the path-sharing restriction (the
//!   shared-spanning-tree routing mode), independently solved per-edge
//!   optima are already consistent: no raw-availability violation exists
//!   before any repair, and every edge problem has exactly one
//!   continuation group per destination.
//! * **Theorem 2** — the wait-for relation among message units is acyclic.
//! * **Theorem 3** — total node-table state is `O(min(Σ|T_s|, Σ|A_d|))`.
//! * Per-edge optimality: every solved cover weighs no more than either
//!   trivial cover, and matches brute force on small instances.

use std::collections::BTreeMap;

use proptest::prelude::*;

use m2m_core::edge_opt::{build_edge_problems, solve_edge};
use m2m_core::plan::{aggregation_tree_sizes, GlobalPlan};
use m2m_core::schedule::build_schedule;
use m2m_core::tables::NodeTables;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::vertex_cover::brute_force_min_cover;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

/// A compact strategy over workload shapes on a fixed 68-node network.
fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..14, 3usize..14, 0u32..=10, any::<u64>()).prop_map(
        |(dests, sources, tenths, seed)| WorkloadConfig {
            destination_count: dests,
            sources_per_destination: sources,
            selection: SourceSelection::Dispersion {
                dispersion: f64::from(tenths) / 10.0,
                max_hops: 4,
            },
            kind: m2m_core::agg::AggregateKind::WeightedAverage,
            seed,
        },
    )
}

fn network() -> Network {
    Network::with_default_energy(Deployment::great_duck_island(77))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: with the sharing restriction, per-edge optima compose
    /// with zero inconsistencies and zero repairs, and the per-edge
    /// problems coincide with the paper's exact formulation (one
    /// continuation group per destination).
    #[test]
    fn theorem_1_composability_under_sharing(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::SharedSpanningTree,
        );
        let problems = build_edge_problems(&spec, &routing);
        for p in problems.values() {
            prop_assert!(
                p.is_sharing_coherent(),
                "edge {:?} has split continuation groups under sharing",
                p.edge
            );
        }
        let solutions: BTreeMap<_, _> = problems
            .iter()
            .map(|(&e, p)| (e, solve_edge(p, &spec)))
            .collect();
        prop_assert_eq!(
            GlobalPlan::count_inconsistencies(&spec, &routing, &solutions),
            0
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        prop_assert_eq!(plan.repair_count(), 0);
        prop_assert!(plan.validate(&spec, &routing).is_ok());
    }

    /// Theorem 2: wait-for acyclicity, in both routing modes.
    #[test]
    fn theorem_2_acyclic_wait_for(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree, RoutingMode::SteinerTrees] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let plan = GlobalPlan::build(&net, &spec, &routing);
            let schedule = build_schedule(&spec, &routing, &plan);
            prop_assert!(schedule.is_ok(), "{mode:?}: {:?}", schedule.err());
            let schedule = schedule.unwrap();
            prop_assert_eq!(schedule.topo_order.len(), schedule.units.len());
        }
    }

    /// Theorem 3: total node-table state is within a small constant of
    /// `min(Σ|T_s|, Σ|A_d|)`.
    #[test]
    fn theorem_3_state_bound(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &routing, &plan);
        let tree_total: usize = routing.total_tree_size();
        let agg_total: usize = aggregation_tree_sizes(&spec, &routing).values().sum();
        let bound = 6 * tree_total.min(agg_total);
        prop_assert!(
            tables.total_entries() <= bound,
            "state {} exceeds 6·min(Σ|T_s|={tree_total}, Σ|A_d|={agg_total})",
            tables.total_entries()
        );
    }

    /// Every per-edge solution is a minimum-byte cover: no worse than the
    /// all-raw (multicast) or all-records (aggregation) trivial covers,
    /// and exactly optimal vs brute force on small instances.
    #[test]
    fn per_edge_solutions_are_optimal(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let problems = build_edge_problems(&spec, &routing);
        for p in problems.values() {
            let sol = solve_edge(p, &spec);
            let all_raw = p.sources.len() as u64 * 4;
            let all_records: u64 = p
                .groups
                .iter()
                .map(|g| u64::from(spec.function(g.destination).unwrap().partial_record_bytes()))
                .sum();
            prop_assert!(sol.cost_bytes <= all_raw);
            prop_assert!(sol.cost_bytes <= all_records);

            if p.sources.len() + p.groups.len() <= 14 {
                // Brute-force the unscaled byte-weight instance.
                let mut g = BipartiteGraph::new();
                for _ in &p.sources {
                    g.add_left(4);
                }
                for grp in &p.groups {
                    g.add_right(u64::from(
                        spec.function(grp.destination).unwrap().partial_record_bytes(),
                    ));
                }
                for &(si, gi) in &p.pairs {
                    g.add_edge(si, gi);
                }
                let best = brute_force_min_cover(&g);
                prop_assert_eq!(sol.cost_bytes, best.weight, "edge {:?}", p.edge);
            }
        }
    }

    /// Plan construction is deterministic.
    #[test]
    fn plan_is_deterministic(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let a = GlobalPlan::build(&net, &spec, &routing);
        let b = GlobalPlan::build(&net, &spec, &routing);
        prop_assert_eq!(a.solutions(), b.solutions());
    }

    /// Repairs are rare even without the sharing guarantee, and the plan
    /// always validates.
    #[test]
    fn spt_mode_plans_validate(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        prop_assert!(plan.validate(&spec, &routing).is_ok());
        // Not asserting zero — just that the sweep terminates with a
        // bounded number of patches.
        prop_assert!(plan.repair_count() <= plan.solutions().len());
    }

    /// The distributed node automata reproduce the central runtime's
    /// results on arbitrary workloads (the §3 tables are load-bearing).
    #[test]
    fn distributed_runtime_matches_central(cfg in workload_strategy()) {
        use m2m_core::node_machine::run_distributed_round;
        use m2m_core::runtime::execute_round;
        use m2m_core::tables::NodeTables;
        use std::collections::BTreeMap as Map;
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let readings: Map<m2m_graph::NodeId, f64> = net
            .nodes()
            .map(|v| (v, f64::from(v.0) * 0.37 - 11.0))
            .collect();
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let central = execute_round(&net, &spec, &routing, &plan, &readings);
        let tables = NodeTables::build(&spec, &routing, &plan);
        let distributed = run_distributed_round(&spec, &tables, &readings);
        prop_assert!(distributed.is_ok(), "{:?}", distributed.err());
        let distributed = distributed.unwrap();
        for (d, _) in spec.functions() {
            prop_assert!(
                (central.results[&d] - distributed.results[&d]).abs() < 1e-9,
                "dest {d}: {} vs {}",
                central.results[&d],
                distributed.results[&d]
            );
        }
    }
}
