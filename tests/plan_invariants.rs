//! Property tests for the paper's theorems.
//!
//! * **Theorem 1** — under the path-sharing restriction (the
//!   shared-spanning-tree routing mode), independently solved per-edge
//!   optima are already consistent: no raw-availability violation exists
//!   before any repair, and every edge problem has exactly one
//!   continuation group per destination.
//! * **Theorem 2** — the wait-for relation among message units is acyclic.
//! * **Theorem 3** — total node-table state is `O(min(Σ|T_s|, Σ|A_d|))`.
//! * Per-edge optimality: every solved cover weighs no more than either
//!   trivial cover, and matches brute force on small instances.

use std::collections::BTreeMap;

use proptest::prelude::*;

use m2m_core::agg::RAW_VALUE_BYTES;
use m2m_core::edge_opt::{
    build_edge_problems, solve_edge, AggGroup, DirectedEdge, EdgeProblem, EdgeSolution,
};
use m2m_core::plan::{aggregation_tree_sizes, GlobalPlan};
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::tables::NodeTables;
use m2m_core::topo::Topology;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::vertex_cover::brute_force_min_cover;
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

/// A compact strategy over workload shapes on a fixed 68-node network.
fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..14, 3usize..14, 0u32..=10, any::<u64>()).prop_map(|(dests, sources, tenths, seed)| {
        WorkloadConfig {
            destination_count: dests,
            sources_per_destination: sources,
            selection: SourceSelection::Dispersion {
                dispersion: f64::from(tenths) / 10.0,
                max_hops: 4,
            },
            kind: m2m_core::agg::AggregateKind::WeightedAverage,
            seed,
        }
    })
}

fn network() -> Network {
    Network::with_default_energy(Deployment::great_duck_island(77))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: with the sharing restriction, per-edge optima compose
    /// with zero inconsistencies and zero repairs, and the per-edge
    /// problems coincide with the paper's exact formulation (one
    /// continuation group per destination).
    #[test]
    fn theorem_1_composability_under_sharing(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::SharedSpanningTree,
        );
        let problems = build_edge_problems(&Topology::snapshot(&spec, &routing));
        for p in &problems {
            prop_assert!(
                p.is_sharing_coherent(),
                "edge {:?} has split continuation groups under sharing",
                p.edge
            );
        }
        let solutions: BTreeMap<_, _> = problems
            .iter()
            .map(|p| (p.edge, solve_edge(p, &spec)))
            .collect();
        prop_assert_eq!(
            GlobalPlan::count_inconsistencies(&spec, &routing, &solutions),
            0
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        prop_assert_eq!(plan.repair_count(), 0);
        prop_assert!(plan.validate(&spec, &routing).is_ok());
    }

    /// Theorem 2: wait-for acyclicity, in both routing modes.
    #[test]
    fn theorem_2_acyclic_wait_for(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree, RoutingMode::SteinerTrees] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let plan = GlobalPlan::build(&net, &spec, &routing);
            let schedule = build_schedule(&spec, &plan);
            prop_assert!(schedule.is_ok(), "{mode:?}: {:?}", schedule.err());
            let schedule = schedule.unwrap();
            prop_assert_eq!(schedule.topo_order.len(), schedule.units.len());
        }
    }

    /// Theorem 3: total node-table state is within a small constant of
    /// `min(Σ|T_s|, Σ|A_d|)`.
    #[test]
    fn theorem_3_state_bound(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        let tree_total: usize = routing.total_tree_size();
        let agg_total: usize = aggregation_tree_sizes(&spec, &routing).values().sum();
        let bound = 6 * tree_total.min(agg_total);
        prop_assert!(
            tables.total_entries() <= bound,
            "state {} exceeds 6·min(Σ|T_s|={tree_total}, Σ|A_d|={agg_total})",
            tables.total_entries()
        );
    }

    /// Every per-edge solution is a minimum-byte cover: no worse than the
    /// all-raw (multicast) or all-records (aggregation) trivial covers,
    /// and exactly optimal vs brute force on small instances.
    #[test]
    fn per_edge_solutions_are_optimal(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let problems = build_edge_problems(&Topology::snapshot(&spec, &routing));
        for p in &problems {
            let sol = solve_edge(p, &spec);
            let all_raw = p.sources.len() as u64 * 4;
            let all_records: u64 = p
                .groups
                .iter()
                .map(|g| u64::from(spec.function(g.destination).unwrap().partial_record_bytes()))
                .sum();
            prop_assert!(sol.cost_bytes <= all_raw);
            prop_assert!(sol.cost_bytes <= all_records);

            if p.sources.len() + p.groups.len() <= 14 {
                // Brute-force the unscaled byte-weight instance.
                let mut g = BipartiteGraph::new();
                for _ in &p.sources {
                    g.add_left(4);
                }
                for grp in &p.groups {
                    g.add_right(u64::from(
                        spec.function(grp.destination).unwrap().partial_record_bytes(),
                    ));
                }
                for &(si, gi) in &p.pairs {
                    g.add_edge(si, gi);
                }
                let best = brute_force_min_cover(&g);
                prop_assert_eq!(sol.cost_bytes, best.weight, "edge {:?}", p.edge);
            }
        }
    }

    /// Plan construction is deterministic.
    #[test]
    fn plan_is_deterministic(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let a = GlobalPlan::build(&net, &spec, &routing);
        let b = GlobalPlan::build(&net, &spec, &routing);
        prop_assert_eq!(a.solutions(), b.solutions());
    }

    /// Repairs are rare even without the sharing guarantee, and the plan
    /// always validates.
    #[test]
    fn spt_mode_plans_validate(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        prop_assert!(plan.validate(&spec, &routing).is_ok());
        // Not asserting zero — just that the sweep terminates with a
        // bounded number of patches.
        prop_assert!(plan.repair_count() <= plan.solutions().len());
    }

    /// The distributed node automata reproduce the central runtime's
    /// results on arbitrary workloads (the §3 tables are load-bearing).
    #[test]
    fn distributed_runtime_matches_central(cfg in workload_strategy()) {
        use m2m_core::exec::{CompiledSchedule, ExecState};
        use m2m_core::node_machine::run_distributed_round;
        use m2m_core::tables::NodeTables;
        use std::collections::BTreeMap as Map;
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let readings: Map<m2m_graph::NodeId, f64> = net
            .nodes()
            .map(|v| (v, f64::from(v.0) * 0.37 - 11.0))
            .collect();
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
        let mut state = ExecState::for_schedule(&compiled);
        compiled.run_round_on(&readings, &mut state);
        let central = state.result_map(&compiled);
        let tables = NodeTables::build(&spec, &plan);
        let distributed = run_distributed_round(&spec, &tables, &readings);
        prop_assert!(distributed.is_ok(), "{:?}", distributed.err());
        let distributed = distributed.unwrap();
        for (d, _) in spec.functions() {
            prop_assert!(
                (central[&d] - distributed.results[&d]).abs() < 1e-9,
                "dest {d}: {} vs {}",
                central[&d],
                distributed.results[&d]
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pre-refactor oracle: the plan pipeline as it existed before the dense
// core — problems accumulated in an ordered map keyed by directed edge
// while walking the routing trees, solved serially one edge at a time,
// then repaired by per-destination path walks. The dense-slab build must
// be bit-identical to this at every thread count.
// ---------------------------------------------------------------------

/// Map-keyed problem construction: walk every demanded `(s, d)` route and
/// register the source, continuation group, and `∼_e` pair on each edge,
/// then freeze insertion order into sorted dense indices.
fn oracle_problems(
    spec: &AggregationSpec,
    routing: &RoutingTables,
) -> BTreeMap<DirectedEdge, EdgeProblem> {
    struct Builder {
        sources: BTreeMap<NodeId, usize>,
        groups: BTreeMap<AggGroup, usize>,
        pairs: Vec<(usize, usize)>,
    }
    let mut acc: BTreeMap<DirectedEdge, Builder> = BTreeMap::new();
    for (s, tree) in routing.trees() {
        for &d in tree.destinations() {
            if !spec.is_source_of(s, d) {
                continue;
            }
            let path = tree.path_to(d).expect("tree spans destination");
            for (idx, hop) in path.windows(2).enumerate() {
                let b = acc.entry((hop[0], hop[1])).or_insert_with(|| Builder {
                    sources: BTreeMap::new(),
                    groups: BTreeMap::new(),
                    pairs: Vec::new(),
                });
                let next_source = b.sources.len();
                let si = *b.sources.entry(s).or_insert(next_source);
                let group = AggGroup {
                    destination: d,
                    suffix: path[idx + 1..].into(),
                };
                let next_group = b.groups.len();
                let gi = *b.groups.entry(group).or_insert(next_group);
                b.pairs.push((si, gi));
            }
        }
    }
    acc.into_iter()
        .map(|(edge, b)| {
            let mut src_order: Vec<(NodeId, usize)> =
                b.sources.iter().map(|(&s, &i)| (s, i)).collect();
            src_order.sort_unstable();
            let mut src_remap = vec![0usize; src_order.len()];
            for (new_idx, &(_, old_idx)) in src_order.iter().enumerate() {
                src_remap[old_idx] = new_idx;
            }
            let mut grp_order: Vec<(AggGroup, usize)> =
                b.groups.iter().map(|(g, &i)| (g.clone(), i)).collect();
            grp_order.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut grp_remap = vec![0usize; grp_order.len()];
            for (new_idx, (_, old_idx)) in grp_order.iter().enumerate() {
                grp_remap[*old_idx] = new_idx;
            }
            let mut pairs: Vec<(usize, usize)> = b
                .pairs
                .iter()
                .map(|&(si, gi)| (src_remap[si], grp_remap[gi]))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            let problem = EdgeProblem {
                edge,
                sources: src_order.into_iter().map(|(s, _)| s).collect(),
                groups: grp_order.into_iter().map(|(g, _)| g).collect(),
                pairs,
            };
            (edge, problem)
        })
        .collect()
}

/// The pre-refactor §2.3 patch: drop `s` from the edge's raw set, force
/// every group `s` participates in into the aggregate set, re-derive cost.
fn oracle_patch(spec: &AggregationSpec, problem: &EdgeProblem, sol: &mut EdgeSolution, s: NodeId) {
    if let Ok(pos) = sol.raw.binary_search(&s) {
        sol.raw.remove(pos);
    }
    let si = problem
        .sources
        .binary_search(&s)
        .expect("patched source must be in the edge problem");
    for &(psi, gi) in &problem.pairs {
        if psi != si {
            continue;
        }
        let group = &problem.groups[gi];
        if let Err(pos) = sol.agg.binary_search(group) {
            sol.agg.insert(pos, group.clone());
        }
    }
    sol.cost_bytes = sol.raw.len() as u64 * u64::from(RAW_VALUE_BYTES)
        + sol
            .agg
            .iter()
            .map(|g| {
                u64::from(
                    spec.function(g.destination)
                        .expect("function exists")
                        .partial_record_bytes(),
                )
            })
            .sum::<u64>();
}

/// The pre-refactor availability sweep: one walk per demanded `(s, d)`
/// path (revisiting shared prefixes), tracking raw availability and
/// patching any edge that still wants the raw value after an upstream
/// edge aggregated it.
fn oracle_repair(
    spec: &AggregationSpec,
    routing: &RoutingTables,
    problems: &BTreeMap<DirectedEdge, EdgeProblem>,
    solutions: &mut BTreeMap<DirectedEdge, EdgeSolution>,
) -> usize {
    let mut repairs = 0;
    for (s, tree) in routing.trees() {
        for &d in tree.destinations() {
            if !spec.is_source_of(s, d) {
                continue;
            }
            let path = tree.path_to(d).expect("tree spans destination");
            let mut avail = true;
            for hop in path.windows(2) {
                let edge = (hop[0], hop[1]);
                let sol = solutions.get_mut(&edge).expect("solution exists");
                let raw = sol.transmits_raw(s);
                if raw && !avail {
                    oracle_patch(spec, &problems[&edge], sol, s);
                    repairs += 1;
                }
                avail = avail && raw;
            }
        }
    }
    repairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The dense-slab `GlobalPlan` is bit-identical to the pre-refactor
    /// pipeline — same per-edge problems, same raw/agg decisions after
    /// repair, same total cost, same repair count — across all three
    /// routing modes and at 1, 2, and 8 worker threads.
    #[test]
    fn dense_core_matches_pre_refactor_oracle(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let problems = oracle_problems(&spec, &routing);
            let mut solutions: BTreeMap<DirectedEdge, EdgeSolution> = problems
                .iter()
                .map(|(&edge, p)| (edge, solve_edge(p, &spec)))
                .collect();
            let repairs = oracle_repair(&spec, &routing, &problems, &mut solutions);
            let oracle_cost: u64 = solutions.values().map(|s| s.cost_bytes).sum();

            for threads in [1usize, 2, 8] {
                let plan = GlobalPlan::build_with_threads(&net, &spec, &routing, threads);
                prop_assert_eq!(
                    plan.problems().len(),
                    problems.len(),
                    "{mode:?}/{threads}: edge count"
                );
                for (p, (edge, op)) in plan.problems().iter().zip(problems.iter()) {
                    prop_assert_eq!(&p.edge, edge, "{:?}/{}: slab order", mode, threads);
                    prop_assert_eq!(p, op, "{:?}/{}: problem inputs", mode, threads);
                }
                for (sol, (edge, osol)) in plan.solutions().iter().zip(solutions.iter()) {
                    prop_assert_eq!(&sol.edge, edge, "{:?}/{}: slab order", mode, threads);
                    prop_assert_eq!(sol, osol, "{:?}/{}: edge decisions", mode, threads);
                }
                prop_assert_eq!(plan.total_payload_bytes(), oracle_cost);
                prop_assert_eq!(plan.repair_count(), repairs, "{mode:?}/{threads}");
            }
        }
    }
}
