//! Property: the loss-aware executor is the compiled executor plus loss.
//!
//! With a perfectly reliable [`DeliveryModel`] every retry policy must be
//! inert: [`m2m_core::faults::FaultyExec`] has to reproduce the plain
//! [`m2m_core::exec::CompiledSchedule`] round *bit for bit* — same `f64`
//! bits at every destination, same [`m2m_core::metrics::RoundCost`], full
//! coverage, zero retransmissions — over any deployment, workload, and
//! routing mode. And under real loss, the batched
//! [`m2m_core::faults::FaultyExec::run_rounds`] driver must be a pure
//! function of `(readings, model, policy, base_salt)`: identical outcomes
//! at 1, 2, and 8 worker threads.

use std::collections::BTreeMap;

use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::faults::{FaultyExec, RetryPolicy};
use m2m_core::plan::GlobalPlan;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{DeliveryModel, Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

fn reading(source: NodeId, round: usize, salt: u64) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    let k = salt as f64;
    (s * 0.73 + r * 1.19 + k * 0.057).sin() * 35.0 + s * 0.01
}

fn compile_for(
    net: &Network,
    spec: &m2m_core::spec::AggregationSpec,
    mode: RoutingMode,
) -> CompiledSchedule {
    let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
    let plan = GlobalPlan::build(net, spec, &routing);
    CompiledSchedule::compile(net, spec, &plan).expect("plan must be schedulable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// p = 0 with any retry budget is the identity: the lossy path must
    /// hand back the plain compiled round untouched.
    #[test]
    fn reliable_links_make_the_lossy_executor_exact(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        round_salt in 0u64..1_000_000,
        dest_count in 4usize..12,
        sources_per in 3usize..9,
        mode_pick in 0usize..3,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let compiled = compile_for(&net, &spec, mode);

        let readings_map: BTreeMap<NodeId, f64> = compiled
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, 0, value_salt)))
            .collect();
        let mut state = ExecState::for_schedule(&compiled);
        let plain_cost = compiled.run_round_on(&readings_map, &mut state);
        let exact: Vec<Option<f64>> = state.results().iter().map(|&r| Some(r)).collect();

        let faulty = FaultyExec::new(&net, &compiled);
        let mut scratch = faulty.scratch();
        for policy in [
            RetryPolicy::unlimited(10_000),
            RetryPolicy::bounded(0, 0, 10_000),
            RetryPolicy::bounded(5, 2, 10_000),
        ] {
            let out = faulty.run_on(
                &readings_map,
                &DeliveryModel::reliable(),
                &policy,
                round_salt,
                &mut scratch,
            );
            prop_assert!(out.delivered);
            prop_assert_eq!(out.retransmissions, 0);
            prop_assert_eq!(out.dropped_messages, 0);
            prop_assert_eq!(out.degraded_destinations(), 0);
            prop_assert_eq!(&out.results, &exact, "results must be bit-identical");
            prop_assert_eq!(out.cost, plain_cost, "cost must be bit-identical");
        }
    }

    /// Batched lossy rounds are a pure function of their inputs: the
    /// worker count never changes a single outcome, and re-running the
    /// batch replays it exactly.
    #[test]
    fn lossy_batches_are_thread_count_invariant(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        base_salt in 0u64..1_000_000,
        p in 0.05f64..0.5,
        mode_pick in 0usize..3,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 6, wl_seed));
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let compiled = compile_for(&net, &spec, mode);
        let faulty = FaultyExec::new(&net, &compiled);

        const ROUNDS: usize = 6;
        let batch: Vec<Vec<f64>> = (0..ROUNDS)
            .map(|round| {
                compiled
                    .sources()
                    .ids()
                    .iter()
                    .map(|&s| reading(s, round, value_salt))
                    .collect()
            })
            .collect();
        let model = DeliveryModel::uniform(p, place_seed ^ 0x5eed);
        let policy = RetryPolicy::bounded(4, 1, 10_000);

        let serial = faulty.run_rounds(&batch, &model, &policy, base_salt, 1);
        prop_assert_eq!(serial.len(), ROUNDS);
        for threads in [2usize, 8] {
            let parallel = faulty.run_rounds(&batch, &model, &policy, base_salt, threads);
            prop_assert_eq!(&parallel, &serial, "threads = {}", threads);
        }
        // Replay: same salts, same delivery history, same outcomes.
        let replay = faulty.run_rounds(&batch, &model, &policy, base_salt, 3);
        prop_assert_eq!(&replay, &serial);
    }
}
