//! Golden-file test for the plan-explainability report.
//!
//! [`m2m_core::telemetry::explain`] promises a *deterministic* text
//! rendering: same deployment, same workload, same report, byte for
//! byte, independent of thread counts or tracing state. This pins the
//! report for one small fixed deployment against a committed fixture so
//! any drift in the decision rationale, the cost arithmetic, or the
//! formatting shows up as a reviewable diff.
//!
//! Regenerate after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test -p m2m-core --test explain_golden`

use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::explain;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn golden_path() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the fixture lives in the
    // workspace-level tests/ directory next to this file.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/explain_small.txt")
}

fn small_report() -> String {
    let deployment = Deployment::scaled_series(&[20], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(3, 4, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    explain(&plan, &spec).to_text()
}

#[test]
fn explain_text_matches_the_committed_golden_file() {
    let text = small_report();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &text).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        text, golden,
        "explain text drifted from tests/golden/explain_small.txt \
         (bless intentional changes with UPDATE_GOLDEN=1)"
    );
}

#[test]
fn explain_text_is_reproducible_across_builds() {
    // Two independent plan builds at different thread counts must render
    // the identical report — determinism is what makes golden-testing
    // (and diffing reports between deployments) meaningful at all.
    let deployment = Deployment::scaled_series(&[20], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(3, 4, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let serial = GlobalPlan::build_with_threads(&network, &spec, &routing, 1);
    let parallel = GlobalPlan::build_with_threads(&network, &spec, &routing, 4);
    assert_eq!(
        explain(&serial, &spec).to_text(),
        explain(&parallel, &spec).to_text()
    );
    assert_eq!(small_report(), explain(&serial, &spec).to_text());
}
