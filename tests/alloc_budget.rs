//! Counting-allocator proof that the distributed runner's warm message
//! path stops allocating.
//!
//! The original `node_machine` prototype rebuilt every automaton per
//! round and allocated a fresh `Vec<WireUnit>` per emitted message —
//! O(machines + messages) heap traffic per round. The reworked
//! [`m2m_core::node_machine::DistributedRunner`] boots once, rearms in
//! place, and cycles unit buffers through a
//! [`m2m_core::node_machine::UnitPool`]; once warm, a round's unit
//! buffers come entirely from the free list. This test installs a
//! counting global allocator and pins both facts: the pool reports zero
//! fresh buffers across warm rounds, and a warm fast-path round
//! performs a small fraction of the allocations of the logging path
//! (which deliberately keeps every message and therefore pays the
//! prototype's per-message cost). The absolute counts printed here are
//! recorded in EXPERIMENTS.md.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use m2m_core::node_machine::DistributedRunner;
use m2m_core::plan::GlobalPlan;
use m2m_core::tables::NodeTables;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_runner_rounds_allocate_a_fraction_of_the_logged_path() {
    let net = Network::with_default_energy(Deployment::great_duck_island(11));
    let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 8, 3));
    let routing = RoutingTables::build(
        &net,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&net, &spec, &routing);
    let tables = NodeTables::build(&spec, &plan);

    const MEASURED: usize = 10;
    // Pre-build every round's readings so measurement sees only the
    // runner's own allocations.
    let rounds: Vec<BTreeMap<NodeId, f64>> = (0..(3 + MEASURED))
        .map(|r| {
            net.nodes()
                .map(|v| (v, f64::from(v.0 % 13) * 0.5 + r as f64))
                .collect()
        })
        .collect();

    let mut runner = DistributedRunner::new(&tables);
    // Warm-up: populate the pool and grow every buffer to its high-water
    // capacity.
    for readings in &rounds[..3] {
        runner.run_round(&spec, readings).unwrap();
    }
    let fresh_after_warmup = runner.pool().fresh_allocations();

    let before = allocs();
    for readings in &rounds[3..] {
        let results = runner.run_round(&spec, readings).unwrap();
        assert!(!results.is_empty());
    }
    let warm = allocs() - before;

    assert_eq!(
        runner.pool().fresh_allocations(),
        fresh_after_warmup,
        "warm rounds must draw every unit buffer from the pool"
    );

    // The logging path keeps each message alive (the prototype's
    // behavior): every emitted message costs a fresh buffer, plus the
    // log itself.
    let before = allocs();
    let mut messages = 0usize;
    for readings in &rounds[3..] {
        let round = runner.run_round_logged(&spec, readings).unwrap();
        messages += round.messages.len();
    }
    let logged = allocs() - before;

    println!(
        "alloc_budget: {MEASURED} warm rounds = {warm} allocations, \
         {MEASURED} logged rounds = {logged} allocations ({messages} messages), \
         pool fresh = {fresh_after_warmup}, pool reuses = {}",
        runner.pool().reuses()
    );
    assert!(
        warm * 3 < logged,
        "warm path must allocate far less than the logging path \
         (warm {warm} vs logged {logged})"
    );
    // Per-round heap traffic must not scale with message count: the
    // per-destination result map is the only remaining per-round churn.
    let per_round = warm as usize / MEASURED;
    assert!(
        per_round < messages / MEASURED,
        "warm per-round allocations ({per_round}) must stay below one per message \
         ({} messages per round)",
        messages / MEASURED
    );
}
