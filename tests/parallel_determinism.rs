//! Property: parallel plan builds are bit-identical to serial builds.
//!
//! Theorem 1 lets the optimizer solve every single-edge problem
//! independently; the worker pool ([`m2m_core::parallel`]) exploits this
//! but must not change *anything* observable — same per-edge solutions,
//! same total cost, same repair count — at any thread count, over any
//! deployment and workload. The memoized build path must coincide too.

use m2m_core::memo::SolveCache;
use m2m_core::plan::GlobalPlan;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_builds_are_bit_identical_to_serial(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        dest_count in 4usize..16,
        sources_per in 3usize..12,
        shared_tree in proptest::arbitrary::any::<bool>(),
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let mode = if shared_tree {
            RoutingMode::SharedSpanningTree
        } else {
            RoutingMode::ShortestPathTrees
        };
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);

        let serial = GlobalPlan::build_with_threads(&net, &spec, &routing, 1);
        for threads in [2usize, 8] {
            let parallel = GlobalPlan::build_with_threads(&net, &spec, &routing, threads);
            prop_assert_eq!(parallel.solutions(), serial.solutions(), "threads = {}", threads);
            prop_assert_eq!(parallel.problems(), serial.problems(), "threads = {}", threads);
            prop_assert_eq!(
                parallel.total_payload_bytes(),
                serial.total_payload_bytes(),
                "threads = {}", threads
            );
            prop_assert_eq!(parallel.repair_count(), serial.repair_count(), "threads = {}", threads);
        }

        // The memoized path coincides as well — cold, then fully warm.
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        prop_assert_eq!(cold.solutions(), serial.solutions());
        prop_assert_eq!(cold.repair_count(), serial.repair_count());
        let warm = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        prop_assert_eq!(warm.solutions(), serial.solutions());
        prop_assert!(cache.hits() > 0, "second identical build must hit the cache");
    }
}
