//! Property: the compiled executor is bit-identical to the reference.
//!
//! [`m2m_core::exec::CompiledSchedule`] lowers a schedule into flat
//! dense-index arrays once and then runs rounds allocation-free; the
//! reference path ([`m2m_core::runtime::execute_round`]) rebuilds the
//! schedule and evaluates over map-keyed state every round. The lowering
//! preserves the schedule's topological unit order and each unit's
//! contribution order, so the two must agree *exactly* — same `f64` bits
//! in every destination result, same round cost, same per-edge message
//! counts — over any deployment, workload, and routing mode, and the
//! batched epoch driver must reproduce the serial outcome at any thread
//! count.
//!
//! The reference executor only exists behind the `test-oracle` feature
//! (run with `cargo test --features test-oracle --test exec_equivalence`).

use std::collections::BTreeMap;

use m2m_core::exec::{run_epochs, CompiledSchedule, ExecState};
use m2m_core::plan::GlobalPlan;
use m2m_core::runtime::execute_round;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
use proptest::prelude::*;

fn reading(source: NodeId, round: usize, salt: u64) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    let k = salt as f64;
    (s * 0.61 + r * 1.27 + k * 0.083).sin() * 40.0 - s * 0.02
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn compiled_rounds_match_the_reference_bit_for_bit(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        dest_count in 4usize..14,
        sources_per in 3usize..10,
        mode_pick in 0usize..3,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(
            &net,
            &WorkloadConfig::paper_default(dest_count, sources_per, wl_seed),
        );
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(&net, &spec, &routing);

        let compiled = CompiledSchedule::compile(&net, &spec, &plan)
            .expect("plan must be schedulable");
        let mut state = ExecState::for_schedule(&compiled);

        const ROUNDS: usize = 5;
        let mut batch: Vec<Vec<f64>> = Vec::with_capacity(ROUNDS);
        let mut expected: Vec<Vec<f64>> = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let readings: BTreeMap<NodeId, f64> = compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| (s, reading(s, round, value_salt)))
                .collect();
            let reference = execute_round(&net, &spec, &plan, &readings);
            let cost = compiled.run_round_on(&readings, &mut state);

            // Same results (exact f64 bits), same cost, same traffic.
            prop_assert_eq!(state.result_map(&compiled), reference.results);
            prop_assert_eq!(cost, reference.cost);
            prop_assert_eq!(
                compiled.schedule().messages_per_edge(),
                reference.schedule.messages_per_edge()
            );

            batch.push(readings.values().copied().collect());
            expected.push(state.results().to_vec());
        }

        // The epoch driver must reproduce the serial outcome at any
        // worker count (deterministic in-order collection).
        let serial = run_epochs(&compiled, &batch, 1);
        prop_assert_eq!(serial.len(), ROUNDS);
        for (round, outcome) in serial.iter().enumerate() {
            prop_assert_eq!(&outcome.results, &expected[round], "round = {}", round);
            prop_assert_eq!(outcome.cost, compiled.round_cost());
        }
        for threads in [2usize, 8] {
            let parallel = run_epochs(&compiled, &batch, threads);
            prop_assert_eq!(&parallel, &serial, "threads = {}", threads);
        }
    }

    /// The plan-build thread count never leaks into execution: plans
    /// assembled at 2 or 8 workers have the same solution slabs and repair
    /// count as the serial build, and the schedules compiled from them
    /// produce the same `f64` bits and round cost — across all three
    /// routing modes.
    #[test]
    fn plan_thread_count_never_changes_executed_bits(
        place_seed in 0u64..10_000,
        wl_seed in 0u64..10_000,
        value_salt in 0u64..10_000,
        mode_pick in 0usize..3,
    ) {
        let net = Network::with_default_energy(Deployment::great_duck_island(place_seed));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 6, wl_seed));
        let mode = match mode_pick {
            0 => RoutingMode::ShortestPathTrees,
            1 => RoutingMode::SharedSpanningTree,
            _ => RoutingMode::SteinerTrees,
        };
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);

        let reference = GlobalPlan::build_with_threads(&net, &spec, &routing, 1);
        let compiled_ref = CompiledSchedule::compile(&net, &spec, &reference)
            .expect("plan must be schedulable");
        let readings: BTreeMap<NodeId, f64> = compiled_ref
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, 0, value_salt)))
            .collect();
        let mut state = ExecState::for_schedule(&compiled_ref);
        let ref_cost = compiled_ref.run_round_on(&readings, &mut state);
        let ref_results = state.result_map(&compiled_ref);

        for threads in [2usize, 8] {
            let plan = GlobalPlan::build_with_threads(&net, &spec, &routing, threads);
            prop_assert_eq!(plan.solutions(), reference.solutions(), "threads = {}", threads);
            prop_assert_eq!(plan.repair_count(), reference.repair_count());
            let compiled = CompiledSchedule::compile(&net, &spec, &plan)
                .expect("plan must be schedulable");
            let mut st = ExecState::for_schedule(&compiled);
            let cost = compiled.run_round_on(&readings, &mut st);
            prop_assert_eq!(st.result_map(&compiled), ref_results.clone());
            prop_assert_eq!(cost, ref_cost);
        }
    }
}
