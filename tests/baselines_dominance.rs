//! Dominance and ordering relations among the four algorithms, across
//! randomized workloads: the optimal plan never loses to either
//! single-technique baseline (the core §2.2 guarantee), and the flood
//! baseline behaves as §4 describes.

use proptest::prelude::*;

use m2m_core::baselines::{flood_round_cost, plan_for_algorithm, Algorithm};
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn network() -> Network {
    Network::with_default_energy(Deployment::great_duck_island(55))
}

fn energy_uj(
    net: &Network,
    spec: &AggregationSpec,
    routing: &RoutingTables,
    alg: Algorithm,
) -> f64 {
    let plan = plan_for_algorithm(net, spec, routing, alg);
    build_schedule(spec, &plan)
        .expect("schedulable")
        .round_cost(net.energy())
        .total_uj()
}

fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..16, 3usize..16, 0u32..=10, any::<u64>()).prop_map(|(dests, sources, tenths, seed)| {
        WorkloadConfig {
            destination_count: dests,
            sources_per_destination: sources,
            selection: SourceSelection::Dispersion {
                dispersion: f64::from(tenths) / 10.0,
                max_hops: 4,
            },
            kind: m2m_core::agg::AggregateKind::WeightedAverage,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Optimal ≤ multicast and optimal ≤ aggregation — in payload bytes
    /// and in total round energy — in both routing modes.
    #[test]
    fn optimal_dominates_baselines(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree, RoutingMode::SteinerTrees] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let opt_plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
            let mc_plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Multicast);
            let ag_plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Aggregation);
            prop_assert!(opt_plan.total_payload_bytes() <= mc_plan.total_payload_bytes());
            prop_assert!(opt_plan.total_payload_bytes() <= ag_plan.total_payload_bytes());

            let opt = energy_uj(&net, &spec, &routing, Algorithm::Optimal);
            let mc = energy_uj(&net, &spec, &routing, Algorithm::Multicast);
            let ag = energy_uj(&net, &spec, &routing, Algorithm::Aggregation);
            prop_assert!(opt <= mc + 1e-6, "{mode:?}: optimal {opt} > multicast {mc}");
            prop_assert!(opt <= ag + 1e-6, "{mode:?}: optimal {opt} > aggregation {ag}");
        }
    }

    /// Per-edge: the optimal solution's unit count never exceeds the
    /// multicast unit count (|S_e|) nor the aggregation unit count
    /// (number of groups), matching the §2.2 cover bound.
    #[test]
    fn per_edge_unit_counts_bounded(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
        for (p, sol) in plan.problems().iter().zip(plan.solutions()) {
            prop_assert!(sol.unit_count() <= p.sources.len().max(p.groups.len()));
        }
    }

    /// Flood cost is independent of how destinations are arranged — it
    /// depends only on the number of distinct sources — and is far more
    /// expensive than optimal on sparse workloads.
    #[test]
    fn flood_behaves_as_described(cfg in workload_strategy()) {
        let net = network();
        let spec = generate_workload(&net, &cfg);
        let flood = flood_round_cost(&net, &spec);
        prop_assert_eq!(flood.messages, net.node_count());
        prop_assert_eq!(
            flood.payload_bytes,
            (net.node_count() * spec.all_sources().len() * 4) as u64
        );
        // Sparse workloads (the strategy caps at 15 destinations ×
        // 15 sources on 68 nodes): flood ≫ optimal.
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let opt = energy_uj(&net, &spec, &routing, Algorithm::Optimal);
        prop_assert!(flood.total_uj() > opt);
    }
}
