#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, and a
# warnings-as-errors clippy pass over every target (libs, bins, tests,
# benches, examples). Run from anywhere; works on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
