#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, a
# warnings-as-errors clippy pass over every target (libs, bins, tests,
# benches, examples), and a smoke run of the round-execution benchmark
# (fails if the compiled executor is slower than the naive per-round
# path on the stock 250-node deployment). Run from anywhere; works on
# the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
./target/release/bench_runtime --smoke

echo "verify: OK"
