#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, a
# warnings-as-errors clippy pass over every target (libs, bins, tests,
# benches, examples), and a smoke run of the round-execution benchmark
# (fails if the compiled executor is slower than the naive per-round
# path on the stock 250-node deployment). Run from anywhere; works on
# the repo root.
#
# Telemetry gate: the smoke benchmark runs twice, with M2M_TRACE=0 and
# M2M_TRACE=1. The two runs must print the same `smoke_digest=` line
# (tracing must be unobservable in results and costs), the traced run
# must export a non-empty counter snapshot, and the in-process timing of
# the tracing-*disabled* hot path must agree across the two runs within
# M2M_SMOKE_TOL percent (default 2 — the disabled path is the same code
# either way, so anything beyond noise means the flag leaked into it).
# The timing comparison is cross-process wall clock, so a noisy-neighbor
# blip can trip it spuriously; the pair is retried up to 3 times and only
# persistent drift fails. Digest mismatches never retry.
#
# Performance gate: the smoke benchmark prints `smoke_batched_speedup=`,
# the lane-batched executor's rounds/sec over the *same-run* naive
# interpreter. The ratio is machine-independent (both sides share the
# process, the load, and the clock), so the gate holds an absolute floor
# against it: M2M_PERF_FLOOR (default 200x). A real regression in the
# batched hot path shows up as this ratio collapsing no matter how slow
# the box is.
#
# Resilience gate: a smoke run of the fault-tolerance benchmark (asserts
# the lossy executor at p=0 is bit-identical to the compiled path and
# that lossy batches are thread-count invariant, and must print the same
# per-scenario digests across two back-to-back runs), plus a schema
# check of the committed BENCH_resilience.json artifact.
#
# Plan front-end gate: a smoke run of the scaling benchmark builds the
# 1k-node spec→plan front end (routing forest → topology intern → edge
# problems → serial solve) and prints `smoke_builds_per_sec=`, held
# against an absolute M2M_BUILD_FLOOR (default 2 builds/sec; ~14
# measured on the 1-core reference container). It also prints
# `smoke_forest_digest=`, an FNV-1a over the routing forest's directed
# edge set, which must be identical across two back-to-back runs — the
# arena-reuse fast path may never perturb routing structure.
#
# Observability gate: a smoke run of `m2m_obs` reconciles the per-node
# planes, the flight recorder's totals, and the global counters exactly,
# requires bit-identical outcome digests with the obs layer on and off,
# and holds the enabled-path overhead within M2M_OBS_TOL percent
# (default 5; wall-clock, retried up to 3 times). The committed
# BENCH_obs.json artifact is schema-checked with `m2m_obs --check`.
#
# Service gate: a smoke run of the multi-tenant plan-service benchmark
# admits a 64-tenant fleet over one shared 1k-node deployment (the run
# itself asserts shared-substrate tenants are bit-identical to isolated
# sessions, the 64th admission costs at most 25% of the 1st, and
# checkpoint→restore→replay is byte-identical and solve-free) and prints
# `smoke_svc_admits_per_sec=`, held against an absolute M2M_SVC_FLOOR
# (default 5 admits/sec; ~150 measured on the 1-core reference
# container). It also prints `smoke_svc_digest=`, an FNV-1a over the
# final checkpoint text, which must be identical across two back-to-back
# runs. The committed BENCH_service.json is schema-checked alongside.
#
# Simulator gate: a smoke run of the discrete-event benchmark drives a
# lossy epoch at 1k nodes (the run itself asserts the simulator at p=0
# is bit-identical to the compiled executor and that the distributed
# per-edge cover solve matched the centralized plan) and prints
# `smoke_sim_events_per_sec=`, held against an absolute M2M_SIM_FLOOR
# (default 100k events/sec; ~14M measured on the 1-core reference
# container). It also prints `smoke_sim_digest=`, an FNV-1a over every
# outcome of the epoch, which must be identical across two back-to-back
# runs. The committed BENCH_sim.json is schema-checked alongside.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# The interpreted reference executor is feature-gated out of the default
# build; keep its equivalence property in the gate explicitly.
cargo test -q -p m2m-core --features test-oracle --test exec_equivalence
cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

get() { grep "^$2=" "$tmpdir/$1.txt" | cut -d= -f2; }

# Correctness gates (digest, export) fail hard on the first attempt; the
# timing-drift gate compares wall-clock minima across two processes, so a
# noisy-neighbor blip can trip it without any real leak — retry the pair a
# few times and only fail on persistent drift.
tol="${M2M_SMOKE_TOL:-2}"
drift_ok=0
for attempt in 1 2 3; do
    M2M_TRACE=0 ./target/release/bench_runtime --smoke > "$tmpdir/off.txt"
    M2M_TRACE=1 M2M_TRACE_OUT="$tmpdir/trace.json" \
        ./target/release/bench_runtime --smoke > "$tmpdir/on.txt"

    digest_off=$(get off smoke_digest)
    digest_on=$(get on smoke_digest)
    if [ "$digest_off" != "$digest_on" ]; then
        echo "verify: FAIL — tracing changed benchmark results" \
             "($digest_off vs $digest_on)" >&2
        exit 1
    fi

    if ! [ -s "$tmpdir/trace.json" ] || ! grep -q '"counters"' "$tmpdir/trace.json"; then
        echo "verify: FAIL — traced run exported no counter snapshot" >&2
        exit 1
    fi

    if awk -v a="$(get off smoke_disabled_ns)" -v b="$(get on smoke_disabled_ns)" -v tol="$tol" '
    BEGIN {
        lo = (a < b) ? a : b; hi = (a < b) ? b : a
        pct = (hi - lo) / lo * 100
        printf "verify: disabled-path hot loop %.1f ns vs %.1f ns (%.2f%% apart, tol %s%%)\n", a, b, pct, tol
        exit (pct <= tol) ? 0 : 1
    }'; then
        drift_ok=1
        break
    fi
    echo "verify: timing drift beyond tolerance (attempt $attempt/3), retrying"
done
if [ "$drift_ok" != 1 ]; then
    echo "verify: FAIL — disabled-path timing drifted beyond tolerance on every attempt" >&2
    exit 1
fi

echo "verify: telemetry gate OK (digest $digest_off)"

floor="${M2M_PERF_FLOOR:-200}"
awk -v s="$(get off smoke_batched_speedup)" -v floor="$floor" '
BEGIN {
    printf "verify: batched path %.1fx the naive path (floor %sx)\n", s, floor
    exit (s + 0 >= floor + 0) ? 0 : 1
}' || { echo "verify: FAIL — batched speedup fell below M2M_PERF_FLOOR" >&2; exit 1; }

echo "verify: performance gate OK"

./target/release/bench_resilience --smoke > "$tmpdir/res1.txt"
./target/release/bench_resilience --smoke > "$tmpdir/res2.txt"
if ! diff <(grep '^smoke_digest_' "$tmpdir/res1.txt") \
          <(grep '^smoke_digest_' "$tmpdir/res2.txt"); then
    echo "verify: FAIL — resilience smoke digests drifted between runs" >&2
    exit 1
fi
./target/release/bench_resilience --check BENCH_resilience.json

echo "verify: resilience gate OK ($(grep -c '^smoke_digest_' "$tmpdir/res1.txt") scenarios)"

./target/release/bench_scale --smoke > "$tmpdir/scale1.txt"
./target/release/bench_scale --smoke > "$tmpdir/scale2.txt"
digest1=$(get scale1 smoke_forest_digest)
digest2=$(get scale2 smoke_forest_digest)
if [ "$digest1" != "$digest2" ]; then
    echo "verify: FAIL — routing forest digest drifted between runs" \
         "($digest1 vs $digest2)" >&2
    exit 1
fi
build_floor="${M2M_BUILD_FLOOR:-2}"
awk -v b="$(get scale1 smoke_builds_per_sec)" -v floor="$build_floor" '
BEGIN {
    printf "verify: plan front-end %.2f builds/sec at 1k nodes (floor %s)\n", b, floor
    exit (b + 0 >= floor + 0) ? 0 : 1
}' || { echo "verify: FAIL — front-end builds/sec fell below M2M_BUILD_FLOOR" >&2; exit 1; }

echo "verify: plan front-end gate OK (forest digest $digest1)"

# Observability gate: the flight-recorder smoke run must reconcile its
# per-node planes / recorder totals / global counters exactly, the
# obs-on and obs-off outcome digests must match bit for bit (both fail
# hard — they are deterministic), and the enabled-path overhead must
# stay within M2M_OBS_TOL percent of the disabled path (wall-clock, so
# retried like the telemetry drift gate). The committed BENCH_obs.json
# is schema-checked alongside.
obs_tol="${M2M_OBS_TOL:-5}"
obs_ok=0
for attempt in 1 2 3; do
    ./target/release/m2m_obs --smoke > "$tmpdir/obs.txt"
    if [ "$(get obs smoke_obs_digest_on)" != "$(get obs smoke_obs_digest_off)" ]; then
        echo "verify: FAIL — observability changed lossy outcomes" >&2
        exit 1
    fi
    if [ "$(get obs smoke_obs_reconcile)" != "exact" ]; then
        echo "verify: FAIL — obs books failed to reconcile" >&2
        exit 1
    fi
    if awk -v p="$(get obs smoke_obs_overhead_pct)" -v tol="$obs_tol" '
    BEGIN {
        printf "verify: obs enabled-path overhead %.2f%% (budget %s%%)\n", p, tol
        exit (p <= tol + 0) ? 0 : 1
    }'; then
        obs_ok=1
        break
    fi
    echo "verify: obs overhead beyond budget (attempt $attempt/3), retrying"
done
if [ "$obs_ok" != 1 ]; then
    echo "verify: FAIL — obs enabled-path overhead beyond budget on every attempt" >&2
    exit 1
fi
./target/release/m2m_obs --check BENCH_obs.json

echo "verify: observability gate OK"

./target/release/bench_sim --smoke > "$tmpdir/sim1.txt"
./target/release/bench_sim --smoke > "$tmpdir/sim2.txt"
sim_digest1=$(get sim1 smoke_sim_digest)
sim_digest2=$(get sim2 smoke_sim_digest)
if [ "$sim_digest1" != "$sim_digest2" ]; then
    echo "verify: FAIL — simulator epoch digest drifted between runs" \
         "($sim_digest1 vs $sim_digest2)" >&2
    exit 1
fi
sim_floor="${M2M_SIM_FLOOR:-100000}"
awk -v e="$(get sim1 smoke_sim_events_per_sec)" -v floor="$sim_floor" '
BEGIN {
    printf "verify: simulator %.0f events/sec at 1k nodes (floor %s)\n", e, floor
    exit (e + 0 >= floor + 0) ? 0 : 1
}' || { echo "verify: FAIL — simulator events/sec fell below M2M_SIM_FLOOR" >&2; exit 1; }
./target/release/bench_sim --check BENCH_sim.json

echo "verify: simulator gate OK (epoch digest $sim_digest1)"

./target/release/bench_service --smoke > "$tmpdir/svc1.txt"
./target/release/bench_service --smoke > "$tmpdir/svc2.txt"
svc_digest1=$(get svc1 smoke_svc_digest)
svc_digest2=$(get svc2 smoke_svc_digest)
if [ "$svc_digest1" != "$svc_digest2" ]; then
    echo "verify: FAIL — service checkpoint digest drifted between runs" \
         "($svc_digest1 vs $svc_digest2)" >&2
    exit 1
fi
svc_floor="${M2M_SVC_FLOOR:-5}"
awk -v a="$(get svc1 smoke_svc_admits_per_sec)" -v floor="$svc_floor" '
BEGIN {
    printf "verify: plan service %.2f admits/sec at 1k nodes (floor %s)\n", a, floor
    exit (a + 0 >= floor + 0) ? 0 : 1
}' || { echo "verify: FAIL — service admits/sec fell below M2M_SVC_FLOOR" >&2; exit 1; }
awk -v m="$(get svc1 smoke_svc_marginal_64_pct)" '
BEGIN {
    printf "verify: 64th tenant admission at %.2f%% of the 1st (budget 25%%)\n", m
    exit (m + 0 <= 25.0) ? 0 : 1
}' || { echo "verify: FAIL — 64th-tenant marginal cost breached the budget" >&2; exit 1; }
./target/release/bench_service --check BENCH_service.json

echo "verify: plan service gate OK (checkpoint digest $svc_digest1)"
echo "verify: OK"
