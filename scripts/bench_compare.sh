#!/usr/bin/env bash
# Diff two committed BENCH_*.json artifacts metric by metric.
#
#   scripts/bench_compare.sh OLD.json NEW.json
#
# Both files are flattened to dotted `path=value` lines (the artifacts
# are emitted by m2m_bench::report with one key per line, two-space
# indentation, so no real JSON parser is needed — plain awk tracks the
# object/array nesting). Numeric metrics common to both files print
# old, new, absolute delta, and percent change; everything else prints
# as changed/only-in-old/only-in-new. Informational by default; pass
# --max-regress PCT to exit non-zero when any `rounds_per_sec` /
# `speedup` / `builds_per_sec` / `events_per_sec` style higher-is-better
# metric (this covers BENCH_sim.json's simulator throughput) drops by
# more than PCT percent.
set -euo pipefail

max_regress=""
args=()
while [ $# -gt 0 ]; do
    case "$1" in
        --max-regress)
            max_regress="${2:?--max-regress needs a percent}"
            shift 2
            ;;
        *)
            args+=("$1")
            shift
            ;;
    esac
done
if [ "${#args[@]}" -ne 2 ]; then
    echo "usage: $0 [--max-regress PCT] OLD.json NEW.json" >&2
    exit 2
fi
old="${args[0]}"
new="${args[1]}"
for f in "$old" "$new"; do
    [ -r "$f" ] || { echo "bench_compare: cannot read $f" >&2; exit 2; }
done

# Flatten one artifact: nested keys join with '.', array elements index
# as [i]. Scalars print as path=value.
flatten() {
    awk '
    function path(    p, i) {
        p = ""
        for (i = 1; i <= depth; i++) p = p (p == "" ? "" : ".") stack[i]
        return p
    }
    function push(name) { depth++; stack[depth] = name; count[depth] = 0 }
    function pop() { delete count[depth]; depth-- }
    {
        line = $0
        gsub(/^[ \t]+|[ \t\r]+$/, "", line)
        sub(/,$/, "", line)
        if (line == "" ) next
        if (line == "{" || line == "[") {
            # Anonymous child: an element of the enclosing array.
            if (depth > 0) { idx = count[depth]; count[depth]++; push("[" idx "]") }
            else push("")
            next
        }
        if (line == "}" || line == "]") { pop(); next }
        if (match(line, /^"[^"]*"[ \t]*:/)) {
            key = substr(line, 2)
            sub(/"[ \t]*:.*/, "", key)
            rest = substr(line, RLENGTH + 1)
            gsub(/^[ \t]+/, "", rest)
            if (rest == "{" || rest == "[") { push(key); next }
            p = path()
            print (p == "" ? key : p "." key) "=" rest
            next
        }
        # Bare scalar inside an array.
        if (depth > 0) {
            p = path()
            print p "[" count[depth] "]=" line
            count[depth]++
        }
    }
    ' "$1" | LC_ALL=C sort
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
flatten "$old" > "$tmpdir/old.flat"
flatten "$new" > "$tmpdir/new.flat"

awk -F= -v maxreg="${max_regress:-}" -v oldname="$old" -v newname="$new" '
function isnum(v) { return v ~ /^-?[0-9]+(\.[0-9]+)?$/ }
function higher_is_better(k) {
    return k ~ /(rounds_per_sec|per_sec|speedup|coverage|delivered_fraction)/
}
NR == FNR { a[$1] = $2; order[n++] = $1; next }
{
    b[$1] = $2
    if (!($1 in a)) added[m++] = $1
}
END {
    printf "bench_compare: %s -> %s\n", oldname, newname
    changed = 0; regressed = 0
    for (i = 0; i < n; i++) {
        k = order[i]
        if (!(k in b)) { printf "  only in old: %s = %s\n", k, a[k]; changed++; continue }
        if (a[k] == b[k]) continue
        changed++
        if (isnum(a[k]) && isnum(b[k]) && a[k] + 0 != 0) {
            pct = (b[k] - a[k]) / (a[k] < 0 ? -a[k] : a[k]) * 100
            printf "  %-52s %14s -> %-14s (%+.2f%%)\n", k, a[k], b[k], pct
            if (maxreg != "" && higher_is_better(k) && pct < -(maxreg + 0)) {
                printf "  ^ REGRESSION beyond %s%%\n", maxreg
                regressed++
            }
        } else {
            printf "  %-52s %s -> %s\n", k, a[k], b[k]
        }
    }
    for (i = 0; i < m; i++) printf "  only in new: %s = %s\n", added[i], b[added[i]]
    if (changed == 0 && m == 0) print "  identical"
    if (regressed > 0) exit 1
}
' "$tmpdir/old.flat" "$tmpdir/new.flat"
