//! A fast, deterministic hasher for interning tables.
//!
//! The plan front-end interns millions of small keys per build — route
//! suffixes, directed edges, node positions — and the standard library's
//! default SipHash is the dominant cost of those tables at 10k+ nodes
//! (interning every suffix of every route hashes O(path²) words per
//! route). This is the multiply-rotate word hash used by rustc
//! (`FxHasher`), reimplemented here because the workspace takes no
//! external dependencies: a few cycles per word, deterministic across
//! runs and platforms of equal word size.
//!
//! Only use it for tables keyed by trusted internal data (node ids,
//! edges, interned slices): it has no DoS resistance, which is exactly
//! the property traded away for speed.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash algorithm (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// The rustc word-at-a-time multiply-rotate hasher.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_ne_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (m2m_graph::NodeId(3), m2m_graph::NodeId(17));
        assert_eq!(hash_one(&key), hash_one(&key));
        assert_ne!(hash_one(&key), hash_one(&(key.1, key.0)));
    }

    #[test]
    fn slices_with_shared_prefix_differ() {
        let a: &[u32] = &[1, 2, 3];
        let b: &[u32] = &[1, 2, 3, 0];
        assert_ne!(hash_one(&a), hash_one(&b));
        let s: &[u8] = b"ab";
        let t: &[u8] = b"ab\0";
        assert_ne!(hash_one(&s), hash_one(&t));
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..100usize {
            map.insert((0..i as u32).collect(), i);
        }
        for i in 0..100usize {
            assert_eq!(map[&(0..i as u32).collect::<Vec<_>>()], i);
        }
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }
}
