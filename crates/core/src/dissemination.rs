//! Plan-dissemination cost (§3): the node tables are "computed
//! out-of-network according to the optimal many-to-many aggregation plan,
//! and disseminated into the network".
//!
//! Dissemination is what makes Corollary 1 economically important: "if a
//! small update were to force us to re-optimize and transmit new plans to
//! all edges, the cost would perhaps be prohibitively high". This module
//! prices installing node state from a base station over its
//! shortest-path tree — for the initial plan (every participating node)
//! and for an update (only nodes whose state actually changed).

use std::collections::BTreeMap;

use m2m_graph::spt::ShortestPathTree;
use m2m_graph::NodeId;
use m2m_netsim::Network;

use crate::metrics::RoundCost;
use crate::tables::NodeTables;

/// On-air bytes per state-table entry (identifier pair + parameters; the
/// same order of magnitude as a partial aggregate record).
pub const STATE_ENTRY_BYTES: u32 = 6;

/// Nodes whose state differs between two table sets (present in either),
/// sorted. This is exactly the set an update must re-provision.
pub fn changed_nodes(old: &NodeTables, new: &NodeTables) -> Vec<NodeId> {
    let mut changed = Vec::new();
    let old_map: BTreeMap<NodeId, _> = old.nodes().collect();
    let new_map: BTreeMap<NodeId, _> = new.nodes().collect();
    for (&n, state) in &new_map {
        match old_map.get(&n) {
            Some(prev) if *prev == *state => {}
            _ => changed.push(n),
        }
    }
    for &n in old_map.keys() {
        if !new_map.contains_key(&n) {
            changed.push(n);
        }
    }
    changed.sort_unstable();
    changed.dedup();
    changed
}

/// Cost of shipping each listed node its state payload from `station`,
/// batched per edge of the station's shortest-path tree (an edge carries
/// the bytes of every target below it in one message).
pub fn dissemination_cost(
    network: &Network,
    station: NodeId,
    targets: &[(NodeId, u32)],
) -> RoundCost {
    let spt = ShortestPathTree::build(network.graph(), station);
    let mut edge_bytes: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
    let mut total_units = 0usize;
    for &(target, bytes) in targets {
        if bytes == 0 || target == station {
            continue;
        }
        let path = spt
            .path_to(target)
            .unwrap_or_else(|| panic!("target {target} unreachable from station {station}"));
        total_units += 1;
        for hop in path.windows(2) {
            *edge_bytes.entry((hop[0], hop[1])).or_insert(0) += bytes;
        }
    }
    let energy = network.energy();
    let mut cost = RoundCost::default();
    for &body in edge_bytes.values() {
        cost.tx_uj += energy.tx_cost_uj(body);
        cost.rx_uj += energy.rx_cost_uj(body);
        cost.messages += 1;
        cost.payload_bytes += u64::from(body);
    }
    cost.units = total_units;
    cost
}

/// Cost of installing a complete plan's tables from scratch.
pub fn full_install_cost(network: &Network, station: NodeId, tables: &NodeTables) -> RoundCost {
    let targets: Vec<(NodeId, u32)> = tables
        .nodes()
        .map(|(n, s)| (n, s.entry_count() as u32 * STATE_ENTRY_BYTES))
        .collect();
    dissemination_cost(network, station, &targets)
}

/// Cost of migrating from `old` to `new`: only changed nodes receive
/// their (entire new) state. Removed nodes receive a zero-payload
/// tombstone of one entry.
pub fn update_install_cost(
    network: &Network,
    station: NodeId,
    old: &NodeTables,
    new: &NodeTables,
) -> RoundCost {
    let targets: Vec<(NodeId, u32)> = changed_nodes(old, new)
        .into_iter()
        .map(|n| {
            let bytes = new
                .node(n)
                .map(|s| s.entry_count() as u32 * STATE_ENTRY_BYTES)
                .unwrap_or(STATE_ENTRY_BYTES); // tombstone
            (n, bytes)
        })
        .collect();
    dissemination_cost(network, station, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basestation::choose_station;
    use crate::dynamics::{PlanMaintainer, WorkloadUpdate};
    use crate::tables::NodeTables;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    #[test]
    fn empty_target_list_is_free() {
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 12.0));
        let cost = dissemination_cost(&net, NodeId(0), &[]);
        assert_eq!(cost, RoundCost::default());
    }

    #[test]
    fn line_dissemination_batches_along_shared_prefix() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        // Targets at 2 and 3 from station 0: edges 0→1 and 1→2 carry both
        // payloads; edge 2→3 carries one.
        let cost = dissemination_cost(&net, NodeId(0), &[(NodeId(2), 10), (NodeId(3), 10)]);
        assert_eq!(cost.messages, 3);
        assert_eq!(cost.payload_bytes, 20 + 20 + 10);
    }

    #[test]
    fn incremental_update_is_far_cheaper_than_full_install() {
        let net = Network::with_default_energy(Deployment::great_duck_island(14));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 14, 6));
        let mut maintainer = PlanMaintainer::new(net.clone(), spec, RoutingMode::ShortestPathTrees);
        let station = choose_station(&net);
        let old_tables = NodeTables::build(maintainer.spec(), maintainer.plan());

        let d = maintainer.spec().destinations().next().unwrap();
        let s = maintainer
            .spec()
            .all_sources()
            .into_iter()
            .find(|&s| !maintainer.spec().is_source_of(s, d) && s != d)
            .unwrap();
        maintainer.apply(WorkloadUpdate::AddSource {
            destination: d,
            source: s,
            weight: 1.0,
        });
        let new_tables = NodeTables::build(maintainer.spec(), maintainer.plan());

        let full = full_install_cost(&net, station, &new_tables);
        let update = update_install_cost(&net, station, &old_tables, &new_tables);
        assert!(
            update.total_uj() < full.total_uj() / 2.0,
            "one-source update should cost a fraction of a full install \
             ({:.0} vs {:.0} µJ)",
            update.total_uj(),
            full.total_uj()
        );
        // Only a handful of nodes changed.
        let changed = changed_nodes(&old_tables, &new_tables);
        assert!(
            changed.len() < net.node_count() / 4,
            "{} of {} nodes changed",
            changed.len(),
            net.node_count()
        );
    }

    #[test]
    fn removed_nodes_get_tombstones() {
        let net = Network::with_default_energy(Deployment::great_duck_island(14));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(6, 6, 6));
        let mut maintainer = PlanMaintainer::new(net.clone(), spec, RoutingMode::ShortestPathTrees);
        let station = choose_station(&net);
        let old_tables = NodeTables::build(maintainer.spec(), maintainer.plan());
        // Retire a destination: some nodes drop out of the plan entirely.
        let d = maintainer.spec().destinations().next().unwrap();
        maintainer.apply(WorkloadUpdate::RemoveDestination { destination: d });
        let new_tables = NodeTables::build(maintainer.spec(), maintainer.plan());
        let changed = changed_nodes(&old_tables, &new_tables);
        assert!(!changed.is_empty());
        // Nodes present only in the old tables are included (tombstoned).
        let dropped: Vec<NodeId> = old_tables
            .nodes()
            .map(|(n, _)| n)
            .filter(|n| new_tables.node(*n).is_none())
            .collect();
        for n in dropped {
            assert!(
                changed.contains(&n),
                "dropped node {n} must be re-provisioned"
            );
        }
        let cost = update_install_cost(&net, station, &old_tables, &new_tables);
        assert!(cost.total_uj() > 0.0);
    }

    #[test]
    fn identical_tables_have_no_update_cost() {
        let net = Network::with_default_energy(Deployment::great_duck_island(14));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 8, 6));
        let maintainer = PlanMaintainer::new(net.clone(), spec, RoutingMode::ShortestPathTrees);
        let tables = NodeTables::build(maintainer.spec(), maintainer.plan());
        let cost = update_install_cost(&net, choose_station(&net), &tables, &tables);
        assert_eq!(cost, RoundCost::default());
    }
}
