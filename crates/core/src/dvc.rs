//! Distributed per-edge vertex-cover solves: the §2.2 optimization as a
//! message-passing protocol, in the style of the distributed vertex
//! cover algorithms surveyed for wireless sensor networks
//! (arXiv:1402.2140) — no node ever sees the global workload, yet the
//! composed plan equals the centralized [`crate::plan::GlobalPlan`]
//! optimum *exactly*.
//!
//! # Protocol
//!
//! Three phases, each a wave over the demanded routing trees:
//!
//! 1. **Demand climb** — every destination `d` emits one token per
//!    multicast tree it is demanded in, carrying `(d, record width of
//!    d's function)`; the width is the only thing `d` must know, and it
//!    is node-local knowledge. The token climbs one hop per round
//!    toward the tree's source, extending its continuation suffix as it
//!    goes; each traversed edge's tail registers the `(source, group)`
//!    pair and learns `d`'s record width. After `max path length`
//!    rounds every edge tail holds exactly its [`EdgeProblem`] — the
//!    same sorted slab [`crate::edge_opt::build_edge_problems`] builds
//!    centrally, because the registrations are the same set and the
//!    local sort is the same order.
//! 2. **Local solves** — each edge tail solves its own cover with
//!    [`solve_edge_sized`] over the widths it learned. The weights and
//!    the §2.3 tiebreak priorities are built from exactly the numbers
//!    the centralized solver uses, and the canonical min-cut is
//!    deterministic, so each local solution is *identical* to the
//!    centralized one — this is Theorem 1's per-edge decomposability
//!    made operational: independence is what lets every node solve
//!    alone.
//! 3. **Availability wave** — each source floods an `available` bit
//!    down its tree, one hop per round: a node that received the raw
//!    value forwards `avail && raw(e)`; an edge that chose raw without
//!    upstream availability patches itself locally
//!    ([`patch_edge_sized`]), exactly the §2.3 repair sweep. The patch
//!    set is order-independent (see [`crate::plan`]), so the wave's
//!    hop-parallel order changes nothing.
//!
//! # Convergence
//!
//! Every phase is a monotone wave over a finite forest: phase 1
//! terminates after `max hops` rounds (tokens strictly ascend), phase 3
//! after `max depth` rounds (the bit strictly descends), and phase 2 is
//! purely local. No negotiation ever revisits a settled edge, so the
//! protocol converges in `O(network diameter)` rounds with one message
//! per token-hop plus one per tree edge — and, by the argument above,
//! converges *to the centralized optimum*, which
//! `tests/dvc_agreement.rs` pins over random workloads and all three
//! routing modes.

use m2m_graph::NodeId;

use crate::edge_opt::EdgeSolveScratch;
use crate::edge_opt::{patch_edge_sized, solve_edge_sized, AggGroup, EdgeProblem, EdgeSolution};
use crate::spec::AggregationSpec;
use crate::telemetry::names;
use crate::topo::Topology;

/// What the distributed protocol converged to, plus its cost accounting.
#[derive(Clone, Debug)]
pub struct DvcOutcome {
    /// Per-edge problems as assembled from demand tokens, in
    /// [`crate::topo::EdgeIdx`] order (equal to
    /// [`crate::edge_opt::build_edge_problems`] output).
    pub problems: Vec<EdgeProblem>,
    /// Per-edge solutions after local solves and the availability wave,
    /// in the same order (equal to the centralized plan's slab).
    pub solutions: Vec<EdgeSolution>,
    /// Protocol rounds until convergence (demand climb + availability
    /// wave; local solves are round-free).
    pub rounds: u64,
    /// Negotiation messages exchanged (token hops + availability bits).
    pub messages: u64,
    /// Edges patched by the availability wave.
    pub patches: usize,
}

impl DvcOutcome {
    /// True if the distributed solutions equal `solutions` (the
    /// centralized plan slab) bit-for-bit.
    pub fn agrees_with(&self, solutions: &[EdgeSolution]) -> bool {
        self.solutions == solutions
    }
}

/// One edge's learned record-width table: `(destination, bytes)`,
/// sorted. Node-local knowledge accumulated from demand tokens.
type WidthTable = Vec<(NodeId, u32)>;

fn learn_width(table: &mut WidthTable, d: NodeId, bytes: u32) {
    match table.binary_search_by_key(&d, |&(dest, _)| dest) {
        Ok(i) => debug_assert_eq!(table[i].1, bytes, "destination width must be stable"),
        Err(i) => table.insert(i, (d, bytes)),
    }
}

fn width_of(table: &WidthTable, d: NodeId) -> u32 {
    table
        .binary_search_by_key(&d, |&(dest, _)| dest)
        .map(|i| table[i].1)
        .unwrap_or_else(|_| panic!("no demand token taught this edge destination {d}'s width"))
}

/// Runs the three-phase distributed solve over the demanded topology.
/// `spec` is consulted **only** for each destination's own record width
/// (the knowledge the destination node itself holds); everything else
/// travels in protocol messages.
pub fn solve_distributed(topo: &Topology, spec: &AggregationSpec) -> DvcOutcome {
    let ne = topo.edge_count();
    let mut rounds = 0u64;
    let mut messages = 0u64;

    // ---- Phase 1: demand climb -------------------------------------
    // Token hops, bucketed per edge. A token traversing hop k of its
    // path registers at that hop's tail; all hops of one path are
    // distinct edges, and the per-round schedule (all tokens advance in
    // lockstep) only affects *when* a registration lands, never the
    // final per-edge registration set — so we bucket path-order and
    // account rounds as the longest climb.
    let mut regs: Vec<Vec<(NodeId, AggGroup)>> = vec![Vec::new(); ne];
    let mut widths: Vec<WidthTable> = vec![Vec::new(); ne];
    for tree in topo.trees() {
        let s = tree.source();
        for dp in tree.dest_paths() {
            let d = dp.destination();
            let bytes = spec
                .function(d)
                .expect("demanded destination has a function")
                .partial_record_bytes();
            rounds = rounds.max(dp.hops().len() as u64);
            messages += dp.hops().len() as u64;
            for (edge_idx, suffix) in dp.hops() {
                regs[edge_idx.index()].push((
                    s,
                    AggGroup {
                        destination: d,
                        suffix: std::sync::Arc::clone(suffix),
                    },
                ));
                learn_width(&mut widths[edge_idx.index()], d, bytes);
            }
        }
    }
    let problems: Vec<EdgeProblem> = (0..ne)
        .map(|e| {
            let span = &mut regs[e];
            span.sort_unstable();
            span.dedup();
            let mut sources: Vec<NodeId> = Vec::new();
            for (s, _) in span.iter() {
                if sources.last() != Some(s) {
                    sources.push(*s);
                }
            }
            let mut groups: Vec<AggGroup> = span.iter().map(|(_, g)| g.clone()).collect();
            groups.sort_unstable();
            groups.dedup();
            let pairs: Vec<(usize, usize)> = span
                .iter()
                .map(|(s, g)| {
                    (
                        sources.binary_search(s).expect("source registered"),
                        groups.binary_search(g).expect("group registered"),
                    )
                })
                .collect();
            EdgeProblem {
                edge: topo.edges()[e],
                sources,
                groups,
                pairs,
            }
        })
        .collect();

    // ---- Phase 2: local solves -------------------------------------
    let mut scratch = EdgeSolveScratch::new();
    let mut solutions: Vec<EdgeSolution> = problems
        .iter()
        .enumerate()
        .map(|(e, p)| solve_edge_sized(&mut scratch, p, &|d| width_of(&widths[e], d)))
        .collect();

    // ---- Phase 3: availability wave --------------------------------
    // Per tree, flood the `avail` bit down the CSR adjacency; each hop
    // is one message, the wave's round count is the deepest tree. The
    // stack-depth bookkeeping mirrors `plan::repair_availability`
    // exactly (the patch set is order-independent, so a DFS visit order
    // stands in for the hop-parallel wave without changing the result).
    let mut patches = 0usize;
    let mut stack: Vec<(u32, bool, u64)> = Vec::new();
    for tree in topo.trees() {
        let s = tree.source();
        stack.clear();
        stack.push((0, true, 0));
        while let Some((pos, avail, depth)) = stack.pop() {
            for &(child, e) in tree.children_of(pos) {
                messages += 1;
                rounds = rounds.max(depth + 1);
                let sol = &mut solutions[e.index()];
                let raw = sol.transmits_raw(s);
                if raw && !avail {
                    patch_edge_sized(&problems[e.index()], sol, s, &|d| {
                        width_of(&widths[e.index()], d)
                    });
                    patches += 1;
                }
                stack.push((child, avail && raw, depth + 1));
            }
        }
    }

    crate::telemetry::counter(names::DVC_SOLVES, 1);
    crate::telemetry::counter(names::DVC_ROUNDS, rounds);
    crate::telemetry::counter(names::DVC_MESSAGES, messages);
    crate::m2m_log!(
        crate::telemetry::Level::Debug,
        "dvc converged: {} edges in {} rounds, {} messages, {} patches",
        ne,
        rounds,
        messages,
        patches
    );
    DvcOutcome {
        problems,
        solutions,
        rounds,
        messages,
        patches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::edge_opt::build_edge_problems;
    use crate::plan::GlobalPlan;
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::weighted_average([
                (NodeId(0), 1.0),
                (NodeId(1), 2.0),
                (NodeId(3), 0.5),
                (NodeId(6), 1.5),
            ]),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 2.0), (NodeId(3), 1.0)]),
        );
        s
    }

    #[test]
    fn distributed_solve_matches_centralized_plan_in_every_mode() {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let spec = spec();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let plan = GlobalPlan::build(&net, &spec, &routing);
            let out = solve_distributed(plan.topology(), &spec);
            assert_eq!(
                out.problems,
                build_edge_problems(plan.topology()),
                "{mode:?}: demand climb must assemble the exact problems"
            );
            assert!(
                out.agrees_with(plan.solutions()),
                "{mode:?}: distributed solve must equal the centralized optimum"
            );
            assert_eq!(out.patches, plan.repair_count(), "{mode:?}: same patch set");
            assert!(out.rounds > 0 && out.messages > 0);
        }
    }

    #[test]
    fn rounds_are_bounded_by_the_diameter_waves() {
        let net = Network::with_default_energy(Deployment::grid(6, 1, 10.0, 12.0));
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(5),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &s.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &s, &routing);
        let out = solve_distributed(plan.topology(), &s);
        // One 5-hop climb, and an availability wave of the same depth.
        assert_eq!(out.rounds, 5);
        assert_eq!(out.messages, 10);
        assert!(out.agrees_with(plan.solutions()));
    }
}
