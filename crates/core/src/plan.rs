//! Global plan assembly (§2.3).
//!
//! Theorem 1: optimal solutions to the individual per-edge vertex-cover
//! problems combine into a consistent, globally optimal plan — provided
//! the multicast trees satisfy the §2.1 path-sharing restriction and every
//! per-edge problem has a unique minimum (arranged by the consistent
//! tiebreak weights in [`crate::edge_opt`]).
//!
//! The only possible inconsistency is *raw-availability*: an upstream edge
//! aggregates a value while a downstream edge wants it raw; once
//! aggregated, the raw value cannot be recovered. [`GlobalPlan::build`]
//! therefore runs a top-down sweep along every multicast tree that tracks
//! raw availability and, if a violation is found, *repairs* the downstream
//! edge by forcing aggregation (a strictly feasibility-preserving patch).
//! Under the [`m2m_netsim::RoutingMode::SharedSpanningTree`] mode the
//! sharing restriction holds by construction and — per Theorem 1 — the
//! sweep never fires; with per-source shortest-path trees (the paper's §4
//! setup) violations are rare and counted in
//! [`GlobalPlan::repair_count`].
//!
//! ## Dense layout
//!
//! The plan stores flat slabs — `Vec<EdgeProblem>` / `Vec<EdgeSolution>`
//! in [`crate::topo::EdgeIdx`] order — plus the shared
//! [`Topology`] snapshot that defines that order. Because the edge slab
//! is sorted, slab order coincides with the ascending-key iteration of
//! the `BTreeMap`s this module used to hold, so downstream consumers
//! (scheduling, execution) see the exact same edge sequence. Ordered
//! maps survive only as boundary *views* ([`GlobalPlan::solution_map`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::edge_opt::{
    build_edge_problems, solve_edge_slab, AggGroup, DirectedEdge, EdgeProblem, EdgeSolution,
};
use crate::memo::SolveCache;
use crate::parallel;
use crate::spec::AggregationSpec;
use crate::topo::Topology;

/// The assembled network-wide many-to-many aggregation plan.
#[derive(Clone, Debug)]
pub struct GlobalPlan {
    topo: Arc<Topology>,
    problems: Vec<EdgeProblem>,
    solutions: Vec<EdgeSolution>,
    repairs: usize,
}

impl GlobalPlan {
    /// Builds the optimal plan: solves every single-edge problem
    /// independently — fanned out across worker threads, see
    /// [`crate::parallel`] — then runs the consistency sweep. The result
    /// is bit-identical at every thread count (Theorem 1 plus ordered
    /// collection); `M2M_THREADS=1` reproduces a serial build exactly.
    pub fn build(network: &Network, spec: &AggregationSpec, routing: &RoutingTables) -> Self {
        Self::build_with_threads(network, spec, routing, parallel::max_threads())
    }

    /// [`GlobalPlan::build`] with an explicit worker count.
    pub fn build_with_threads(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        threads: usize,
    ) -> Self {
        debug_assert!(
            routing
                .directed_edges()
                .iter()
                .all(|&(a, b)| network.graph().has_edge(a, b)),
            "every multicast edge must be a radio link"
        );
        Self::build_unchecked_with_threads(spec, routing, threads)
    }

    /// Like [`GlobalPlan::build`] but without checking that the routing
    /// edges are radio links — used for milestone routing, whose virtual
    /// edges span multiple physical hops.
    pub fn build_unchecked(spec: &AggregationSpec, routing: &RoutingTables) -> Self {
        Self::build_unchecked_with_threads(spec, routing, parallel::max_threads())
    }

    /// [`GlobalPlan::build_unchecked`] with an explicit worker count.
    pub fn build_unchecked_with_threads(
        spec: &AggregationSpec,
        routing: &RoutingTables,
        threads: usize,
    ) -> Self {
        let _span = crate::telemetry::span(crate::telemetry::names::PLAN_BUILD_NS);
        let topo = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_INTERN);
            Arc::new(Topology::snapshot(spec, routing))
        };
        let problems = {
            let _s =
                m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_PROBLEMS);
            build_edge_problems(&topo)
        };
        let solutions = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_SOLVE);
            solve_edge_slab(&problems, spec, threads)
        };
        let plan = Self::assemble(spec, topo, problems, solutions, true);
        if crate::telemetry::enabled() {
            crate::telemetry::counter(crate::telemetry::names::PLAN_BUILDS, 1);
            crate::telemetry::counter(crate::telemetry::names::PLAN_REPAIRS, plan.repairs as u64);
        }
        plan
    }

    /// [`GlobalPlan::build`] through a [`SolveCache`]: edges whose
    /// single-edge problem was already solved in an earlier build (same
    /// spec record sizes) reuse that solution verbatim — Corollary 1
    /// applied *across* plan builds. Misses are fanned out in parallel.
    /// The resulting plan is bit-identical to [`GlobalPlan::build`].
    pub fn build_cached(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        cache: &mut SolveCache,
    ) -> Self {
        debug_assert!(
            routing
                .directed_edges()
                .iter()
                .all(|&(a, b)| network.graph().has_edge(a, b)),
            "every multicast edge must be a radio link"
        );
        let _span = crate::telemetry::span(crate::telemetry::names::PLAN_BUILD_NS);
        let topo = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_INTERN);
            Arc::new(Topology::snapshot(spec, routing))
        };
        let problems = {
            let _s =
                m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_PROBLEMS);
            build_edge_problems(&topo)
        };
        let solutions = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_SOLVE);
            cache.solve_all(&problems, spec, parallel::max_threads())
        };
        let plan = Self::assemble(spec, topo, problems, solutions, true);
        if crate::telemetry::enabled() {
            crate::telemetry::counter(crate::telemetry::names::PLAN_BUILDS, 1);
            crate::telemetry::counter(crate::telemetry::names::PLAN_REPAIRS, plan.repairs as u64);
        }
        plan
    }

    /// Builds a plan from externally supplied edge solutions in
    /// [`crate::topo::EdgeIdx`] order (used by the baseline algorithms
    /// and the incremental maintainer). The availability sweep still runs
    /// so every plan handed out is executable.
    pub fn from_solutions(
        spec: &AggregationSpec,
        topo: Arc<Topology>,
        problems: Vec<EdgeProblem>,
        solutions: Vec<EdgeSolution>,
    ) -> Self {
        Self::assemble(spec, topo, problems, solutions, true)
    }

    /// The one true constructor: every public build path funnels through
    /// here, parameterized by whether the §2.3 repair sweep runs.
    /// Skipping the sweep is only sound when the solutions are already
    /// known to be availability-consistent.
    fn assemble(
        spec: &AggregationSpec,
        topo: Arc<Topology>,
        problems: Vec<EdgeProblem>,
        mut solutions: Vec<EdgeSolution>,
        run_repair_sweep: bool,
    ) -> Self {
        debug_assert_eq!(problems.len(), topo.edge_count());
        debug_assert_eq!(solutions.len(), topo.edge_count());
        let repairs = if run_repair_sweep {
            repair_availability(spec, &topo, &problems, &mut solutions)
        } else {
            0
        };
        GlobalPlan {
            topo,
            problems,
            solutions,
            repairs,
        }
    }

    /// The per-edge problems, one per demanded edge in
    /// [`crate::topo::EdgeIdx`] order.
    #[inline]
    pub fn problems(&self) -> &[EdgeProblem] {
        &self.problems
    }

    /// The per-edge solutions, one per demanded edge in
    /// [`crate::topo::EdgeIdx`] order (ascending by directed edge).
    #[inline]
    pub fn solutions(&self) -> &[EdgeSolution] {
        &self.solutions
    }

    /// The interned topology this plan's slabs are laid out over.
    #[inline]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The demanded directed edges, ascending — the slab order of
    /// [`GlobalPlan::problems`] and [`GlobalPlan::solutions`].
    #[inline]
    pub fn edges(&self) -> &[DirectedEdge] {
        self.topo.edges()
    }

    /// Iterates `(edge, solution)` pairs in ascending edge order —
    /// the same sequence the old `BTreeMap` iteration produced.
    pub fn iter_solutions(&self) -> impl Iterator<Item = (DirectedEdge, &EdgeSolution)> {
        self.topo.edges().iter().copied().zip(self.solutions.iter())
    }

    /// The solution for one edge (O(1) via the topology's edge lookup).
    pub fn solution(&self, edge: DirectedEdge) -> Option<&EdgeSolution> {
        self.topo
            .edge_idx(edge)
            .map(|idx| &self.solutions[idx.index()])
    }

    /// The problem for one edge (O(1) via the topology's edge lookup).
    pub fn problem(&self, edge: DirectedEdge) -> Option<&EdgeProblem> {
        self.topo
            .edge_idx(edge)
            .map(|idx| &self.problems[idx.index()])
    }

    /// An ordered-map *view* of the solutions, cloned from the slab —
    /// for API boundaries and diagnostics only; hot paths use the slab.
    pub fn solution_map(&self) -> BTreeMap<DirectedEdge, EdgeSolution> {
        self.iter_solutions().map(|(e, s)| (e, s.clone())).collect()
    }

    /// Number of edges patched by the consistency sweep (0 when the
    /// sharing restriction holds — Theorem 1).
    #[inline]
    pub fn repair_count(&self) -> usize {
        self.repairs
    }

    /// Total payload bytes per round across all edges (headers excluded).
    pub fn total_payload_bytes(&self) -> u64 {
        self.solutions.iter().map(|s| s.cost_bytes).sum()
    }

    /// One-glance statistics of the plan.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            edges: self.solutions.len(),
            raw_units: self.solutions.iter().map(|s| s.raw.len()).sum(),
            record_units: self.solutions.iter().map(|s| s.agg.len()).sum(),
            payload_bytes: self.total_payload_bytes(),
            repairs: self.repairs,
            coherent_edges: self
                .problems
                .iter()
                .filter(|p| p.is_sharing_coherent())
                .count(),
        }
    }

    /// Total message units per round across all edges.
    pub fn total_units(&self) -> usize {
        self.solutions.iter().map(|s| s.unit_count()).sum()
    }

    /// Validates the plan by symbolically routing every `(s, d)` pair:
    /// the value must leave its source raw, may switch to a partial record
    /// exactly once (where its group is chosen), and every edge it crosses
    /// must transmit it in the state the plan claims.
    pub fn validate(&self, spec: &AggregationSpec, routing: &RoutingTables) -> Result<(), String> {
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut raw = true;
                for (idx, hop) in path.windows(2).enumerate() {
                    let edge = (hop[0], hop[1]);
                    let sol = self
                        .solution(edge)
                        .ok_or_else(|| format!("no solution for edge {edge:?}"))?;
                    let group = AggGroup {
                        destination: d,
                        suffix: path[idx + 1..].into(),
                    };
                    if raw {
                        if sol.transmits_raw(s) {
                            // stays raw
                        } else if sol.transmits_group(&group) {
                            raw = false;
                        } else {
                            return Err(format!("pair ({s}, {d}) uncovered on edge {edge:?}"));
                        }
                    } else if !sol.transmits_group(&group) {
                        return Err(format!("record for ({s}, {d}) dropped on edge {edge:?}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks raw-availability consistency *without* repairs, i.e. whether
    /// the independently obtained per-edge optima already compose — the
    /// Theorem 1 property. Returns the number of violations. Takes a map
    /// view (see [`GlobalPlan::solution_map`]) so diagnostics can probe
    /// partial or hand-edited solution sets.
    pub fn count_inconsistencies(
        spec: &AggregationSpec,
        routing: &RoutingTables,
        solutions: &BTreeMap<DirectedEdge, EdgeSolution>,
    ) -> usize {
        let mut violations = 0;
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut avail = true;
                for hop in path.windows(2) {
                    let edge = (hop[0], hop[1]);
                    let Some(sol) = solutions.get(&edge) else {
                        continue;
                    };
                    if sol.transmits_raw(s) {
                        if !avail {
                            violations += 1;
                        }
                    } else {
                        avail = false;
                    }
                }
            }
        }
        violations
    }
}

/// The §2.3 sweep over the interned topology: one depth-first descent of
/// each tree's CSR adjacency, tracking whether the tree's raw value is
/// still available, patching any edge that wants a raw value an upstream
/// edge already aggregated.
///
/// This visits each tree edge exactly once, where the old per-destination
/// path walks revisited shared prefixes — yet the patch set and count are
/// identical: within a tree the path to any edge is unique, a patch fires
/// only where upstream availability is *already* false, and patching
/// (raw → aggregated) cannot flip any downstream availability from false
/// to true. So the set of patched edges is a function of the original
/// solutions — `{e : raw(e) ∧ ¬avail(tail(e))}` — independent of visit
/// order, and the old walks counted each such edge once too (after the
/// first patch the `transmits_raw` guard fails on revisits). Returns the
/// number of patched edges.
fn repair_availability(
    spec: &AggregationSpec,
    topo: &Topology,
    problems: &[EdgeProblem],
    solutions: &mut [EdgeSolution],
) -> usize {
    let mut repairs = 0;
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for tree in topo.trees() {
        let s = tree.source();
        stack.clear();
        stack.push((0, true));
        while let Some((pos, avail)) = stack.pop() {
            for &(child, e) in tree.children_of(pos) {
                let sol = &mut solutions[e.index()];
                let raw = sol.transmits_raw(s);
                if raw && !avail {
                    patch_edge(spec, &problems[e.index()], sol, s);
                    repairs += 1;
                }
                stack.push((child, avail && raw));
            }
        }
    }
    repairs
}

/// Removes `s` from an edge's raw set and forces every continuation group
/// `s` participates in into the aggregate set, preserving cover validity.
/// Delegates to [`crate::edge_opt::patch_edge_sized`] with spec-derived
/// record sizes — the same patch a node applies locally in the
/// distributed sweep ([`crate::dvc`]).
fn patch_edge(spec: &AggregationSpec, problem: &EdgeProblem, sol: &mut EdgeSolution, s: NodeId) {
    crate::edge_opt::patch_edge_sized(problem, sol, s, &|d| {
        spec.function(d)
            .expect("function exists")
            .partial_record_bytes()
    });
}

/// Aggregate statistics of a [`GlobalPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanSummary {
    /// Directed edges carrying traffic.
    pub edges: usize,
    /// Raw message units per round.
    pub raw_units: usize,
    /// Partial-record message units per round.
    pub record_units: usize,
    /// Payload bytes per round (headers excluded).
    pub payload_bytes: u64,
    /// Edges patched by the consistency sweep.
    pub repairs: usize,
    /// Edges whose problem matches the paper's exact (sharing-coherent)
    /// formulation.
    pub coherent_edges: usize,
}

impl std::fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} edges, {} raw + {} record units, {} payload bytes/round, \
             {} repairs, {}/{} coherent edges",
            self.edges,
            self.raw_units,
            self.record_units,
            self.payload_bytes,
            self.repairs,
            self.coherent_edges,
            self.edges
        )
    }
}

/// Size of each destination's *aggregation tree* `A_d` (Theorem 3): the
/// union of the multicast paths from `d`'s sources to `d`, measured in
/// nodes.
pub fn aggregation_tree_sizes(
    spec: &AggregationSpec,
    routing: &RoutingTables,
) -> BTreeMap<NodeId, usize> {
    let mut sizes = BTreeMap::new();
    for (d, f) in spec.functions() {
        let mut nodes: Vec<NodeId> = Vec::new();
        for s in f.sources() {
            if let Some(tree) = routing.tree(s) {
                if let Some(path) = tree.path_to(d) {
                    nodes.extend(path);
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        sizes.insert(d, nodes.len());
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggregateFunction, RAW_VALUE_BYTES};
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn grid_network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn build_all(
        net: &Network,
        spec: &AggregationSpec,
        mode: RoutingMode,
    ) -> (RoutingTables, GlobalPlan) {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        (routing, plan)
    }

    fn small_spec() -> AggregationSpec {
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 2.0), (NodeId(5), 0.5)]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        spec
    }

    #[test]
    fn parallel_builds_are_bit_identical_across_modes() {
        // The chunked slab solve must reproduce the serial build exactly
        // in every routing mode — Theorem 1 says per-edge solves compose
        // independently, so thread count may never show in the output.
        let net = Network::with_default_energy(Deployment::grid(6, 6, 10.0, 12.0));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(9, 12, 7));
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let serial = GlobalPlan::build_with_threads(&net, &spec, &routing, 1);
            for threads in [2, 8] {
                let plan = GlobalPlan::build_with_threads(&net, &spec, &routing, threads);
                assert_eq!(
                    plan.solutions(),
                    serial.solutions(),
                    "{mode:?} diverged at {threads} threads"
                );
                assert_eq!(plan.problems(), serial.problems());
                assert_eq!(plan.total_payload_bytes(), serial.total_payload_bytes());
            }
        }
    }

    #[test]
    fn plan_validates_in_both_routing_modes() {
        let net = grid_network();
        let spec = small_spec();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
        ] {
            let (routing, plan) = build_all(&net, &spec, mode);
            plan.validate(&spec, &routing).expect("plan must validate");
        }
    }

    #[test]
    fn shared_tree_mode_needs_no_repairs() {
        // Theorem 1 under the sharing restriction.
        let net = grid_network();
        let spec = small_spec();
        let (_, plan) = build_all(&net, &spec, RoutingMode::SharedSpanningTree);
        assert_eq!(plan.repair_count(), 0);
    }

    #[test]
    fn plan_cost_is_positive_and_bounded() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        assert!(plan.total_payload_bytes() > 0);
        // Upper bound: pure multicast payload (every edge carries all its
        // raw values).
        let multicast_bytes: u64 = plan
            .problems()
            .iter()
            .map(|p| p.sources.len() as u64 * u64::from(RAW_VALUE_BYTES))
            .sum();
        assert!(plan.total_payload_bytes() <= multicast_bytes);
        let _ = routing;
    }

    #[test]
    fn validate_detects_corruption() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let mut broken = plan.clone();
        // Drop one edge's units entirely.
        broken.solutions[0].raw.clear();
        broken.solutions[0].agg.clear();
        assert!(broken.validate(&spec, &routing).is_err());
    }

    #[test]
    fn slab_order_matches_sorted_edges() {
        let net = grid_network();
        let spec = small_spec();
        let (_, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        assert!(plan.edges().windows(2).all(|w| w[0] < w[1]));
        for (i, (edge, sol)) in plan.iter_solutions().enumerate() {
            assert_eq!(plan.edges()[i], edge);
            assert_eq!(sol.edge, edge);
            assert_eq!(plan.problems()[i].edge, edge);
            assert_eq!(plan.solution(edge).unwrap(), sol);
        }
        // The boundary view is the slab, re-keyed.
        let view = plan.solution_map();
        assert_eq!(view.len(), plan.solutions().len());
        assert!(view
            .iter()
            .map(|(&e, _)| e)
            .eq(plan.edges().iter().copied()));
    }

    #[test]
    fn larger_random_workload_builds_and_validates() {
        let net = Network::with_default_energy(Deployment::great_duck_island(2));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 10, 3));
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
        ] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let plan = GlobalPlan::build(&net, &spec, &routing);
            plan.validate(&spec, &routing).expect("plan must validate");
            if mode == RoutingMode::SharedSpanningTree {
                assert_eq!(plan.repair_count(), 0, "Theorem 1 violated in shared mode");
            }
        }
    }

    #[test]
    fn count_inconsistencies_detects_forced_violations() {
        // Force an upstream edge to aggregate while downstream still wants
        // the raw value — the exact §2.3 threat case.
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            m2m_netsim::RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let mut solutions = plan.solution_map();
        // Corrupt the first edge: aggregate the lone source there.
        let first = solutions.get_mut(&(NodeId(0), NodeId(1))).unwrap();
        let group = plan.problem((NodeId(0), NodeId(1))).unwrap().groups[0].clone();
        first.raw.clear();
        first.agg = vec![group];
        // Downstream edges still transmit raw → inconsistencies counted.
        let violations = GlobalPlan::count_inconsistencies(&spec, &routing, &solutions);
        assert!(violations > 0);
        // The untouched plan is consistent.
        assert_eq!(
            GlobalPlan::count_inconsistencies(&spec, &routing, &plan.solution_map()),
            0
        );
    }

    #[test]
    fn assemble_without_sweep_skips_repairs() {
        // Same corruption as above: upstream aggregates, downstream wants
        // raw. `from_solutions` (sweep on) must repair; the private
        // constructor with the sweep off must hand the slabs back as-is.
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let mut corrupted = plan.solutions().to_vec();
        let idx = plan
            .topology()
            .edge_idx((NodeId(0), NodeId(1)))
            .unwrap()
            .index();
        let group = plan.problems()[idx].groups[0].clone();
        corrupted[idx].raw.clear();
        corrupted[idx].agg = vec![group];

        let swept = GlobalPlan::from_solutions(
            &spec,
            Arc::clone(plan.topology()),
            plan.problems().to_vec(),
            corrupted.clone(),
        );
        assert!(swept.repair_count() > 0, "sweep must patch the violation");

        let unswept = GlobalPlan::assemble(
            &spec,
            Arc::clone(plan.topology()),
            plan.problems().to_vec(),
            corrupted.clone(),
            false,
        );
        assert_eq!(unswept.repair_count(), 0);
        assert_eq!(unswept.solutions(), &corrupted[..], "slabs pass through");
    }

    #[test]
    fn summary_is_consistent_with_accessors() {
        let net = grid_network();
        let spec = small_spec();
        let (_, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let s = plan.summary();
        assert_eq!(s.edges, plan.solutions().len());
        assert_eq!(s.raw_units + s.record_units, plan.total_units());
        assert_eq!(s.payload_bytes, plan.total_payload_bytes());
        assert_eq!(s.repairs, plan.repair_count());
        assert!(s.coherent_edges <= s.edges);
        let text = s.to_string();
        assert!(text.contains("payload bytes/round"));
    }

    #[test]
    fn aggregation_tree_sizes_cover_paths() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, _) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let sizes = aggregation_tree_sizes(&spec, &routing);
        // d=15 aggregates 0,1,2; its aggregation tree must contain at
        // least the 4 corner-path nodes.
        assert!(sizes[&NodeId(15)] >= 4);
        assert_eq!(sizes.len(), 2);
    }
}
