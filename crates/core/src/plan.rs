//! Global plan assembly (§2.3).
//!
//! Theorem 1: optimal solutions to the individual per-edge vertex-cover
//! problems combine into a consistent, globally optimal plan — provided
//! the multicast trees satisfy the §2.1 path-sharing restriction and every
//! per-edge problem has a unique minimum (arranged by the consistent
//! tiebreak weights in [`crate::edge_opt`]).
//!
//! The only possible inconsistency is *raw-availability*: an upstream edge
//! aggregates a value while a downstream edge wants it raw; once
//! aggregated, the raw value cannot be recovered. [`GlobalPlan::build`]
//! therefore runs a top-down sweep along every multicast tree that tracks
//! raw availability and, if a violation is found, *repairs* the downstream
//! edge by forcing aggregation (a strictly feasibility-preserving patch).
//! Under the [`m2m_netsim::RoutingMode::SharedSpanningTree`] mode the
//! sharing restriction holds by construction and — per Theorem 1 — the
//! sweep never fires; with per-source shortest-path trees (the paper's §4
//! setup) violations are rare and counted in
//! [`GlobalPlan::repair_count`].

use std::collections::BTreeMap;

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{
    build_edge_problems, solve_edge_batch, AggGroup, DirectedEdge, EdgeProblem, EdgeSolution,
};
use crate::memo::SolveCache;
use crate::parallel;
use crate::spec::AggregationSpec;

/// The assembled network-wide many-to-many aggregation plan.
#[derive(Clone, Debug)]
pub struct GlobalPlan {
    problems: BTreeMap<DirectedEdge, EdgeProblem>,
    solutions: BTreeMap<DirectedEdge, EdgeSolution>,
    repairs: usize,
}

impl GlobalPlan {
    /// Builds the optimal plan: solves every single-edge problem
    /// independently — fanned out across worker threads, see
    /// [`crate::parallel`] — then runs the consistency sweep. The result
    /// is bit-identical at every thread count (Theorem 1 plus ordered
    /// collection); `M2M_THREADS=1` reproduces a serial build exactly.
    pub fn build(network: &Network, spec: &AggregationSpec, routing: &RoutingTables) -> Self {
        Self::build_with_threads(network, spec, routing, parallel::max_threads())
    }

    /// [`GlobalPlan::build`] with an explicit worker count.
    pub fn build_with_threads(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        threads: usize,
    ) -> Self {
        debug_assert!(
            routing
                .directed_edges()
                .iter()
                .all(|&(a, b)| network.graph().has_edge(a, b)),
            "every multicast edge must be a radio link"
        );
        Self::build_unchecked_with_threads(spec, routing, threads)
    }

    /// Like [`GlobalPlan::build`] but without checking that the routing
    /// edges are radio links — used for milestone routing, whose virtual
    /// edges span multiple physical hops.
    pub fn build_unchecked(spec: &AggregationSpec, routing: &RoutingTables) -> Self {
        Self::build_unchecked_with_threads(spec, routing, parallel::max_threads())
    }

    /// [`GlobalPlan::build_unchecked`] with an explicit worker count.
    pub fn build_unchecked_with_threads(
        spec: &AggregationSpec,
        routing: &RoutingTables,
        threads: usize,
    ) -> Self {
        let _span = crate::telemetry::span(crate::telemetry::names::PLAN_BUILD_NS);
        let problems = build_edge_problems(spec, routing);
        let entries: Vec<(DirectedEdge, &EdgeProblem)> =
            problems.iter().map(|(&e, p)| (e, p)).collect();
        let solved = solve_edge_batch(&entries, spec, threads);
        let mut solutions: BTreeMap<DirectedEdge, EdgeSolution> = entries
            .iter()
            .map(|&(e, _)| e)
            .zip(solved)
            .collect();
        let repairs = repair_availability(spec, routing, &problems, &mut solutions);
        if crate::telemetry::enabled() {
            crate::telemetry::counter(crate::telemetry::names::PLAN_BUILDS, 1);
            crate::telemetry::counter(crate::telemetry::names::PLAN_REPAIRS, repairs as u64);
        }
        GlobalPlan {
            problems,
            solutions,
            repairs,
        }
    }

    /// [`GlobalPlan::build`] through a [`SolveCache`]: edges whose
    /// single-edge problem was already solved in an earlier build (same
    /// spec record sizes) reuse that solution verbatim — Corollary 1
    /// applied *across* plan builds. Misses are fanned out in parallel.
    /// The resulting plan is bit-identical to [`GlobalPlan::build`].
    pub fn build_cached(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        cache: &mut SolveCache,
    ) -> Self {
        debug_assert!(
            routing
                .directed_edges()
                .iter()
                .all(|&(a, b)| network.graph().has_edge(a, b)),
            "every multicast edge must be a radio link"
        );
        let _span = crate::telemetry::span(crate::telemetry::names::PLAN_BUILD_NS);
        let problems = build_edge_problems(spec, routing);
        let mut solutions =
            cache.solve_all(&problems, spec, parallel::max_threads());
        let repairs = repair_availability(spec, routing, &problems, &mut solutions);
        if crate::telemetry::enabled() {
            crate::telemetry::counter(crate::telemetry::names::PLAN_BUILDS, 1);
            crate::telemetry::counter(crate::telemetry::names::PLAN_REPAIRS, repairs as u64);
        }
        GlobalPlan {
            problems,
            solutions,
            repairs,
        }
    }

    /// Builds a plan from externally supplied edge solutions (used by the
    /// baseline algorithms). The availability sweep still runs so every
    /// plan handed out is executable.
    pub fn from_solutions(
        spec: &AggregationSpec,
        routing: &RoutingTables,
        problems: BTreeMap<DirectedEdge, EdgeProblem>,
        mut solutions: BTreeMap<DirectedEdge, EdgeSolution>,
    ) -> Self {
        let repairs = repair_availability(spec, routing, &problems, &mut solutions);
        GlobalPlan {
            problems,
            solutions,
            repairs,
        }
    }

    /// The per-edge problems, keyed by directed edge.
    #[inline]
    pub fn problems(&self) -> &BTreeMap<DirectedEdge, EdgeProblem> {
        &self.problems
    }

    /// The per-edge solutions, keyed by directed edge.
    #[inline]
    pub fn solutions(&self) -> &BTreeMap<DirectedEdge, EdgeSolution> {
        &self.solutions
    }

    /// The solution for one edge.
    pub fn solution(&self, edge: DirectedEdge) -> Option<&EdgeSolution> {
        self.solutions.get(&edge)
    }

    /// Number of edges patched by the consistency sweep (0 when the
    /// sharing restriction holds — Theorem 1).
    #[inline]
    pub fn repair_count(&self) -> usize {
        self.repairs
    }

    /// Total payload bytes per round across all edges (headers excluded).
    pub fn total_payload_bytes(&self) -> u64 {
        self.solutions.values().map(|s| s.cost_bytes).sum()
    }

    /// One-glance statistics of the plan.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            edges: self.solutions.len(),
            raw_units: self.solutions.values().map(|s| s.raw.len()).sum(),
            record_units: self.solutions.values().map(|s| s.agg.len()).sum(),
            payload_bytes: self.total_payload_bytes(),
            repairs: self.repairs,
            coherent_edges: self
                .problems
                .values()
                .filter(|p| p.is_sharing_coherent())
                .count(),
        }
    }

    /// Total message units per round across all edges.
    pub fn total_units(&self) -> usize {
        self.solutions.values().map(|s| s.unit_count()).sum()
    }

    /// Validates the plan by symbolically routing every `(s, d)` pair:
    /// the value must leave its source raw, may switch to a partial record
    /// exactly once (where its group is chosen), and every edge it crosses
    /// must transmit it in the state the plan claims.
    pub fn validate(&self, spec: &AggregationSpec, routing: &RoutingTables) -> Result<(), String> {
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut raw = true;
                for (idx, hop) in path.windows(2).enumerate() {
                    let edge = (hop[0], hop[1]);
                    let sol = self
                        .solutions
                        .get(&edge)
                        .ok_or_else(|| format!("no solution for edge {edge:?}"))?;
                    let group = AggGroup {
                        destination: d,
                        suffix: path[idx + 1..].into(),
                    };
                    if raw {
                        if sol.transmits_raw(s) {
                            // stays raw
                        } else if sol.transmits_group(&group) {
                            raw = false;
                        } else {
                            return Err(format!(
                                "pair ({s}, {d}) uncovered on edge {edge:?}"
                            ));
                        }
                    } else if !sol.transmits_group(&group) {
                        return Err(format!(
                            "record for ({s}, {d}) dropped on edge {edge:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks raw-availability consistency *without* repairs, i.e. whether
    /// the independently obtained per-edge optima already compose — the
    /// Theorem 1 property. Returns the number of violations.
    pub fn count_inconsistencies(
        spec: &AggregationSpec,
        routing: &RoutingTables,
        solutions: &BTreeMap<DirectedEdge, EdgeSolution>,
    ) -> usize {
        let mut violations = 0;
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut avail = true;
                for hop in path.windows(2) {
                    let edge = (hop[0], hop[1]);
                    let Some(sol) = solutions.get(&edge) else { continue };
                    if sol.transmits_raw(s) {
                        if !avail {
                            violations += 1;
                        }
                    } else {
                        avail = false;
                    }
                }
            }
        }
        violations
    }
}

/// The §2.3 sweep: walks every multicast tree top-down tracking whether
/// the tree's raw value is still available, and patches any edge that
/// wants a raw value an upstream edge already aggregated. Patching an edge
/// for source `s` removes `s` from the raw set and forces every group `s`
/// participates in on that edge into the aggregate set — other sources'
/// entries are untouched, so one pass per tree suffices. Returns the
/// number of patched edges.
fn repair_availability(
    spec: &AggregationSpec,
    routing: &RoutingTables,
    problems: &BTreeMap<DirectedEdge, EdgeProblem>,
    solutions: &mut BTreeMap<DirectedEdge, EdgeSolution>,
) -> usize {
    let mut repairs = 0;
    for (s, tree) in routing.trees() {
        // Availability of raw v_s at each tree node, computed in BFS order
        // (edges() yields parent→child pairs; children appear after their
        // parents in the ascending-id node order only within path walks,
        // so walk per destination path instead — prefixes are shared and
        // revisiting an edge is idempotent).
        for &d in tree.destinations() {
            if !spec.is_source_of(s, d) {
                continue;
            }
            let path = tree.path_to(d).expect("tree spans destination");
            let mut avail = true;
            for hop in path.windows(2) {
                let edge = (hop[0], hop[1]);
                let Some(sol) = solutions.get_mut(&edge) else { continue };
                if sol.transmits_raw(s) && !avail {
                    patch_edge(spec, &problems[&edge], sol, s);
                    repairs += 1;
                }
                avail = avail && sol.transmits_raw(s);
            }
        }
    }
    repairs
}

/// Removes `s` from an edge's raw set and forces every continuation group
/// `s` participates in into the aggregate set, preserving cover validity.
fn patch_edge(spec: &AggregationSpec, problem: &EdgeProblem, sol: &mut EdgeSolution, s: NodeId) {
    if let Ok(pos) = sol.raw.binary_search(&s) {
        sol.raw.remove(pos);
    }
    let si = problem
        .sources
        .binary_search(&s)
        .expect("patched source must be in the edge problem");
    for &(psi, gi) in &problem.pairs {
        if psi != si {
            continue;
        }
        let group = &problem.groups[gi];
        if let Err(pos) = sol.agg.binary_search(group) {
            sol.agg.insert(pos, group.clone());
        }
    }
    sol.cost_bytes = sol.raw.len() as u64 * u64::from(RAW_VALUE_BYTES)
        + sol
            .agg
            .iter()
            .map(|g| {
                u64::from(
                    spec.function(g.destination)
                        .expect("function exists")
                        .partial_record_bytes(),
                )
            })
            .sum::<u64>();
}

/// Aggregate statistics of a [`GlobalPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanSummary {
    /// Directed edges carrying traffic.
    pub edges: usize,
    /// Raw message units per round.
    pub raw_units: usize,
    /// Partial-record message units per round.
    pub record_units: usize,
    /// Payload bytes per round (headers excluded).
    pub payload_bytes: u64,
    /// Edges patched by the consistency sweep.
    pub repairs: usize,
    /// Edges whose problem matches the paper's exact (sharing-coherent)
    /// formulation.
    pub coherent_edges: usize,
}

impl std::fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} edges, {} raw + {} record units, {} payload bytes/round, \
             {} repairs, {}/{} coherent edges",
            self.edges,
            self.raw_units,
            self.record_units,
            self.payload_bytes,
            self.repairs,
            self.coherent_edges,
            self.edges
        )
    }
}

/// Size of each destination's *aggregation tree* `A_d` (Theorem 3): the
/// union of the multicast paths from `d`'s sources to `d`, measured in
/// nodes.
pub fn aggregation_tree_sizes(
    spec: &AggregationSpec,
    routing: &RoutingTables,
) -> BTreeMap<NodeId, usize> {
    let mut sizes = BTreeMap::new();
    for (d, f) in spec.functions() {
        let mut nodes: Vec<NodeId> = Vec::new();
        for s in f.sources() {
            if let Some(tree) = routing.tree(s) {
                if let Some(path) = tree.path_to(d) {
                    nodes.extend(path);
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        sizes.insert(d, nodes.len());
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn grid_network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn build_all(
        net: &Network,
        spec: &AggregationSpec,
        mode: RoutingMode,
    ) -> (RoutingTables, GlobalPlan) {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        (routing, plan)
    }

    fn small_spec() -> AggregationSpec {
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 2.0), (NodeId(5), 0.5)]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        spec
    }

    #[test]
    fn plan_validates_in_both_routing_modes() {
        let net = grid_network();
        let spec = small_spec();
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree] {
            let (routing, plan) = build_all(&net, &spec, mode);
            plan.validate(&spec, &routing).expect("plan must validate");
        }
    }

    #[test]
    fn shared_tree_mode_needs_no_repairs() {
        // Theorem 1 under the sharing restriction.
        let net = grid_network();
        let spec = small_spec();
        let (_, plan) = build_all(&net, &spec, RoutingMode::SharedSpanningTree);
        assert_eq!(plan.repair_count(), 0);
    }

    #[test]
    fn plan_cost_is_positive_and_bounded() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        assert!(plan.total_payload_bytes() > 0);
        // Upper bound: pure multicast payload (every edge carries all its
        // raw values).
        let multicast_bytes: u64 = plan
            .problems()
            .values()
            .map(|p| p.sources.len() as u64 * u64::from(RAW_VALUE_BYTES))
            .sum();
        assert!(plan.total_payload_bytes() <= multicast_bytes);
        let _ = routing;
    }

    #[test]
    fn validate_detects_corruption() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let mut broken = plan.clone();
        // Drop one edge's units entirely.
        let edge = *broken.solutions.keys().next().unwrap();
        let sol = broken.solutions.get_mut(&edge).unwrap();
        sol.raw.clear();
        sol.agg.clear();
        assert!(broken.validate(&spec, &routing).is_err());
    }

    #[test]
    fn larger_random_workload_builds_and_validates() {
        let net = Network::with_default_energy(Deployment::great_duck_island(2));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 10, 3));
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree] {
            let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
            let plan = GlobalPlan::build(&net, &spec, &routing);
            plan.validate(&spec, &routing).expect("plan must validate");
            if mode == RoutingMode::SharedSpanningTree {
                assert_eq!(plan.repair_count(), 0, "Theorem 1 violated in shared mode");
            }
        }
    }

    #[test]
    fn count_inconsistencies_detects_forced_violations() {
        // Force an upstream edge to aggregate while downstream still wants
        // the raw value — the exact §2.3 threat case.
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            m2m_netsim::RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let mut solutions = plan.solutions().clone();
        // Corrupt the first edge: aggregate the lone source there.
        let first = solutions.get_mut(&(NodeId(0), NodeId(1))).unwrap();
        let group = plan.problems()[&(NodeId(0), NodeId(1))].groups[0].clone();
        first.raw.clear();
        first.agg = vec![group];
        // Downstream edges still transmit raw → inconsistencies counted.
        let violations = GlobalPlan::count_inconsistencies(&spec, &routing, &solutions);
        assert!(violations > 0);
        // The untouched plan is consistent.
        assert_eq!(
            GlobalPlan::count_inconsistencies(&spec, &routing, plan.solutions()),
            0
        );
    }

    #[test]
    fn summary_is_consistent_with_accessors() {
        let net = grid_network();
        let spec = small_spec();
        let (_, plan) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let s = plan.summary();
        assert_eq!(s.edges, plan.solutions().len());
        assert_eq!(s.raw_units + s.record_units, plan.total_units());
        assert_eq!(s.payload_bytes, plan.total_payload_bytes());
        assert_eq!(s.repairs, plan.repair_count());
        assert!(s.coherent_edges <= s.edges);
        let text = s.to_string();
        assert!(text.contains("payload bytes/round"));
    }

    #[test]
    fn aggregation_tree_sizes_cover_paths() {
        let net = grid_network();
        let spec = small_spec();
        let (routing, _) = build_all(&net, &spec, RoutingMode::ShortestPathTrees);
        let sizes = aggregation_tree_sizes(&spec, &routing);
        // d=15 aggregates 0,1,2; its aggregation tree must contain at
        // least the 4 corner-path nodes.
        assert!(sizes[&NodeId(15)] >= 4);
        assert_eq!(sizes.len(), 2);
    }
}
