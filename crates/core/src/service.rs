//! The multi-tenant plan service: many concurrent aggregation queries
//! over one shared deployment.
//!
//! Corollary 1 makes per-edge solutions independent, which is exactly
//! what lets many long-lived queries share one sensor field: a raw unit
//! multicast on an edge serves *every* admitted query that covers it,
//! and two queries whose single-edge problems coincide get the same
//! solution bits. A [`PlanService`] turns that into an admission
//! pipeline:
//!
//! * **one deployment** — a single `Arc<Network>` every tenant plans
//!   over, never cloned;
//! * **interned substrates** — one `Arc<RoutingTables>` +
//!   `Arc<Topology>` per distinct `(routing mode, demanded pairs)`
//!   shape, refcounted and dropped on the last evict;
//! * **one shared solve memo** — a [`SharedSolveCache`] keyed by
//!   problem content, so the Nth admission solves only the edges no
//!   earlier tenant solved;
//! * **per-tenant sessions** — each tenant still owns a full
//!   [`Session`] whose plan is **bit-identical** to one built in
//!   isolation (pure solves, unique minima, deterministic assembly), so
//!   sharing the substrate never perturbs a tenant's results.
//!
//! [`PlanService::sharing_report`] prices the cross-tenant multi-query
//! optimization ([`crate::sharing::multi_query_analysis`]): distinct raw
//! `(edge, source)` multicasts and content-signed records across all
//! admitted plans versus the tenants planned in isolation.
//!
//! # Checkpoint / restore
//!
//! [`PlanService::checkpoint`] serializes the admitted specs, their
//! pre-repair plan slabs, and each tenant's salt cursor as a versioned
//! text artifact; [`PlanService::restore`] rebuilds the service from it,
//! seeding the shared cache from the persisted slabs so every restored
//! admission is served without a single fresh solve, and resuming each
//! tenant's replayable failure stream at its persisted round
//! ([`crate::session::SessionBuilder::rounds_cursor`]). Delivery models
//! are runtime configuration, not plan state — re-apply them after
//! restore with [`Session::set_delivery`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use m2m_graph::NodeId;
use m2m_netsim::{DeliveryModel, Network, RoutingMode, RoutingTables};

use crate::agg::{AggregateFunction, AggregateKind};
use crate::config::{Config, Runtime};
use crate::edge_opt::{build_edge_problems, AggGroup, EdgeSolution};
use crate::memo::SharedSolveCache;
use crate::session::{RoundReport, Session, DEFAULT_BASE_SALT};
use crate::sharing::{multi_query_analysis, MultiQueryReport};
use crate::spec::AggregationSpec;
use crate::topo::Topology;

/// The checkpoint header line; the version bumps on any format change.
const CHECKPOINT_HEADER: &str = "m2m-service-checkpoint v1";

/// A stable handle to an admitted tenant. Ids are never reused within a
/// service (they survive evictions), and a restored service resumes its
/// counter past every persisted id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Per-tenant admission options; [`TenantOptions::default`] matches a
/// plain `Session::builder(..).build()`.
#[derive(Clone, Debug)]
pub struct TenantOptions {
    /// Routing-tree construction mode for this tenant's substrate.
    pub mode: RoutingMode,
    /// Runtime override for [`Session::run`]; `None` follows the
    /// service configuration's [`Config::runtime`].
    pub runtime: Option<Runtime>,
    /// The delivery model the tenant's lossy rounds run under.
    pub delivery: DeliveryModel,
    /// Base salt of the tenant's replayable failure stream.
    pub base_salt: u64,
    /// Starting round of the salt stream (non-zero when restoring).
    pub rounds_cursor: u64,
}

impl Default for TenantOptions {
    fn default() -> Self {
        TenantOptions {
            mode: RoutingMode::ShortestPathTrees,
            runtime: None,
            delivery: DeliveryModel::reliable(),
            base_salt: DEFAULT_BASE_SALT,
            rounds_cursor: 0,
        }
    }
}

/// What an admission cost: whether the substrate was reused and how the
/// per-edge solves split between the shared cache and fresh work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// The admitted tenant's handle.
    pub tenant: TenantId,
    /// True when an interned substrate (routing + topology) was reused —
    /// the admission paid no routing or snapshot work.
    pub reused_substrate: bool,
    /// Per-edge solves served from the shared cache.
    pub solves_cached: u64,
    /// Per-edge solves computed fresh (the marginal edges).
    pub solves_fresh: u64,
}

/// Substrates are interned per routing mode and demanded-pair set: two
/// tenants with the same demand shape share routing tables and the
/// topology snapshot outright.
type SubstrateKey = (u8, Vec<(NodeId, NodeId)>);

#[derive(Debug)]
struct SubstrateEntry {
    routing: Arc<RoutingTables>,
    topo: Arc<Topology>,
    refs: usize,
}

#[derive(Debug)]
struct Tenant {
    session: Session,
    key: SubstrateKey,
}

/// The tenant registry: admits/evicts [`AggregationSpec`]s against one
/// shared deployment. See the module docs.
#[derive(Debug)]
pub struct PlanService {
    network: Arc<Network>,
    config: Config,
    cache: Arc<Mutex<SharedSolveCache>>,
    substrates: BTreeMap<SubstrateKey, SubstrateEntry>,
    tenants: BTreeMap<TenantId, Tenant>,
    next_id: u64,
    admitted_total: u64,
}

fn mode_tag(mode: RoutingMode) -> u8 {
    match mode {
        RoutingMode::ShortestPathTrees => 0,
        RoutingMode::SharedSpanningTree => 1,
        RoutingMode::SteinerTrees => 2,
    }
}

fn mode_name(mode: RoutingMode) -> &'static str {
    match mode {
        RoutingMode::ShortestPathTrees => "spt",
        RoutingMode::SharedSpanningTree => "sst",
        RoutingMode::SteinerTrees => "steiner",
    }
}

fn mode_parse(name: &str) -> Option<RoutingMode> {
    match name {
        "spt" => Some(RoutingMode::ShortestPathTrees),
        "sst" => Some(RoutingMode::SharedSpanningTree),
        "steiner" => Some(RoutingMode::SteinerTrees),
        _ => None,
    }
}

fn kind_name(kind: AggregateKind) -> &'static str {
    match kind {
        AggregateKind::WeightedSum => "sum",
        AggregateKind::WeightedAverage => "avg",
        AggregateKind::WeightedVariance => "var",
        AggregateKind::Min => "min",
        AggregateKind::Max => "max",
        AggregateKind::Count => "count",
        AggregateKind::Range => "range",
        AggregateKind::GeometricMean => "geomean",
    }
}

fn kind_parse(name: &str) -> Option<AggregateKind> {
    match name {
        "sum" => Some(AggregateKind::WeightedSum),
        "avg" => Some(AggregateKind::WeightedAverage),
        "var" => Some(AggregateKind::WeightedVariance),
        "min" => Some(AggregateKind::Min),
        "max" => Some(AggregateKind::Max),
        "count" => Some(AggregateKind::Count),
        "range" => Some(AggregateKind::Range),
        "geomean" => Some(AggregateKind::GeometricMean),
        _ => None,
    }
}

fn demand_pairs(spec: &AggregationSpec) -> Vec<(NodeId, NodeId)> {
    let mut pairs: Vec<(NodeId, NodeId)> = spec
        .source_to_destinations()
        .into_iter()
        .flat_map(|(s, ds)| ds.into_iter().map(move |d| (s, d)))
        .collect();
    pairs.sort_unstable();
    pairs
}

impl PlanService {
    /// Opens a service over `network` with [`Config::default`].
    pub fn new(network: impl Into<Arc<Network>>) -> Self {
        Self::with_config(network, Config::default())
    }

    /// Opens a service over `network`; every tenant session is built
    /// with `config`.
    pub fn with_config(network: impl Into<Arc<Network>>, config: Config) -> Self {
        PlanService {
            network: network.into(),
            config,
            cache: Arc::new(Mutex::new(SharedSolveCache::new())),
            substrates: BTreeMap::new(),
            tenants: BTreeMap::new(),
            next_id: 0,
            admitted_total: 0,
        }
    }

    /// The shared deployment.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// A shared handle to the deployment.
    #[inline]
    pub fn network_arc(&self) -> Arc<Network> {
        Arc::clone(&self.network)
    }

    /// The service configuration tenant sessions inherit.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The cross-tenant solve cache (shared with every tenant build).
    #[inline]
    pub fn solve_cache(&self) -> Arc<Mutex<SharedSolveCache>> {
        Arc::clone(&self.cache)
    }

    /// Live tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are admitted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Tenants admitted over the service's lifetime (evictions do not
    /// decrement).
    #[inline]
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Distinct substrates currently interned.
    pub fn substrate_count(&self) -> usize {
        self.substrates.len()
    }

    /// Admits `spec` with [`TenantOptions::default`].
    ///
    /// # Panics
    /// Panics if the spec's plan is unschedulable (Theorem 2 cycle).
    pub fn admit(&mut self, spec: AggregationSpec) -> Admission {
        self.admit_with(spec, TenantOptions::default())
    }

    /// Admits `spec` as a new tenant: interns (or reuses) the substrate
    /// for its demand shape, solves its marginal edges through the
    /// shared cache, and builds a full per-tenant [`Session`] —
    /// bit-identical to one built in isolation over the same network.
    ///
    /// # Panics
    /// Panics if the spec's plan is unschedulable (Theorem 2 cycle).
    pub fn admit_with(&mut self, spec: AggregationSpec, options: TenantOptions) -> Admission {
        let key: SubstrateKey = (mode_tag(options.mode), demand_pairs(&spec));
        let reused_substrate = self.substrates.contains_key(&key);
        let entry = self.substrates.entry(key.clone()).or_insert_with(|| {
            let routing =
                RoutingTables::build(&self.network, &spec.source_to_destinations(), options.mode);
            let topo = Arc::new(Topology::snapshot(&spec, &routing));
            SubstrateEntry {
                routing: Arc::new(routing),
                topo,
                refs: 0,
            }
        });
        let (hits_before, misses_before) = {
            let c = self.cache.lock().expect("solve cache poisoned");
            (c.hits(), c.misses())
        };
        let mut builder = Session::builder(Arc::clone(&self.network), spec)
            .routing_mode(options.mode)
            .config(self.config.clone())
            .delivery(options.delivery)
            .base_salt(options.base_salt)
            .rounds_cursor(options.rounds_cursor)
            .substrate(Arc::clone(&entry.routing), Arc::clone(&entry.topo))
            .solve_cache(Arc::clone(&self.cache));
        if let Some(rt) = options.runtime {
            builder = builder.runtime(rt);
        }
        let session = builder.build();
        entry.refs += 1;
        let (hits_after, misses_after) = {
            let c = self.cache.lock().expect("solve cache poisoned");
            (c.hits(), c.misses())
        };
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.admitted_total += 1;
        self.tenants.insert(id, Tenant { session, key });
        Admission {
            tenant: id,
            reused_substrate,
            solves_cached: hits_after - hits_before,
            solves_fresh: misses_after - misses_before,
        }
    }

    /// Evicts a tenant, dropping its session; the last tenant of a
    /// substrate drops the interned routing tables and topology with it.
    /// Returns false if the id is unknown (or already evicted).
    pub fn evict(&mut self, tenant: TenantId) -> bool {
        let Some(t) = self.tenants.remove(&tenant) else {
            return false;
        };
        if let Some(entry) = self.substrates.get_mut(&t.key) {
            entry.refs -= 1;
            if entry.refs == 0 {
                self.substrates.remove(&t.key);
            }
        }
        true
    }

    /// The tenant's session, if admitted.
    pub fn tenant(&self, tenant: TenantId) -> Option<&Session> {
        self.tenants.get(&tenant).map(|t| &t.session)
    }

    /// The tenant's session, mutably (run rounds, apply updates, swap
    /// delivery models).
    pub fn tenant_mut(&mut self, tenant: TenantId) -> Option<&mut Session> {
        self.tenants.get_mut(&tenant).map(|t| &mut t.session)
    }

    /// Live tenants, ascending by id.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &Session)> {
        self.tenants.iter().map(|(&id, t)| (id, &t.session))
    }

    /// Runs one round for `tenant` under its session's runtime.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run(
        &mut self,
        tenant: TenantId,
        readings: &BTreeMap<NodeId, f64>,
    ) -> Option<RoundReport> {
        self.tenant_mut(tenant).map(|s| s.run(readings))
    }

    /// The cross-tenant shared-unit index over every admitted plan: raw
    /// multicasts planned once for all covering tenants, records merged
    /// where content signatures coincide — priced against the tenants in
    /// isolation. See [`crate::sharing::multi_query_analysis`].
    pub fn sharing_report(&self) -> MultiQueryReport {
        multi_query_analysis(
            self.tenants
                .values()
                .map(|t| (t.session.spec(), t.session.driver().maintainer().plan())),
        )
    }

    /// Serializes the service — admitted specs, pre-repair plan slabs,
    /// and salt cursors — as the versioned checkpoint text
    /// [`PlanService::restore`] accepts.
    pub fn checkpoint(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_HEADER);
        out.push('\n');
        out.push_str(&format!("network_nodes {}\n", self.network.node_count()));
        out.push_str(&format!("next_id {}\n", self.next_id));
        out.push_str(&format!("tenants {}\n", self.tenants.len()));
        for (id, t) in &self.tenants {
            let s = &t.session;
            let m = s.driver().maintainer();
            out.push_str(&format!("tenant {}\n", id.0));
            out.push_str(&format!("mode {}\n", mode_name(m.mode())));
            out.push_str(&format!("runtime {}\n", s.runtime().name()));
            out.push_str(&format!("base_salt {}\n", s.base_salt()));
            out.push_str(&format!("rounds_run {}\n", s.rounds_run()));
            out.push_str(&format!("functions {}\n", s.spec().destination_count()));
            for (d, f) in s.spec().functions() {
                out.push_str(&format!(
                    "function {} {} {}",
                    d.0,
                    kind_name(f.kind()),
                    f.source_count()
                ));
                for src in f.sources() {
                    let w = f.weight(src).expect("source has a weight");
                    out.push_str(&format!(" {} {}", src.0, w.to_bits()));
                }
                out.push('\n');
            }
            out.push_str(&format!("solutions {}\n", m.base_solutions().len()));
            for sol in m.base_solutions() {
                out.push_str(&format!(
                    "solution {} {} {}",
                    sol.edge.0 .0,
                    sol.edge.1 .0,
                    sol.raw.len()
                ));
                for r in &sol.raw {
                    out.push_str(&format!(" {}", r.0));
                }
                out.push_str(&format!(" {}", sol.agg.len()));
                for g in &sol.agg {
                    out.push_str(&format!(" {} {}", g.destination.0, g.suffix.len()));
                    for n in g.suffix.iter() {
                        out.push_str(&format!(" {}", n.0));
                    }
                }
                out.push_str(&format!(" {}\n", sol.cost_bytes));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Writes [`PlanService::checkpoint`] to `path`.
    ///
    /// # Errors
    /// Returns the I/O error message on failure.
    pub fn checkpoint_to(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.checkpoint()).map_err(|e| format!("write {path}: {e}"))
    }

    /// Rebuilds a service over `network` from checkpoint text: every
    /// persisted tenant is re-admitted (same id order, same base salt,
    /// salt cursor resumed at its persisted round), and the shared cache
    /// is seeded from the persisted plan slabs first, so restoration
    /// performs **zero** fresh solves and every restored plan is
    /// bit-identical to the one checkpointed. Each restored plan is
    /// re-validated against its spec and routing before the tenant
    /// session is built.
    ///
    /// # Errors
    /// Returns a message naming the first malformed line, a network
    /// mismatch, or a plan slab that fails validation.
    pub fn restore(
        network: impl Into<Arc<Network>>,
        config: Config,
        text: &str,
    ) -> Result<PlanService, String> {
        let mut service = PlanService::with_config(network, config);
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_HEADER) {
            return Err(format!("checkpoint must start with '{CHECKPOINT_HEADER}'"));
        }
        let nodes: usize = parse_kv(lines.next(), "network_nodes")?;
        if nodes != service.network.node_count() {
            return Err(format!(
                "checkpoint is for a {nodes}-node network, got {}",
                service.network.node_count()
            ));
        }
        let next_id: u64 = parse_kv(lines.next(), "next_id")?;
        let tenant_count: usize = parse_kv(lines.next(), "tenants")?;
        for _ in 0..tenant_count {
            let id: u64 = parse_kv(lines.next(), "tenant")?;
            let mode_str: String = parse_kv(lines.next(), "mode")?;
            let mode = mode_parse(&mode_str).ok_or(format!("unknown mode '{mode_str}'"))?;
            let rt_str: String = parse_kv(lines.next(), "runtime")?;
            let runtime = Runtime::parse(&rt_str).ok_or(format!("unknown runtime '{rt_str}'"))?;
            let base_salt: u64 = parse_kv(lines.next(), "base_salt")?;
            let rounds_run: u64 = parse_kv(lines.next(), "rounds_run")?;
            let function_count: usize = parse_kv(lines.next(), "functions")?;
            let mut spec = AggregationSpec::new();
            for _ in 0..function_count {
                let line = lines.next().ok_or("truncated checkpoint: function")?;
                let mut tok = line.split_whitespace();
                expect_tok(&mut tok, "function")?;
                let dest = NodeId(next_num(&mut tok, "function destination")? as u32);
                let kind_str = tok.next().ok_or("function missing kind")?;
                let kind = kind_parse(kind_str).ok_or(format!("unknown kind '{kind_str}'"))?;
                let n = next_num(&mut tok, "function source count")? as usize;
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    let s = NodeId(next_num(&mut tok, "function source")? as u32);
                    let bits = next_num(&mut tok, "function weight bits")?;
                    weights.push((s, f64::from_bits(bits)));
                }
                spec.add_function(dest, AggregateFunction::new(kind, weights));
            }
            let solution_count: usize = parse_kv(lines.next(), "solutions")?;
            let mut solutions = Vec::with_capacity(solution_count);
            for _ in 0..solution_count {
                let line = lines.next().ok_or("truncated checkpoint: solution")?;
                solutions.push(parse_solution(line)?);
            }
            let end = lines.next();
            if end != Some("end") {
                return Err(format!("expected 'end' after tenant {id}, got {end:?}"));
            }
            service.restore_tenant(
                TenantId(id),
                mode,
                runtime,
                base_salt,
                rounds_run,
                spec,
                solutions,
            )?;
        }
        service.next_id = service.next_id.max(next_id);
        Ok(service)
    }

    /// Reads `path` and [`PlanService::restore`]s from it.
    ///
    /// # Errors
    /// Returns the I/O or parse error message on failure.
    pub fn restore_from(
        network: impl Into<Arc<Network>>,
        config: Config,
        path: &str,
    ) -> Result<PlanService, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Self::restore(network, config, &text)
    }

    /// One persisted tenant: seed the cache from its slab, re-admit
    /// through the normal (now all-hit) path, and pin its persisted id.
    #[allow(clippy::too_many_arguments)]
    fn restore_tenant(
        &mut self,
        id: TenantId,
        mode: RoutingMode,
        runtime: Runtime,
        base_salt: u64,
        rounds_run: u64,
        spec: AggregationSpec,
        solutions: Vec<EdgeSolution>,
    ) -> Result<(), String> {
        if self.tenants.contains_key(&id) {
            return Err(format!("duplicate tenant id {id} in checkpoint"));
        }
        // Build (or fetch) the substrate now so the persisted slab can be
        // checked against it and seeded into the cache before admission.
        let key: SubstrateKey = (mode_tag(mode), demand_pairs(&spec));
        let (routing, topo) = {
            let entry = self.substrates.entry(key).or_insert_with(|| {
                let routing =
                    RoutingTables::build(&self.network, &spec.source_to_destinations(), mode);
                let topo = Arc::new(Topology::snapshot(&spec, &routing));
                SubstrateEntry {
                    routing: Arc::new(routing),
                    topo,
                    refs: 0,
                }
            });
            (Arc::clone(&entry.routing), Arc::clone(&entry.topo))
        };
        let problems = build_edge_problems(&topo);
        if problems.len() != solutions.len() {
            return Err(format!(
                "tenant {id}: checkpoint has {} solutions, substrate demands {} edges",
                solutions.len(),
                problems.len()
            ));
        }
        let plan = crate::plan::GlobalPlan::from_solutions(
            &spec,
            Arc::clone(&topo),
            problems.clone(),
            solutions.clone(),
        );
        plan.validate(&spec, &routing)
            .map_err(|e| format!("tenant {id}: persisted plan failed validation: {e}"))?;
        {
            let mut cache = self.cache.lock().expect("solve cache poisoned");
            for (problem, solution) in problems.iter().zip(solutions) {
                cache.seed(problem, &spec, solution);
            }
        }
        let admission = self.admit_with(
            spec,
            TenantOptions {
                mode,
                runtime: Some(runtime),
                delivery: DeliveryModel::reliable(),
                base_salt,
                rounds_cursor: rounds_run,
            },
        );
        if admission.solves_fresh != 0 {
            return Err(format!(
                "tenant {id}: restore performed {} fresh solves (seed mismatch)",
                admission.solves_fresh
            ));
        }
        // admit_with assigned the next sequential id; re-key to the
        // persisted one (ids must survive a restart).
        let t = self
            .tenants
            .remove(&admission.tenant)
            .expect("just admitted");
        self.next_id = self.next_id.max(id.0 + 1);
        self.tenants.insert(id, t);
        Ok(())
    }
}

fn parse_kv<T: std::str::FromStr>(line: Option<&str>, keyword: &str) -> Result<T, String> {
    let line = line.ok_or(format!("truncated checkpoint: expected '{keyword}'"))?;
    let rest = line
        .strip_prefix(keyword)
        .ok_or(format!("expected '{keyword} ...', got '{line}'"))?;
    rest.trim()
        .parse()
        .map_err(|_| format!("malformed value in '{line}'"))
}

fn expect_tok(tok: &mut std::str::SplitWhitespace<'_>, want: &str) -> Result<(), String> {
    match tok.next() {
        Some(t) if t == want => Ok(()),
        other => Err(format!("expected '{want}', got {other:?}")),
    }
}

fn next_num(tok: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<u64, String> {
    tok.next()
        .ok_or(format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

fn parse_solution(line: &str) -> Result<EdgeSolution, String> {
    let mut tok = line.split_whitespace();
    expect_tok(&mut tok, "solution")?;
    let from = NodeId(next_num(&mut tok, "solution edge tail")? as u32);
    let to = NodeId(next_num(&mut tok, "solution edge head")? as u32);
    let nraw = next_num(&mut tok, "raw count")? as usize;
    let mut raw = Vec::with_capacity(nraw);
    for _ in 0..nraw {
        raw.push(NodeId(next_num(&mut tok, "raw source")? as u32));
    }
    let nagg = next_num(&mut tok, "agg count")? as usize;
    let mut agg = Vec::with_capacity(nagg);
    for _ in 0..nagg {
        let destination = NodeId(next_num(&mut tok, "agg destination")? as u32);
        let suffix_len = next_num(&mut tok, "suffix length")? as usize;
        let mut suffix = Vec::with_capacity(suffix_len);
        for _ in 0..suffix_len {
            suffix.push(NodeId(next_num(&mut tok, "suffix node")? as u32));
        }
        agg.push(AggGroup {
            destination,
            suffix: suffix.into(),
        });
    }
    let cost_bytes = next_num(&mut tok, "cost bytes")?;
    Ok(EdgeSolution {
        edge: (from, to),
        raw,
        agg,
        cost_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(5, 5, 10.0, 12.0))
    }

    fn spec_seeded(net: &Network, seed: u64) -> AggregationSpec {
        generate_workload(net, &WorkloadConfig::paper_default(4, 3, seed))
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 0.25 - 1.5))
            .collect()
    }

    #[test]
    fn twin_admissions_reuse_substrate_and_cache() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        let spec = spec_seeded(&net, 7);
        let first = svc.admit(spec.clone());
        assert!(!first.reused_substrate, "first admission routes fresh");
        assert_eq!(first.solves_cached, 0);
        assert!(first.solves_fresh > 0);
        let second = svc.admit(spec);
        assert!(second.reused_substrate, "same shape reuses the substrate");
        assert_eq!(second.solves_fresh, 0, "every edge is served cached");
        assert_eq!(second.solves_cached, first.solves_fresh);
        assert_eq!(svc.len(), 2);
        assert_eq!(svc.substrate_count(), 1);
        assert_eq!(svc.admitted_total(), 2);
    }

    #[test]
    fn tenants_are_bit_identical_to_isolated_sessions() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        let vals = readings(&net);
        for seed in [3u64, 4, 5] {
            let spec = spec_seeded(&net, seed);
            let admission = svc.admit(spec.clone());
            let mut isolated = Session::builder(Arc::clone(&net), spec).build();
            let expect = isolated.run(&vals);
            let got = svc.run(admission.tenant, &vals).expect("admitted");
            assert_eq!(got, expect, "seed {seed}");
            assert_eq!(
                svc.tenant(admission.tenant)
                    .unwrap()
                    .driver()
                    .maintainer()
                    .plan()
                    .solutions(),
                isolated.driver().maintainer().plan().solutions(),
                "seed {seed}: plans must match bit-for-bit"
            );
        }
    }

    #[test]
    fn evicting_the_last_tenant_drops_the_substrate() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        let spec = spec_seeded(&net, 9);
        let a = svc.admit(spec.clone());
        let b = svc.admit(spec);
        assert_eq!(svc.substrate_count(), 1);
        assert!(svc.evict(a.tenant));
        assert_eq!(svc.substrate_count(), 1, "tenant b still holds it");
        assert!(svc.evict(b.tenant));
        assert_eq!(svc.substrate_count(), 0, "last evict drops the intern");
        assert!(!svc.evict(b.tenant), "double evict is a no-op");
        assert_eq!(svc.admitted_total(), 2, "lifetime counter survives");
    }

    #[test]
    fn sharing_report_prices_duplicate_tenants() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        let spec = spec_seeded(&net, 11);
        svc.admit(spec.clone());
        let solo = svc.sharing_report();
        svc.admit(spec);
        let duo = svc.sharing_report();
        assert_eq!(duo.tenants, 2);
        assert_eq!(
            duo.payload_bytes_shared, solo.payload_bytes_shared,
            "a clone tenant adds zero marginal payload"
        );
        assert!(duo.savings_fraction() > solo.savings_fraction());
    }

    #[test]
    fn checkpoint_restores_bit_identical_tenants_with_zero_solves() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        let ids: Vec<TenantId> = [21u64, 22, 23]
            .iter()
            .map(|&seed| {
                svc.admit_with(
                    spec_seeded(&net, seed),
                    TenantOptions {
                        runtime: Some(Runtime::Lossy),
                        ..TenantOptions::default()
                    },
                )
                .tenant
            })
            .collect();
        // Advance one tenant's salt cursor so restore must resume it.
        let vals = readings(&net);
        svc.run(ids[1], &vals);
        svc.run(ids[1], &vals);
        let text = svc.checkpoint();
        let mut restored =
            PlanService::restore(Arc::clone(&net), Config::default(), &text).expect("restores");
        assert_eq!(restored.len(), 3);
        assert_eq!(
            restored.solve_cache().lock().unwrap().misses(),
            0,
            "restore must not solve anything fresh"
        );
        for &id in &ids {
            let orig = svc.tenant(id).unwrap();
            let back = restored.tenant(id).unwrap();
            assert_eq!(back.rounds_run(), orig.rounds_run(), "{id} cursor resumes");
            assert_eq!(back.base_salt(), orig.base_salt());
            assert_eq!(back.runtime(), orig.runtime());
            assert_eq!(
                back.driver().maintainer().plan().solutions(),
                orig.driver().maintainer().plan().solutions(),
                "{id}: restored plan is bit-identical"
            );
        }
        // Replay digests agree from the resumed cursor.
        let a = svc.run(ids[1], &vals).unwrap();
        let b = restored.run(ids[1], &vals).unwrap();
        assert_eq!(a, b, "the resumed salt stream replays the original");
        // New admissions continue past persisted ids.
        let next = restored.admit(spec_seeded(&net, 29));
        assert!(next.tenant.0 > ids[2].0);
    }

    #[test]
    fn restore_rejects_a_mismatched_network() {
        let net = Arc::new(network());
        let mut svc = PlanService::new(Arc::clone(&net));
        svc.admit(spec_seeded(&net, 5));
        let text = svc.checkpoint();
        let other = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let err = PlanService::restore(other, Config::default(), &text).unwrap_err();
        assert!(err.contains("network"), "{err}");
    }
}
