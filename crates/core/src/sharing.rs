//! Shared partial aggregates across destinations — the §5 future-work
//! direction, implemented as a measurable analysis.
//!
//! "The bipartite vertex cover reduction, as depicted in Figure 2, does
//! not capture the possibility of using the same partial aggregate for
//! different destinations. An interesting direction for future work would
//! be to reconsider the optimization problem to accommodate this
//! possibility."
//!
//! Two records on the same edge are *shareable* when they would carry
//! identical contents: the same aggregate kind, the same set of already-
//! aggregated sources, and the same per-source weights. A shared record
//! travels once and is **copied** where the destinations' routes diverge
//! (copying a record is always safe — it is un-merging that is
//! impossible), so per-edge counting of duplicates gives an achievable
//! saving. [`shared_record_analysis`] reports how many bytes the §5
//! extension would save on a given plan — substantial when destinations
//! run similar functions, zero when weights differ per destination.

use std::collections::{BTreeMap, BTreeSet};

use m2m_graph::NodeId;

use crate::agg::{AggregateKind, RAW_VALUE_BYTES};
use crate::edge_opt::DirectedEdge;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// Outcome of the sharing analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharingReport {
    /// Records transmitted by the plan as-is.
    pub records: usize,
    /// Records that duplicate another record on their edge.
    pub redundant_records: usize,
    /// Plan payload as-is (bytes/round).
    pub payload_bytes: u64,
    /// Plan payload if identical records were shared (bytes/round).
    pub payload_bytes_with_sharing: u64,
}

impl SharingReport {
    /// Fraction of payload the §5 extension would save.
    pub fn savings_fraction(&self) -> f64 {
        if self.payload_bytes == 0 {
            return 0.0;
        }
        (self.payload_bytes - self.payload_bytes_with_sharing) as f64 / self.payload_bytes as f64
    }
}

/// A record's content signature: kind plus the exact (source, weight)
/// contributions accumulated so far. Weights are compared bit-exactly
/// (they come from the same spec, so equal functions give equal bits).
type Signature = (AggregateKind, Vec<(NodeId, u64)>);

/// Measures how much payload the plan would save if identical partial
/// records were transmitted once per edge and copied at route
/// divergences.
pub fn shared_record_analysis(spec: &AggregationSpec, plan: &GlobalPlan) -> SharingReport {
    let mut records = 0usize;
    let mut redundant = 0usize;
    let mut saved_bytes = 0u64;

    for (problem, sol) in plan.problems().iter().zip(plan.solutions()) {
        let mut classes: BTreeMap<Signature, usize> = BTreeMap::new();
        for group in &sol.agg {
            records += 1;
            let f = spec
                .function(group.destination)
                .expect("destination has a function");
            // Content = the group's sources minus those still raw on this
            // edge (the walk prefers raw when both are available).
            let gi = problem
                .groups
                .binary_search(group)
                .expect("solution group comes from the problem");
            let mut content: Vec<(NodeId, u64)> = problem
                .group_sources(gi)
                .filter(|&s| !sol.transmits_raw(s))
                .map(|s| (s, f.weight(s).expect("pair in spec").to_bits()))
                .collect();
            content.sort_unstable();
            let count = classes.entry((f.kind(), content)).or_insert(0);
            *count += 1;
            if *count > 1 {
                redundant += 1;
                saved_bytes += u64::from(f.partial_record_bytes());
            }
        }
    }

    let payload = plan.total_payload_bytes();
    SharingReport {
        records,
        redundant_records: redundant,
        payload_bytes: payload,
        payload_bytes_with_sharing: payload - saved_bytes,
    }
}

/// Outcome of the cross-tenant multi-query analysis
/// ([`multi_query_analysis`]): how much traffic N admitted queries save
/// by sharing one substrate, against N isolated deployments as the
/// baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultiQueryReport {
    /// Tenant plans analyzed.
    pub tenants: usize,
    /// Raw `(edge, source)` units summed over isolated tenants.
    pub raw_units_isolated: usize,
    /// Distinct raw `(edge, source)` units across all tenants — a raw
    /// value multicast on an edge serves every tenant that covers it.
    pub raw_units_shared: usize,
    /// Partial records summed over isolated tenants.
    pub record_units_isolated: usize,
    /// Distinct `(edge, signature)` record classes across all tenants —
    /// content-equal records travel once and are copied at divergences.
    pub record_units_shared: usize,
    /// Total payload of the isolated tenants (bytes/round).
    pub payload_bytes_isolated: u64,
    /// Payload with cross-tenant unit sharing applied (bytes/round).
    pub payload_bytes_shared: u64,
}

impl MultiQueryReport {
    /// Fraction of the isolated payload that sharing saves (0.0 when the
    /// baseline is zero units — an empty service saves nothing).
    pub fn savings_fraction(&self) -> f64 {
        if self.payload_bytes_isolated == 0 {
            return 0.0;
        }
        (self.payload_bytes_isolated - self.payload_bytes_shared) as f64
            / self.payload_bytes_isolated as f64
    }

    /// Raw units the shared substrate multicasts once instead of
    /// per-tenant.
    pub fn raw_units_saved(&self) -> usize {
        self.raw_units_isolated - self.raw_units_shared
    }

    /// Record units merged across (or within) tenants.
    pub fn record_units_saved(&self) -> usize {
        self.record_units_isolated - self.record_units_shared
    }
}

/// The cross-tenant extension of [`shared_record_analysis`]: given every
/// admitted tenant's `(spec, plan)`, counts the distinct transmission
/// units — raw `(edge, source)` multicasts and content-signed partial
/// records — against the sum of the tenants planned in isolation.
///
/// Per Corollary 1 each tenant's per-edge solutions are independent, so
/// a raw unit two tenants both transmit on an edge is the *same bytes on
/// the same link* and needs to travel once; records merge exactly when
/// their [`Signature`]s match (same kind, same accumulated sources, same
/// bit-exact weights). The tenants' own plans — and hence their results —
/// are untouched: this prices the substrate-level dedup the service's
/// shared-unit index exposes, which is why
/// [`crate::service::PlanService::sharing_report`] can report it while
/// every tenant stays bit-identical to an isolated session.
pub fn multi_query_analysis<'a>(
    tenants: impl IntoIterator<Item = (&'a AggregationSpec, &'a GlobalPlan)>,
) -> MultiQueryReport {
    let mut report = MultiQueryReport::default();
    let mut raw_seen: BTreeSet<(DirectedEdge, NodeId)> = BTreeSet::new();
    let mut record_seen: BTreeSet<(DirectedEdge, Signature)> = BTreeSet::new();
    let mut saved_bytes = 0u64;

    for (spec, plan) in tenants {
        report.tenants += 1;
        report.payload_bytes_isolated += plan.total_payload_bytes();
        for (problem, sol) in plan.problems().iter().zip(plan.solutions()) {
            for &s in &sol.raw {
                report.raw_units_isolated += 1;
                if raw_seen.insert((sol.edge, s)) {
                    report.raw_units_shared += 1;
                } else {
                    saved_bytes += u64::from(RAW_VALUE_BYTES);
                }
            }
            for group in &sol.agg {
                report.record_units_isolated += 1;
                let f = spec
                    .function(group.destination)
                    .expect("destination has a function");
                let gi = problem
                    .groups
                    .binary_search(group)
                    .expect("solution group comes from the problem");
                let mut content: Vec<(NodeId, u64)> = problem
                    .group_sources(gi)
                    .filter(|&s| !sol.transmits_raw(s))
                    .map(|s| (s, f.weight(s).expect("pair in spec").to_bits()))
                    .collect();
                content.sort_unstable();
                if record_seen.insert((sol.edge, (f.kind(), content))) {
                    report.record_units_shared += 1;
                } else {
                    saved_bytes += u64::from(f.partial_record_bytes());
                }
            }
        }
    }
    report.payload_bytes_shared = report.payload_bytes_isolated - saved_bytes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use m2m_graph::Graph;
    use m2m_netsim::{EnergyModel, Network, RoutingMode, RoutingTables};

    /// Four sources funnel through a relay chain to two destinations that
    /// aggregate them — with enough sources that the cover aggregates on
    /// the shared edge, producing one record per destination side by side.
    fn twin_destination_setup(
        w1: [(u32, f64); 4],
        w2: [(u32, f64); 4],
    ) -> (AggregationSpec, GlobalPlan) {
        // a=0..d=3 -> i=4 -> j=5 -> {k=6, l=7}
        let mut g = Graph::new(8);
        for s in 0..4 {
            g.add_edge(m2m_graph::NodeId(s), m2m_graph::NodeId(4));
        }
        g.add_edge(m2m_graph::NodeId(4), m2m_graph::NodeId(5));
        g.add_edge(m2m_graph::NodeId(5), m2m_graph::NodeId(6));
        g.add_edge(m2m_graph::NodeId(5), m2m_graph::NodeId(7));
        let net = Network::from_graph(g, EnergyModel::mica2());
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(6),
            AggregateFunction::weighted_average(w1.map(|(s, w)| (NodeId(s), w))),
        );
        spec.add_function(
            NodeId(7),
            AggregateFunction::weighted_average(w2.map(|(s, w)| (NodeId(s), w))),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        plan.validate(&spec, &routing).unwrap();
        (spec, plan)
    }

    #[test]
    fn identical_functions_share_records() {
        let (spec, plan) = twin_destination_setup(
            [(0, 2.0), (1, 3.0), (2, 1.0), (3, 0.5)],
            [(0, 2.0), (1, 3.0), (2, 1.0), (3, 0.5)],
        );
        let report = shared_record_analysis(&spec, &plan);
        assert!(
            report.redundant_records > 0,
            "twin destinations with equal weights must expose sharing: {report:?}"
        );
        assert!(report.payload_bytes_with_sharing < report.payload_bytes);
        assert!(report.savings_fraction() > 0.0);
    }

    #[test]
    fn different_weights_share_nothing() {
        let (spec, plan) = twin_destination_setup(
            [(0, 2.0), (1, 3.0), (2, 1.0), (3, 0.5)],
            [(0, 2.0), (1, 4.0), (2, 1.0), (3, 0.5)],
        );
        let report = shared_record_analysis(&spec, &plan);
        assert_eq!(report.redundant_records, 0, "{report:?}");
        assert_eq!(report.payload_bytes, report.payload_bytes_with_sharing);
        assert_eq!(report.savings_fraction(), 0.0);
    }

    #[test]
    fn zero_baseline_savings_fraction_is_zero_not_nan() {
        let empty = SharingReport {
            records: 0,
            redundant_records: 0,
            payload_bytes: 0,
            payload_bytes_with_sharing: 0,
        };
        assert_eq!(empty.savings_fraction(), 0.0, "0/0 must not be NaN");
        assert!(empty.savings_fraction().is_finite());
        let empty_mq = MultiQueryReport::default();
        assert_eq!(empty_mq.savings_fraction(), 0.0);
        assert!(empty_mq.savings_fraction().is_finite());
        // And the degenerate live case: an empty spec's plan has no units.
        let spec = AggregationSpec::new();
        let g = Graph::new(2);
        let net = Network::from_graph(g, EnergyModel::mica2());
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let report = shared_record_analysis(&spec, &plan);
        assert_eq!(report.payload_bytes, 0);
        assert_eq!(report.savings_fraction(), 0.0);
        let mq = multi_query_analysis([(&spec, &plan)]);
        assert_eq!(mq.savings_fraction(), 0.0);
    }

    #[test]
    fn duplicate_tenants_share_every_unit() {
        let (spec, plan) = twin_destination_setup(
            [(0, 2.0), (1, 3.0), (2, 1.0), (3, 0.5)],
            [(0, 2.0), (1, 4.0), (2, 1.0), (3, 0.5)],
        );
        let solo = multi_query_analysis([(&spec, &plan)]);
        let duo = multi_query_analysis([(&spec, &plan), (&spec, &plan)]);
        assert_eq!(duo.tenants, 2);
        assert_eq!(
            duo.raw_units_shared, solo.raw_units_shared,
            "a clone tenant adds no new raw units"
        );
        assert_eq!(duo.record_units_shared, solo.record_units_shared);
        assert_eq!(duo.raw_units_isolated, 2 * solo.raw_units_isolated);
        assert_eq!(duo.payload_bytes_isolated, 2 * solo.payload_bytes_isolated);
        assert_eq!(
            duo.payload_bytes_shared, solo.payload_bytes_shared,
            "the second tenant's whole payload rides the first's units"
        );
        assert!(duo.savings_fraction() >= 0.5 - 1e-12);
    }

    #[test]
    fn disjoint_tenants_share_nothing() {
        // Same chain, but tenant B aggregates to a different destination
        // with different weights: signatures and raw duplication both
        // differ edge-by-edge only where routes overlap with equal
        // content.
        let (spec_a, plan_a) = twin_destination_setup(
            [(0, 2.0), (1, 3.0), (2, 1.0), (3, 0.5)],
            [(0, 2.0), (1, 4.0), (2, 1.0), (3, 0.5)],
        );
        let (spec_b, plan_b) = twin_destination_setup(
            [(0, 9.0), (1, 8.0), (2, 7.0), (3, 6.0)],
            [(0, 5.0), (1, 4.5), (2, 3.5), (3, 2.5)],
        );
        let mq = multi_query_analysis([(&spec_a, &plan_a), (&spec_b, &plan_b)]);
        // Raw units can still coincide (same edges, same sources); records
        // with different weights never merge.
        assert_eq!(
            mq.record_units_shared,
            multi_query_analysis([(&spec_a, &plan_a)]).record_units_shared
                + multi_query_analysis([(&spec_b, &plan_b)]).record_units_shared,
            "distinct weights must not merge records"
        );
        assert!(mq.payload_bytes_shared <= mq.payload_bytes_isolated);
    }

    #[test]
    fn multicast_only_plans_have_no_records_to_share() {
        let (spec, plan) = twin_destination_setup(
            [(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            [(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
        );
        // Strip to a multicast-style view by checking the raw-only edges:
        // the report never counts raw units.
        let report = shared_record_analysis(&spec, &plan);
        assert!(report.records >= report.redundant_records);
    }
}
