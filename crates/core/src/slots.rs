//! Collision-free transmission slots (§3: "construct a detailed
//! transmission schedule from the global plan, aimed at avoiding
//! collisions and reducing node listening time").
//!
//! Messages are assigned TDMA slots subject to:
//!
//! * **precedence** — a message is sent strictly after every message
//!   carrying units it waits for (data must arrive before it can be
//!   merged or forwarded);
//! * **half-duplex** — a node cannot transmit two messages, nor transmit
//!   and receive, in the same slot;
//! * **interference** — a receiver hears every in-range transmitter, so
//!   no other node within radio range of a receiver (and no second
//!   message to the same receiver) may transmit in its slot.
//!
//! Assignment is greedy in wait-for topological order, taking the
//! smallest feasible slot — the classic list-scheduling heuristic. The
//! resulting `slot_count` is the round's makespan; a node only needs its
//! radio on in the slots where it sends or receives, which is the
//! "reducing node listening time" payoff (quantified by
//! [`SlotSchedule::listen_fraction`]).

use std::collections::BTreeMap;

use m2m_graph::cycle::topological_order;
use m2m_graph::NodeId;
use m2m_netsim::Network;

use crate::schedule::Schedule;

/// A TDMA slot assignment for one round of a schedule's messages.
#[derive(Clone, Debug)]
pub struct SlotSchedule {
    /// Slot of each message (indexed like `Schedule::messages`).
    pub slots: Vec<u32>,
    /// Total number of slots (the makespan).
    pub slot_count: u32,
}

impl SlotSchedule {
    /// The slot after which destination `d` has received every input to
    /// its final evaluation — the *control latency* of `d` in slots.
    /// Returns 0 for a destination whose inputs are all local.
    pub fn destination_latency(&self, schedule: &Schedule, d: NodeId) -> u32 {
        use crate::schedule::Contribution;
        let Some(inputs) = schedule.destination_inputs.get(&d) else {
            return 0;
        };
        let mut message_of = vec![usize::MAX; schedule.units.len()];
        for (m, msg) in schedule.messages.iter().enumerate() {
            for &u in &msg.units {
                message_of[u] = m;
            }
        }
        inputs
            .iter()
            .filter_map(|c| match c {
                // A locally pre-aggregated value: free if it is the
                // destination's own reading, otherwise it arrived as the
                // raw unit on the final edge into `d`.
                Contribution::Pre(s) if *s == d => None,
                Contribution::Pre(s) => schedule
                    .units
                    .iter()
                    .position(|u| {
                        u.edge.1 == d
                            && matches!(u.content,
                                crate::schedule::UnitContent::Raw(src) if src == *s)
                    })
                    .map(|u| self.slots[message_of[u]] + 1),
                Contribution::FromUnit(u) => Some(self.slots[message_of[*u]] + 1),
            })
            .max()
            .unwrap_or(0)
    }

    /// The worst control latency over all destinations — how stale the
    /// slowest control signal is when the round completes.
    pub fn worst_destination_latency(&self, schedule: &Schedule) -> u32 {
        schedule
            .destination_inputs
            .keys()
            .map(|&d| self.destination_latency(schedule, d))
            .max()
            .unwrap_or(0)
    }

    /// Fraction of (node, slot) pairs in which a node must have its radio
    /// on (sending or receiving), over nodes that participate at all.
    /// Lower is better — an always-on MAC would score 1.0.
    pub fn listen_fraction(&self, schedule: &Schedule, network: &Network) -> f64 {
        if self.slot_count == 0 {
            return 0.0;
        }
        let mut active = vec![false; network.node_count()];
        let mut on_slots: BTreeMap<(NodeId, u32), ()> = BTreeMap::new();
        for (m, msg) in schedule.messages.iter().enumerate() {
            let slot = self.slots[m];
            active[msg.edge.0.index()] = true;
            active[msg.edge.1.index()] = true;
            on_slots.insert((msg.edge.0, slot), ());
            on_slots.insert((msg.edge.1, slot), ());
        }
        let participants = active.iter().filter(|&&a| a).count();
        if participants == 0 {
            return 0.0;
        }
        on_slots.len() as f64 / (participants as f64 * f64::from(self.slot_count))
    }
}

/// True if two directed transmissions cannot share a slot.
fn conflicts(network: &Network, a: (NodeId, NodeId), b: (NodeId, NodeId)) -> bool {
    let (sa, ra) = a;
    let (sb, rb) = b;
    // Half-duplex at every endpoint.
    if sa == sb || ra == rb || sa == rb || sb == ra {
        return true;
    }
    // Interference: a foreign transmitter within range of a receiver.
    network.graph().has_edge(sb, ra) || network.graph().has_edge(sa, rb)
}

/// Assigns collision-free slots to every message of `schedule`.
///
/// # Panics
/// Panics if the message-level wait-for graph is cyclic, which
/// [`crate::schedule::build_schedule`] already prevents.
pub fn assign_slots(network: &Network, schedule: &Schedule) -> SlotSchedule {
    let message_count = schedule.messages.len();
    // Message of each unit.
    let mut message_of = vec![usize::MAX; schedule.units.len()];
    for (m, msg) in schedule.messages.iter().enumerate() {
        for &u in &msg.units {
            message_of[u] = m;
        }
    }
    // Message-level precedence arcs.
    let mut arcs: Vec<(usize, usize)> = schedule
        .unit_arcs
        .iter()
        .map(|&(u, v)| (message_of[u], message_of[v]))
        .filter(|&(a, b)| a != b)
        .collect();
    arcs.sort_unstable();
    arcs.dedup();
    let order = topological_order(message_count, &arcs)
        .expect("message wait-for graph is acyclic (checked at merge time)");
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); message_count];
    for &(a, b) in &arcs {
        preds[b].push(a);
    }

    let mut slots = vec![0u32; message_count];
    let mut assigned = vec![false; message_count];
    let mut slot_count = 0u32;
    for &m in &order {
        let earliest = preds[m].iter().map(|&p| slots[p] + 1).max().unwrap_or(0);
        let mut slot = earliest;
        'search: loop {
            for other in 0..message_count {
                if assigned[other]
                    && slots[other] == slot
                    && conflicts(
                        network,
                        schedule.messages[m].edge,
                        schedule.messages[other].edge,
                    )
                {
                    slot += 1;
                    continue 'search;
                }
            }
            break;
        }
        slots[m] = slot;
        assigned[m] = true;
        slot_count = slot_count.max(slot + 1);
    }
    SlotSchedule { slots, slot_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::plan::GlobalPlan;
    use crate::schedule::build_schedule;
    use crate::spec::AggregationSpec;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn slot_all(net: &Network, spec: &AggregationSpec) -> (Schedule, SlotSchedule) {
        let routing = RoutingTables::build(
            net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(net, spec, &routing);
        let schedule = build_schedule(spec, &plan).unwrap();
        let slots = assign_slots(net, &schedule);
        (schedule, slots)
    }

    /// Exhaustively checks every constraint on an assignment.
    fn verify(net: &Network, schedule: &Schedule, slots: &SlotSchedule) {
        // No two conflicting messages share a slot.
        for a in 0..schedule.messages.len() {
            for b in (a + 1)..schedule.messages.len() {
                if slots.slots[a] == slots.slots[b] {
                    assert!(
                        !conflicts(net, schedule.messages[a].edge, schedule.messages[b].edge),
                        "messages {a} and {b} conflict in slot {}",
                        slots.slots[a]
                    );
                }
            }
        }
        // Precedence respected at the unit level.
        let mut message_of = vec![usize::MAX; schedule.units.len()];
        for (m, msg) in schedule.messages.iter().enumerate() {
            for &u in &msg.units {
                message_of[u] = m;
            }
        }
        for &(u, v) in &schedule.unit_arcs {
            let (mu, mv) = (message_of[u], message_of[v]);
            if mu != mv {
                assert!(
                    slots.slots[mu] < slots.slots[mv],
                    "dependency sent in slot {} but dependent in {}",
                    slots.slots[mu],
                    slots.slots[mv]
                );
            }
        }
    }

    #[test]
    fn line_pipeline_is_sequential() {
        // A 4-node chain: each hop must wait for the previous one.
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let (schedule, slots) = slot_all(&net, &spec);
        verify(&net, &schedule, &slots);
        assert_eq!(slots.slot_count, 3, "three dependent hops need three slots");
    }

    #[test]
    fn random_workload_schedules_are_valid() {
        let net = Network::with_default_energy(Deployment::great_duck_island(4));
        for seed in [1u64, 7, 13] {
            let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, seed));
            let (schedule, slots) = slot_all(&net, &spec);
            verify(&net, &schedule, &slots);
            assert!(slots.slot_count >= 1);
        }
    }

    #[test]
    fn makespan_at_least_longest_dependency_chain() {
        let net = Network::with_default_energy(Deployment::great_duck_island(4));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 12, 3));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        // Longest source→destination path length lower-bounds the makespan.
        let longest = routing
            .trees()
            .flat_map(|(_, t)| {
                t.destinations()
                    .iter()
                    .map(|&d| t.path_to(d).unwrap().len() as u32 - 1)
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        let (schedule, slots) = slot_all(&net, &spec);
        verify(&net, &schedule, &slots);
        assert!(slots.slot_count >= longest);
    }

    #[test]
    fn listening_time_is_reduced() {
        // With slots, nodes are radio-on for well under the whole round.
        let net = Network::with_default_energy(Deployment::great_duck_island(4));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 12, 9));
        let (schedule, slots) = slot_all(&net, &spec);
        let fraction = slots.listen_fraction(&schedule, &net);
        assert!(
            fraction > 0.0 && fraction < 0.8,
            "listen fraction {fraction}"
        );
    }

    #[test]
    fn destination_latency_on_a_line_equals_path_length() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let (schedule, slots) = slot_all(&net, &spec);
        // Three hops, delivered after slot 3.
        assert_eq!(slots.destination_latency(&schedule, NodeId(3)), 3);
        assert_eq!(slots.worst_destination_latency(&schedule), 3);
    }

    #[test]
    fn local_only_destination_has_zero_latency() {
        let net = Network::with_default_energy(Deployment::grid(3, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        // Node 1 aggregates itself and its neighbor 0 (one hop).
        spec.add_function(
            NodeId(1),
            AggregateFunction::weighted_sum([(NodeId(1), 1.0), (NodeId(0), 1.0)]),
        );
        let (schedule, slots) = slot_all(&net, &spec);
        // One hop arrives after slot 1; the self-reading is local.
        assert_eq!(slots.destination_latency(&schedule, NodeId(1)), 1);
        // A destination with no inputs at all would be 0 — covered by the
        // unwrap_or(0) path via a spec-less lookup.
        assert_eq!(slots.destination_latency(&schedule, NodeId(2)), 0);
    }

    #[test]
    fn latency_bounded_by_makespan() {
        let net = Network::with_default_energy(Deployment::great_duck_island(4));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 12, 5));
        let (schedule, slots) = slot_all(&net, &spec);
        assert!(slots.worst_destination_latency(&schedule) <= slots.slot_count);
        for d in spec.destinations() {
            assert!(slots.destination_latency(&schedule, d) <= slots.slot_count);
        }
    }

    #[test]
    fn parallel_far_apart_transmissions_share_slots() {
        // Two independent single-hop flows on opposite corners of a large
        // grid can go simultaneously.
        let net = Network::with_default_energy(Deployment::grid(8, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(1),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        spec.add_function(
            NodeId(6),
            AggregateFunction::weighted_sum([(NodeId(7), 1.0)]),
        );
        let (schedule, slots) = slot_all(&net, &spec);
        verify(&net, &schedule, &slots);
        assert_eq!(slots.slot_count, 1, "independent distant hops fit one slot");
    }
}
