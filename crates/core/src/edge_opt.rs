//! Single-edge optimization (§2.2).
//!
//! For each directed multicast edge `e : i → j`, decide what crosses it:
//! per source `s ∈ S_e` a **raw** value (usable by every destination of
//! `s` downstream), or per destination `d ∈ D_e` one **partial aggregate
//! record** covering all of `d`'s sources routed through `e`. Any valid
//! choice is a vertex cover of the bipartite graph `(S_e, D_e, ∼_e)`;
//! minimizing transmitted bytes is minimum-weight bipartite vertex cover,
//! solved exactly via min-cut ([`m2m_graph::vertex_cover`]).
//!
//! ## Continuation groups
//!
//! The paper's formulation assumes the §2.1 *path-sharing* restriction:
//! once units for a destination converge they continue on a single path,
//! so one record per destination per edge suffices. With per-source
//! shortest-path trees (the paper's own experimental routing) sharing is
//! encouraged but not guaranteed: two sources' routes to the same
//! destination may cross an edge together and diverge later, and a single
//! merged record could not be split again. We therefore generalize the
//! right side of the bipartite graph from destinations to **continuation
//! groups** — `(destination, exact remaining path)` — so a record is only
//! ever formed from units that stay together all the way to the
//! destination. Under the sharing restriction every destination has
//! exactly one group per edge and the formulation reduces to the paper's
//! (property-tested in `tests/plan_invariants.rs`).
//!
//! ## Tiebreaking
//!
//! Theorem 1 requires every single-edge problem to have a *unique*
//! minimum, arranged by adding "minuscule weights … consistent for all
//! instances across all edges" (§2.3). We scale byte sizes by
//! [`WEIGHT_SCALE`] and add a per-node priority that is the same in every
//! edge problem; the cover is then extracted from the canonical
//! source-minimal min cut, making solutions deterministic and globally
//! consistent.

use std::sync::Arc;

use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::vertex_cover::{min_weight_vertex_cover_with, CoverScratch};
use m2m_graph::NodeId;

use crate::agg::RAW_VALUE_BYTES;
use crate::parallel::parallel_map_with;
use crate::spec::AggregationSpec;
use crate::topo::Topology;

/// A directed physical edge `tail → head`.
pub type DirectedEdge = (NodeId, NodeId);

/// Byte sizes are scaled by this factor before the per-node tiebreak
/// priorities are added, so priorities can never outweigh a real byte.
pub const WEIGHT_SCALE: u64 = 1 << 20;

/// A continuation group: a destination plus the exact remaining route of
/// its units after the edge's head. Units in one group stay together all
/// the way to the destination and may safely share one partial record.
///
/// The suffix is a shared slice: every edge along a route stores a *view*
/// of the same interned path tail, so cloning a group (which the
/// optimizer does once per chosen record, per problem snapshot, and per
/// Corollary-1 reuse) is a reference-count bump instead of a path copy.
/// `Ord`/`Eq`/`Hash` all delegate to the slice contents, so interning is
/// invisible to every map and comparison.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AggGroup {
    /// The destination this record is for.
    pub destination: NodeId,
    /// Remaining path from the edge's head to the destination, inclusive
    /// of both endpoints (`suffix[0]` = head; `suffix.last()` =
    /// destination). A one-element suffix means the head *is* the
    /// destination.
    pub suffix: Arc<[NodeId]>,
}

/// The inputs to one single-edge optimization: `(S_e, D_e, ∼_e)` with
/// destinations refined into continuation groups.
///
/// Equality compares the full problem inputs; Corollary 1 keys on it —
/// an edge whose problem is unchanged keeps its solution verbatim, both
/// across incremental updates ([`crate::dynamics`]) and across whole plan
/// builds ([`crate::memo::SolveCache`], which hashes the problem).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgeProblem {
    /// The directed edge `i → j`.
    pub edge: DirectedEdge,
    /// Sources routed through the edge (`S_e`), sorted.
    pub sources: Vec<NodeId>,
    /// Continuation groups (`D_e` refined), sorted.
    pub groups: Vec<AggGroup>,
    /// The `∼_e` relation as `(source index, group index)` pairs, sorted.
    pub pairs: Vec<(usize, usize)>,
}

impl EdgeProblem {
    /// Distinct destinations in `D_e`, ascending. Borrows the sorted
    /// group slab directly — `groups` order is `(destination, suffix)`,
    /// so destinations stream out in ascending runs and deduplication is
    /// a one-element look-back; no allocation.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut last: Option<NodeId> = None;
        self.groups.iter().map(|g| g.destination).filter(move |&d| {
            if last == Some(d) {
                false
            } else {
                last = Some(d);
                true
            }
        })
    }

    /// True if every destination has a single continuation group — i.e.
    /// the paper's sharing restriction holds at this edge and the problem
    /// coincides with the paper's exact formulation.
    ///
    /// Unlike [`Self::destinations`] this does not assume the group slab
    /// is sorted, so it stays a valid diagnostic on hand-built or mutated
    /// problems.
    pub fn is_sharing_coherent(&self) -> bool {
        let mut dests: Vec<NodeId> = self.groups.iter().map(|g| g.destination).collect();
        dests.sort_unstable();
        dests.dedup();
        dests.len() == self.groups.len()
    }

    /// Sources feeding the given group, ascending (pairs are sorted, so
    /// filtering them streams sources in source-index order). Borrows
    /// the problem; collect only if ownership is needed.
    pub fn group_sources(&self, group_idx: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.pairs
            .iter()
            .filter(move |&&(_, g)| g == group_idx)
            .map(|&(s, _)| self.sources[s])
    }
}

/// The optimizer's decision for one edge.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgeSolution {
    /// The directed edge.
    pub edge: DirectedEdge,
    /// Sources transmitted raw across this edge, sorted.
    pub raw: Vec<NodeId>,
    /// Continuation groups transmitted as partial aggregate records,
    /// sorted.
    pub agg: Vec<AggGroup>,
    /// Total payload bytes crossing the edge (excluding message headers,
    /// which depend on message merging — see [`crate::schedule`]).
    pub cost_bytes: u64,
}

impl EdgeSolution {
    /// Number of message units (raw values + partial records) on the edge.
    pub fn unit_count(&self) -> usize {
        self.raw.len() + self.agg.len()
    }

    /// True if source `s` crosses the edge raw.
    pub fn transmits_raw(&self, s: NodeId) -> bool {
        self.raw.binary_search(&s).is_ok()
    }

    /// True if the group is transmitted as a partial record.
    pub fn transmits_group(&self, group: &AggGroup) -> bool {
        self.agg.binary_search(group).is_ok()
    }
}

/// Per-node tiebreak priority, identical across all edge problems (§2.3).
/// Sources and destinations get disjoint odd/even priorities so a source
/// role and a destination role of the same physical node stay distinct.
fn source_priority(s: NodeId) -> u64 {
    2 * u64::from(s.0) + 1
}

fn destination_priority(d: NodeId) -> u64 {
    2 * u64::from(d.0) + 2
}

/// Reusable workspace for [`solve_edge_with`]: the bipartite graph and
/// the min-cut solver's flow network. One per worker thread; a plan build
/// solving thousands of edges through one scratch performs no per-solve
/// graph allocations in the steady state.
#[derive(Clone, Debug, Default)]
pub struct EdgeSolveScratch {
    graph: BipartiteGraph,
    cover: CoverScratch,
}

impl EdgeSolveScratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solves one single-edge problem exactly.
///
/// The returned solution is the minimum-byte choice; ties are broken by
/// the consistent per-node priorities and the canonical min cut.
pub fn solve_edge(problem: &EdgeProblem, spec: &AggregationSpec) -> EdgeSolution {
    solve_edge_with(&mut EdgeSolveScratch::new(), problem, spec)
}

/// [`solve_edge`] with caller-provided scratch buffers. Output is
/// identical to a fresh-workspace solve for identical inputs — the
/// scratch is fully reset per call, so solutions stay deterministic no
/// matter which worker thread (and solve history) a problem lands on.
pub fn solve_edge_with(
    scratch: &mut EdgeSolveScratch,
    problem: &EdgeProblem,
    spec: &AggregationSpec,
) -> EdgeSolution {
    solve_edge_sized(scratch, problem, &|d| {
        spec.function(d)
            .expect("group destination must have a function")
            .partial_record_bytes()
    })
}

/// [`solve_edge_with`] with record sizes supplied by a callback instead
/// of a whole [`AggregationSpec`]. This is the solve as one *node* runs
/// it in the distributed protocol ([`crate::dvc`]): the edge's tail
/// knows only the per-destination record widths it learned from demand
/// messages, never the global spec. Given the same sizes the cover —
/// and hence the solution — is identical to the centralized one, because
/// weights and tiebreak priorities are built from exactly the same
/// numbers.
pub fn solve_edge_sized(
    scratch: &mut EdgeSolveScratch,
    problem: &EdgeProblem,
    record_bytes: &dyn Fn(NodeId) -> u32,
) -> EdgeSolution {
    let graph = &mut scratch.graph;
    graph.clear();
    for &s in &problem.sources {
        graph.add_left(u64::from(RAW_VALUE_BYTES) * WEIGHT_SCALE + source_priority(s));
    }
    for g in &problem.groups {
        let bytes = record_bytes(g.destination);
        graph.add_right(u64::from(bytes) * WEIGHT_SCALE + destination_priority(g.destination));
    }
    for &(si, gi) in &problem.pairs {
        // Pairs are sorted + deduplicated by construction, so skip the
        // linear duplicate scan of `add_edge`.
        graph.add_edge_unchecked(si, gi);
    }
    let cover = min_weight_vertex_cover_with(&mut scratch.cover, graph);
    if crate::telemetry::enabled() {
        use crate::telemetry::names;
        let flow = scratch.cover.last_flow_stats();
        crate::telemetry::counter(names::EDGE_OPT_SOLVES, 1);
        crate::telemetry::counter(names::EDGE_OPT_RAW_UNITS, cover.left.len() as u64);
        crate::telemetry::counter(names::EDGE_OPT_RECORD_UNITS, cover.right.len() as u64);
        crate::telemetry::counter(names::MAXFLOW_BFS_PHASES, flow.bfs_phases);
        crate::telemetry::counter(names::MAXFLOW_AUGMENTING_PATHS, flow.augmenting_paths);
        crate::telemetry::observe(
            names::EDGE_OPT_COVER_SIZE,
            (cover.left.len() + cover.right.len()) as u64,
        );
    }
    let raw: Vec<NodeId> = cover.left.iter().map(|&i| problem.sources[i]).collect();
    let agg: Vec<AggGroup> = cover
        .right
        .iter()
        .map(|&i| problem.groups[i].clone())
        .collect();
    let cost_bytes = raw.len() as u64 * u64::from(RAW_VALUE_BYTES)
        + agg
            .iter()
            .map(|g| u64::from(record_bytes(g.destination)))
            .sum::<u64>();
    debug_assert!(raw.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(agg.windows(2).all(|w| w[0] < w[1]));
    EdgeSolution {
        edge: problem.edge,
        raw,
        agg,
        cost_bytes,
    }
}

/// Removes `s` from an edge solution's raw set and forces every
/// continuation group `s` participates in into the aggregate set,
/// preserving cover validity — the §2.3 availability patch, with record
/// sizes supplied by a callback so a lone node (or the centralized
/// sweep in [`crate::plan`]) can apply it from whatever size knowledge
/// it has.
///
/// # Panics
/// Panics if `s` is not a source of `problem`.
pub fn patch_edge_sized(
    problem: &EdgeProblem,
    sol: &mut EdgeSolution,
    s: NodeId,
    record_bytes: &dyn Fn(NodeId) -> u32,
) {
    if let Ok(pos) = sol.raw.binary_search(&s) {
        sol.raw.remove(pos);
    }
    let si = problem
        .sources
        .binary_search(&s)
        .expect("patched source must be in the edge problem");
    for &(psi, gi) in &problem.pairs {
        if psi != si {
            continue;
        }
        let group = &problem.groups[gi];
        if let Err(pos) = sol.agg.binary_search(group) {
            sol.agg.insert(pos, group.clone());
        }
    }
    sol.cost_bytes = sol.raw.len() as u64 * u64::from(RAW_VALUE_BYTES)
        + sol
            .agg
            .iter()
            .map(|g| u64::from(record_bytes(g.destination)))
            .sum::<u64>();
}

/// Solves a batch of single-edge problems on up to `threads` workers,
/// returning solutions in input order (one per problem reference).
///
/// Theorem 1 is the license for the fan-out: each problem is solved
/// independently and composes into the global optimum, so scheduling is
/// free to be arbitrary as long as collection is ordered — which
/// [`parallel_map_with`] guarantees. The output is bit-identical to a
/// serial `problems.iter().map(|p| solve_edge(p, spec))` at any thread
/// count.
pub fn solve_edge_batch(
    problems: &[&EdgeProblem],
    spec: &AggregationSpec,
    threads: usize,
) -> Vec<EdgeSolution> {
    parallel_map_with(
        problems,
        threads,
        EdgeSolveScratch::new,
        |scratch, &problem| solve_edge_with(scratch, problem, spec),
    )
}

/// Solves a dense slab of single-edge problems on up to `threads`
/// workers, returning solutions aligned with the input slab (i.e. in
/// [`crate::topo::EdgeIdx`] order when handed `build_edge_problems`
/// output).
///
/// This is the chunked counterpart of [`solve_edge_batch`]: the slab is
/// statically split into one contiguous span per worker
/// ([`crate::parallel::parallel_chunks_mut`]), so the fan-out costs one
/// task dispatch per worker instead of one atomic claim per edge, and
/// each worker reuses one [`EdgeSolveScratch`] across its whole span.
/// Output is bit-identical to the serial solve at any thread count
/// (Theorem 1 plus per-call scratch reset).
pub fn solve_edge_slab(
    problems: &[EdgeProblem],
    spec: &AggregationSpec,
    threads: usize,
) -> Vec<EdgeSolution> {
    let mut slots: Vec<Option<EdgeSolution>> = Vec::with_capacity(problems.len());
    slots.resize_with(problems.len(), || None);
    crate::parallel::parallel_chunks_mut(
        problems,
        &mut slots,
        1,
        threads,
        EdgeSolveScratch::new,
        |scratch, chunk, out| {
            for (slot, problem) in out.iter_mut().zip(chunk) {
                *slot = Some(solve_edge_with(scratch, problem, spec));
            }
        },
    );
    slots
        .into_iter()
        .map(|s| s.expect("every span slot filled"))
        .collect()
}

/// Builds the per-edge optimization problems for a whole workload,
/// returning one [`EdgeProblem`] per demanded edge in
/// [`crate::topo::EdgeIdx`] order: walks every demanded
/// source→destination route in the snapshot and registers the source,
/// the continuation group, and the `∼_e` pair on every edge.
///
/// Demand filtering and suffix interning happen once, inside
/// [`Topology::snapshot`]; the slab this returns is aligned with
/// `topo.edges()`, and since that slab is sorted the problems come out
/// in exactly the ascending-edge order the old `BTreeMap` builder
/// produced.
pub fn build_edge_problems(topo: &Topology) -> Vec<EdgeProblem> {
    // Flat bucketing instead of one `BTreeMap` pair per edge: count
    // registrations per edge, carve one shared buffer into per-edge
    // spans by prefix sum, drop every `(source, group)` registration
    // into its span, then freeze each span independently. Three linear
    // walks and one sort per edge — no tree rebalancing, and the only
    // allocations are the final per-problem vectors.
    let ne = topo.edge_count();
    let mut start = vec![0u32; ne + 1];
    for tree in topo.trees() {
        for dp in tree.dest_paths() {
            for (edge_idx, _) in dp.hops() {
                start[edge_idx.index() + 1] += 1;
            }
        }
    }
    for e in 0..ne {
        start[e + 1] += start[e];
    }
    let empty_suffix: Arc<[NodeId]> = Arc::from(&[][..]);
    let filler = (
        NodeId(0),
        AggGroup {
            destination: NodeId(0),
            suffix: empty_suffix,
        },
    );
    let mut flat: Vec<(NodeId, AggGroup)> = vec![filler; start[ne] as usize];
    let mut cursor = start.clone();
    for tree in topo.trees() {
        let s = tree.source();
        for dp in tree.dest_paths() {
            let d = dp.destination();
            for (edge_idx, suffix) in dp.hops() {
                let c = &mut cursor[edge_idx.index()];
                flat[*c as usize] = (
                    s,
                    AggGroup {
                        destination: d,
                        suffix: Arc::clone(suffix),
                    },
                );
                *c += 1;
            }
        }
    }

    (0..ne)
        .map(|e| {
            let span = &mut flat[start[e] as usize..start[e + 1] as usize];
            // Sorting registrations by `(source, group)` makes sources
            // stream out in ascending runs, and — because mapping through
            // the sorted dedup'd slabs is monotone — yields the pair list
            // already in sorted order, exactly as the map-based builder
            // produced it.
            span.sort_unstable();
            let mut sources: Vec<NodeId> = Vec::new();
            for (s, _) in span.iter() {
                if sources.last() != Some(s) {
                    sources.push(*s);
                }
            }
            let mut groups: Vec<AggGroup> = span.iter().map(|(_, g)| g.clone()).collect();
            groups.sort_unstable();
            groups.dedup();
            let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(span.len());
            let mut prev: Option<&(NodeId, AggGroup)> = None;
            for ent in span.iter() {
                if prev == Some(ent) {
                    continue;
                }
                prev = Some(ent);
                let si = sources.binary_search(&ent.0).expect("source registered");
                let gi = groups.binary_search(&ent.1).expect("group registered");
                pairs.push((si, gi));
            }
            EdgeProblem {
                edge: topo.edges()[e],
                sources,
                groups,
                pairs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;

    /// Builds the paper's Figure 2 single-edge instance directly.
    fn figure2_problem() -> (EdgeProblem, AggregationSpec) {
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        let (k, l, m) = (NodeId(10), NodeId(11), NodeId(12));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            k,
            AggregateFunction::weighted_sum([(a, 1.0), (b, 1.0), (c, 1.0), (d, 1.0)]),
        );
        spec.add_function(
            l,
            AggregateFunction::weighted_sum([(a, 1.0), (b, 1.0), (c, 1.0)]),
        );
        spec.add_function(m, AggregateFunction::weighted_sum([(a, 1.0)]));
        let mk_group = |dest: NodeId| AggGroup {
            destination: dest,
            // All destinations share the continuation via node 5 (the "j"
            // of Figure 1(C)); exact shape is irrelevant to the solve.
            suffix: vec![NodeId(5), dest].into(),
        };
        let problem = EdgeProblem {
            edge: (NodeId(4), NodeId(5)),
            sources: vec![a, b, c, d],
            groups: vec![mk_group(k), mk_group(l), mk_group(m)],
            pairs: vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (3, 0),
            ],
        };
        (problem, spec)
    }

    #[test]
    fn figure2_solution_matches_paper() {
        // "a solution … includes source a and destinations k and l" —
        // one raw + two records = 3 units, 12 payload bytes at 4 B each.
        let (problem, spec) = figure2_problem();
        let sol = solve_edge(&problem, &spec);
        assert_eq!(sol.raw, vec![NodeId(0)]);
        let agg_dests: Vec<NodeId> = sol.agg.iter().map(|g| g.destination).collect();
        assert_eq!(agg_dests, vec![NodeId(10), NodeId(11)]);
        assert_eq!(sol.unit_count(), 3);
        assert_eq!(sol.cost_bytes, 12);
    }

    #[test]
    fn solution_is_a_cover() {
        let (problem, spec) = figure2_problem();
        let sol = solve_edge(&problem, &spec);
        for &(si, gi) in &problem.pairs {
            let s = problem.sources[si];
            let g = &problem.groups[gi];
            assert!(
                sol.transmits_raw(s) || sol.transmits_group(g),
                "pair ({s}, {}) uncovered",
                g.destination
            );
        }
    }

    #[test]
    fn solve_is_deterministic() {
        let (problem, spec) = figure2_problem();
        assert_eq!(solve_edge(&problem, &spec), solve_edge(&problem, &spec));
    }

    #[test]
    fn coherence_detection() {
        let (problem, _) = figure2_problem();
        assert!(problem.is_sharing_coherent());
        let mut incoherent = problem.clone();
        incoherent.groups.push(AggGroup {
            destination: NodeId(10),
            suffix: vec![NodeId(6), NodeId(10)].into(),
        });
        incoherent.pairs.push((3, 3));
        assert!(!incoherent.is_sharing_coherent());
    }

    #[test]
    fn group_sources_lookup() {
        let (problem, _) = figure2_problem();
        assert_eq!(
            problem.group_sources(0).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            problem.group_sources(2).collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn build_edge_problems_merges_trees_on_shared_edges() {
        use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
        // 4-node line: sources 0 and 1 both feed destination 3; the edge
        // 2→3 is shared by both trees and must carry both sources.
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 2.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let topo = Topology::snapshot(&spec, &routing);
        let problems = build_edge_problems(&topo);
        let at = |edge| {
            let idx = topo.edge_idx(edge).expect("edge is demanded");
            &problems[idx.index()]
        };
        let shared = at((NodeId(2), NodeId(3)));
        assert_eq!(shared.sources, vec![NodeId(0), NodeId(1)]);
        assert_eq!(shared.groups.len(), 1, "one destination, one group");
        assert_eq!(shared.pairs.len(), 2);
        // Upstream edge 0→1 carries only source 0.
        let first = at((NodeId(0), NodeId(1)));
        assert_eq!(first.sources, vec![NodeId(0)]);
        // No reverse edges appear.
        assert!(topo.edge_idx((NodeId(3), NodeId(2))).is_none());
    }

    #[test]
    fn build_edge_problems_dedups_repeated_pairs() {
        use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};
        let net = Network::with_default_energy(Deployment::grid(3, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(2),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let problems = build_edge_problems(&Topology::snapshot(&spec, &routing));
        for p in &problems {
            let mut pairs = p.pairs.clone();
            pairs.dedup();
            assert_eq!(pairs, p.pairs, "pairs must be deduplicated and sorted");
        }
    }
}
