//! Cost accounting shared by the runtime, baselines, and figure harnesses.
//!
//! Besides network-wide totals ([`RoundCost`]), per-node energy is tracked
//! in a [`NodeEnergyLedger`] — §1 motivates in-network control partly by
//! load distribution: out-of-network control "create\[s\] bottlenecks at
//! nodes near the base station, which would otherwise be overburdened with
//! message traffic and deplete their energy earlier than other nodes".
//! The ledger exposes exactly that hotspot, and [`LifetimeReport`] turns
//! it into the rounds-until-first-death metric.

use m2m_graph::NodeId;

/// Energy and traffic totals for one round of plan execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoundCost {
    /// Total transmit energy (µJ).
    pub tx_uj: f64,
    /// Total receive energy (µJ).
    pub rx_uj: f64,
    /// Number of messages transmitted.
    pub messages: usize,
    /// Number of message units carried (raw values + partial records).
    pub units: usize,
    /// Total payload bytes (message bodies, excluding headers).
    pub payload_bytes: u64,
}

impl RoundCost {
    /// Total energy in µJ (send + receive, as the paper measures).
    #[inline]
    pub fn total_uj(&self) -> f64 {
        self.tx_uj + self.rx_uj
    }

    /// Total energy in mJ — the unit of the paper's figures.
    #[inline]
    pub fn total_mj(&self) -> f64 {
        self.total_uj() / 1000.0
    }

    /// Accumulates another cost into this one.
    pub fn accumulate(&mut self, other: &RoundCost) {
        self.tx_uj += other.tx_uj;
        self.rx_uj += other.rx_uj;
        self.messages += other.messages;
        self.units += other.units;
        self.payload_bytes += other.payload_bytes;
    }
}

/// Per-node energy accounting for one round.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeEnergyLedger {
    tx_uj: Vec<f64>,
    rx_uj: Vec<f64>,
}

impl NodeEnergyLedger {
    /// A zeroed ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        NodeEnergyLedger {
            tx_uj: vec![0.0; n],
            rx_uj: vec![0.0; n],
        }
    }

    /// Charges transmit energy to a node.
    #[inline]
    pub fn charge_tx(&mut self, node: NodeId, uj: f64) {
        self.tx_uj[node.index()] += uj;
    }

    /// Charges receive energy to a node.
    #[inline]
    pub fn charge_rx(&mut self, node: NodeId, uj: f64) {
        self.rx_uj[node.index()] += uj;
    }

    /// Total energy spent by one node (µJ).
    #[inline]
    pub fn node_total_uj(&self, node: NodeId) -> f64 {
        self.tx_uj[node.index()] + self.rx_uj[node.index()]
    }

    /// Network-wide total (µJ) — matches the corresponding
    /// [`RoundCost::total_uj`] when both track the same round.
    pub fn total_uj(&self) -> f64 {
        self.tx_uj.iter().sum::<f64>() + self.rx_uj.iter().sum::<f64>()
    }

    /// The busiest node and its per-round energy (µJ). Ties break toward
    /// the lower node id.
    pub fn hotspot(&self) -> (NodeId, f64) {
        let mut best = (NodeId(0), 0.0);
        for i in 0..self.tx_uj.len() {
            let v = self.tx_uj[i] + self.rx_uj[i];
            if v > best.1 {
                best = (NodeId::from_index(i), v);
            }
        }
        best
    }

    /// Load imbalance: hotspot energy divided by mean nonzero-node energy.
    /// 1.0 = perfectly even among active nodes.
    pub fn imbalance(&self) -> f64 {
        let active: Vec<f64> = (0..self.tx_uj.len())
            .map(|i| self.tx_uj[i] + self.rx_uj[i])
            .filter(|&v| v > 0.0)
            .collect();
        if active.is_empty() {
            return 1.0;
        }
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        self.hotspot().1 / mean
    }

    /// Iterator over `(node, total_uj)` for every node.
    pub fn per_node(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        (0..self.tx_uj.len()).map(|i| (NodeId::from_index(i), self.tx_uj[i] + self.rx_uj[i]))
    }
}

/// Battery-lifetime projection from a per-round ledger. The network dies
/// when its first node does (the usual sensor-network lifetime metric —
/// §1: overburdened nodes "deplete their energy earlier than other
/// nodes").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeReport {
    /// Rounds until the busiest node exhausts its battery.
    pub rounds_until_first_death: f64,
    /// The node that dies first.
    pub first_death: NodeId,
    /// Hotspot-to-mean load ratio (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Projects network lifetime assuming every node starts with
/// `battery_uj` microjoules and the given ledger repeats every round.
///
/// # Panics
/// Panics if the ledger shows no energy use (lifetime would be infinite).
pub fn project_lifetime(ledger: &NodeEnergyLedger, battery_uj: f64) -> LifetimeReport {
    let (node, per_round) = ledger.hotspot();
    assert!(
        per_round > 0.0,
        "no node spends energy; lifetime is unbounded"
    );
    LifetimeReport {
        rounds_until_first_death: battery_uj / per_round,
        first_death: node,
        imbalance: ledger.imbalance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_per_node_and_totals() {
        let mut ledger = NodeEnergyLedger::new(3);
        ledger.charge_tx(NodeId(0), 10.0);
        ledger.charge_rx(NodeId(1), 4.0);
        ledger.charge_tx(NodeId(1), 8.0);
        assert_eq!(ledger.node_total_uj(NodeId(0)), 10.0);
        assert_eq!(ledger.node_total_uj(NodeId(1)), 12.0);
        assert_eq!(ledger.node_total_uj(NodeId(2)), 0.0);
        assert_eq!(ledger.total_uj(), 22.0);
        assert_eq!(ledger.hotspot(), (NodeId(1), 12.0));
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let mut ledger = NodeEnergyLedger::new(4);
        for i in 0..4 {
            ledger.charge_tx(NodeId(i), 5.0);
        }
        assert!((ledger.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_grows_with_hotspots() {
        let mut ledger = NodeEnergyLedger::new(4);
        ledger.charge_tx(NodeId(0), 30.0);
        ledger.charge_tx(NodeId(1), 10.0);
        // mean of active = 20, hotspot 30 → 1.5.
        assert!((ledger.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lifetime_projection() {
        let mut ledger = NodeEnergyLedger::new(2);
        ledger.charge_tx(NodeId(1), 100.0);
        let report = project_lifetime(&ledger, 1_000_000.0);
        assert_eq!(report.first_death, NodeId(1));
        assert!((report.rounds_until_first_death - 10_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lifetime is unbounded")]
    fn idle_network_has_no_lifetime() {
        let ledger = NodeEnergyLedger::new(2);
        project_lifetime(&ledger, 1.0);
    }

    #[test]
    fn totals_and_units() {
        let c = RoundCost {
            tx_uj: 1500.0,
            rx_uj: 500.0,
            messages: 3,
            units: 5,
            payload_bytes: 20,
        };
        assert_eq!(c.total_uj(), 2000.0);
        assert!((c.total_mj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = RoundCost {
            tx_uj: 1.0,
            rx_uj: 2.0,
            messages: 1,
            units: 2,
            payload_bytes: 4,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.messages, 2);
        assert_eq!(a.units, 4);
        assert_eq!(a.payload_bytes, 8);
        assert_eq!(a.total_uj(), 6.0);
    }
}
