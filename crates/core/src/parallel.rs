//! A small scoped worker pool for deterministic fan-out.
//!
//! Theorem 1 makes the plan optimizer embarrassingly parallel: every
//! single-edge problem is solved independently and the global plan is just
//! their union, so the per-edge solves can be fanned out across threads
//! with **no** effect on the result — provided the results are collected
//! back in input order, which [`parallel_map_with`] guarantees by tagging
//! each result with its item index. The workspace bans external
//! dependencies, so this is `std::thread::scope` plus an atomic work
//! counter rather than rayon; for the coarse-grained work here (one
//! min-cut per item) that is all the machinery required.
//!
//! Worker count defaults to the machine's available parallelism and can be
//! pinned through [`crate::config::Config`] (or its `M2M_THREADS`
//! environment default — useful for the serial-vs-parallel benchmarks and
//! for reproducing single-thread runs).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
/// Re-exported for compatibility; [`crate::config::THREADS_ENV`] is the
/// canonical definition.
pub const THREADS_ENV: &str = crate::config::THREADS_ENV;

/// The worker count used by plan builds when none is given explicitly:
/// the process-wide [`crate::config::global`] configuration's
/// [`resolved_threads`](crate::config::Config::resolved_threads) —
/// `M2M_THREADS` if pinned (by env or [`crate::config::install`]),
/// otherwise the machine's available parallelism, otherwise 1.
pub fn max_threads() -> usize {
    crate::config::global().resolved_threads()
}

/// Maps `f` over `items` on up to `threads` workers, each with its own
/// scratch state from `init`, returning results in item order.
///
/// Determinism: the output is exactly
/// `items.iter().map(|x| f(&mut init(), x)).collect()` regardless of the
/// thread count or how the OS schedules the workers — items are claimed
/// from a shared atomic counter, but every result is placed back at its
/// item's index. `f` must be a pure function of `(scratch-reset-state,
/// item)` for this to hold; all solvers routed through here reset their
/// scratch fully per call.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        let mut scratch = init();
        return items.iter().map(|x| f(&mut scratch, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        out.push((idx, f(&mut scratch, &items[idx])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Reassemble in item order. `#![forbid(unsafe_code)]` rules out
    // writing into uninitialized slots, so go through Option.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for chunk in &mut per_worker {
        for (idx, r) in chunk.drain(..) {
            debug_assert!(slots[idx].is_none(), "item {idx} claimed twice");
            slots[idx] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

/// Fans `items` out in **chunked batches**: the items are statically
/// partitioned into one contiguous chunk per worker, and `f` is called
/// once per chunk with a per-worker scratch from `init`, the item chunk,
/// and the matching disjoint span of `out` (`stride` output elements per
/// item). One task dispatch per worker instead of one per item, and the
/// callee writes results in place — no per-item closure, boxing, or
/// result reassembly.
///
/// Determinism: chunk boundaries move with the worker count, so the
/// output is thread-count-independent iff `f` writes each item's `stride`
/// outputs as a pure function of that item alone (as the batched executor
/// does — lanes are independent rounds). `f` must fill its entire span.
///
/// # Panics
/// Panics unless `out.len() == items.len() * stride` and `stride > 0`
/// (use [`parallel_map_with`] for outputs that aren't per-item spans).
pub fn parallel_chunks_mut<T, U, S, I, F>(
    items: &[T],
    out: &mut [U],
    stride: usize,
    threads: usize,
    init: I,
    f: F,
) where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[T], &mut [U]) + Sync,
{
    assert!(stride > 0, "stride must be positive");
    assert_eq!(
        out.len(),
        items.len() * stride,
        "output slab must be items × stride"
    );
    if items.is_empty() {
        return;
    }
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        let mut scratch = init();
        f(&mut scratch, items, out);
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let init = &init;
    let f = &f;
    std::thread::scope(|scope| {
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk * stride)) {
            scope.spawn(move || {
                let mut scratch = init();
                f(&mut scratch, item_chunk, out_chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map_with(&items, threads, || (), |(), &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map_with(&none, 8, || (), |(), &x| x).is_empty());
        assert_eq!(
            parallel_map_with(&[5u32], 8, || (), |(), &x| x + 1),
            vec![6]
        );
    }

    #[test]
    fn scratch_state_is_per_worker() {
        // Each worker counts its own items; totals must sum to the input
        // length even though workers race on the claim counter.
        let items: Vec<u32> = (0..100).collect();
        let results = parallel_map_with(
            &items,
            4,
            || 0usize,
            |count, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(results.len(), 100);
        // Per-worker counts are contiguous 1..=k sequences; the global
        // result order still matches the input order.
        for (i, &(x, _)) in results.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        let items = [1u8, 2, 3];
        assert_eq!(
            parallel_map_with(&items, 0, || (), |(), &x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn chunks_mut_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let fill = |_: &mut (), chunk: &[u64], out: &mut [u64]| {
            for (i, &x) in chunk.iter().enumerate() {
                out[i * 2] = x + 1;
                out[i * 2 + 1] = x * 3;
            }
        };
        let mut expect = vec![0u64; items.len() * 2];
        parallel_chunks_mut(&items, &mut expect, 2, 1, || (), fill);
        for threads in [2usize, 3, 8, 64] {
            let mut got = vec![0u64; items.len() * 2];
            parallel_chunks_mut(&items, &mut got, 2, threads, || (), fill);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunks_mut_empty_input_and_zero_threads() {
        let none: Vec<u32> = Vec::new();
        let mut out: Vec<u32> = Vec::new();
        parallel_chunks_mut(&none, &mut out, 3, 8, || (), |(), _, _| unreachable!());
        let mut one = vec![0u32; 1];
        parallel_chunks_mut(&[7u32], &mut one, 1, 0, || (), |(), c, o| o[0] = c[0] * 2);
        assert_eq!(one, vec![14]);
    }

    #[test]
    fn chunks_mut_scratch_is_per_worker() {
        // Each worker's scratch counts only its own chunk's items.
        let items: Vec<u32> = (0..64).collect();
        let mut out = vec![0u32; 64];
        parallel_chunks_mut(
            &items,
            &mut out,
            1,
            4,
            || 0u32,
            |seen, chunk, out| {
                for (i, &x) in chunk.iter().enumerate() {
                    *seen += 1;
                    out[i] = x;
                }
                assert_eq!(*seen as usize, chunk.len());
            },
        );
        assert_eq!(out, items);
    }
}
