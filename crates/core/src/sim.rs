//! The discrete-event distributed node runtime: every node an autonomous
//! component advancing on a shared event clock, with bounded per-link
//! message queues and a binary-heap event wheel — the execution model the
//! paper's motes actually live in, scaled to 100k–1M nodes.
//!
//! # Architecture
//!
//! [`SimExec`] lowers a [`CompiledSchedule`] once (through
//! [`FaultyExec`], whose static message graph, op gates, raw relay
//! chains and coverage universe are clock-independent and shared) into
//! event-wheel form:
//!
//! * **Components** — one per message endpoint, interned as dense slots
//!   of the sorted endpoint universe ([`FaultyExec`]'s per-node plane
//!   ids). Each component owns one radio and one bounded outbound FIFO,
//!   represented intrusively: a `next` link per message plus
//!   head/tail/depth per component — no per-node allocation.
//! * **Event wheel** — a `BinaryHeap` of `(tick, seq)`-ordered events;
//!   `seq` is a monotone push counter, so the pop order is a total order
//!   independent of heap internals: runs are bit-replayable.
//! * **Message graph** — the schedule's unit arcs collapsed to message
//!   granularity (the same `preds` table the TDMA simulator uses),
//!   plus its reverse (successor CSR) so resolution is push-driven.
//! * **Interned payloads** — a message's wire payload is its unit span
//!   in the schedule, never materialized: records fold in place in a
//!   dense unit-indexed slab at *ready* time. The hot loop performs no
//!   heap allocation ([`SimState`] is reusable scratch).
//!
//! # One round
//!
//! A message becomes **ready** when every predecessor message has
//! *resolved* (delivered or lost). At ready time its node folds the
//! record units it carries from whatever actually arrived — gates are
//! final then, because gating units travel in predecessor messages and
//! raw relay chains are transitively upstream — and enqueues the message
//! on its outbound FIFO. The radio transmits the queue head once per
//! tick; each attempt asks the shared [`DeliveryModel`] with the same
//! `(link, salt + tick)` coordinate discipline the TDMA executor uses,
//! so losses come from the same seeded streams. A failed attempt backs
//! off [`RetryPolicy::backoff_slots`] ticks and retries; exhausting
//! `max_attempts` abandons the message (a `Lost` event still resolves
//! its successors — the protocol moves on). A delivered or lost message
//! decrements its successors' pending counts, cascading readiness; a
//! destination finalizes when its last inbound message resolves.
//!
//! The round ends when the wheel drains or the tick budget
//! (`policy.max_slots`) expires; destinations still pending at the
//! deadline are folded from whatever arrived, mirroring the TDMA slot
//! budget semantics.
//!
//! **Equivalence contract**: at loss probability 0 (any retry policy),
//! every gate is open and every fold includes every op in the compiled
//! order, so [`SimOutcome::outcome`] results / cost / coverage are
//! **bit-identical** to [`FaultyExec::run`] and hence to
//! [`CompiledSchedule::run_round`] (`tests/sim_equivalence.rs` pins this
//! across routing modes). Under loss the two executors draw from the
//! same seeded per-link streams but index them by different clocks
//! (event ticks vs TDMA slots), so individual rounds may degrade
//! differently — both are valid schedules of the same protocol.
//!
//! The per-link queue bound is **backpressure accounting**, not a drop
//! policy: pushes past the bound are counted (per node and in total,
//! surfaced as [`SimOutcome::queue_overflows`] and flight-recorder
//! [`m2m_telemetry::timeseries::EventKind::QueueOverflow`] events) but
//! never discard messages, so determinism and the p=0 equivalence hold
//! for any bound while congested nodes remain visible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use m2m_graph::NodeId;
use m2m_netsim::{DeliveryModel, Network};

use crate::agg::{AggregateKind, PartialRecord};
use crate::exec::{CompiledSchedule, Op};
use crate::faults::{DestCoverage, FaultOutcome, FaultyExec, LinkEvent, RetryPolicy};
use crate::metrics::RoundCost;
use crate::telemetry::names;

/// Simulator tuning knobs, read from [`crate::config::Config`] by
/// [`crate::session::Session`] (`M2M_SIM_QUEUE` / `M2M_SIM_LATENCY`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimParams {
    /// Outbound FIFO depth per node before pushes count as overflow
    /// (accounting only — see the module docs).
    pub queue_cap: u32,
    /// Ticks a transmission spends in flight before delivery resolves.
    pub latency: u32,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            queue_cap: crate::config::DEFAULT_SIM_QUEUE,
            latency: crate::config::DEFAULT_SIM_LATENCY,
        }
    }
}

/// What one event is about. Payload is a dense index: the component for
/// `Tx`, the message for `Deliver` / `Lost`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvKind {
    /// The component's radio attempts its queue head.
    Tx(u32),
    /// A transmitted message arrives at its head node.
    Deliver(u32),
    /// An abandoned message's loss becomes known downstream.
    Lost(u32),
}

/// One scheduled event. Ordering is `(time, seq)` — `seq` is unique per
/// push, so the wheel's pop order is total and replayable regardless of
/// heap layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Queue-link sentinel: no next message / empty queue.
const NO_MSG: u32 = u32::MAX;

/// The outcome of one event-driven round: the usual loss-aware
/// [`FaultOutcome`] plus the simulator's own counters.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOutcome {
    /// Results / coverage / cost / link events, with the exact
    /// [`FaultOutcome`] semantics (`slots_used` is the final event tick).
    pub outcome: FaultOutcome,
    /// Events processed by the wheel this round.
    pub events: u64,
    /// The tick of the last processed event.
    pub ticks: u64,
    /// Deepest any node's outbound FIFO got this round.
    pub peak_queue_depth: u32,
    /// Pushes past the configured queue bound (accounting only).
    pub queue_overflows: u64,
    /// Nodes whose queue overflowed, with their overflow push counts
    /// (ascending node id; empty when nothing overflowed).
    pub overflow_nodes: Vec<(NodeId, u32)>,
}

/// Reusable scratch for [`SimExec::run`] — allocate once, run any number
/// of rounds without further allocation (outcomes excepted). Dropping it
/// flushes the worker-local observability planes, like
/// [`crate::faults::FaultScratch`].
#[derive(Clone, Debug, Default)]
pub struct SimState {
    heap: BinaryHeap<std::cmp::Reverse<Ev>>,
    seq: u64,
    delivered: Vec<bool>,
    dropped: Vec<bool>,
    attempts: Vec<u32>,
    /// Per message: unresolved predecessor messages left.
    pred_left: Vec<u32>,
    /// Per destination step: unresolved inbound messages left.
    dest_left: Vec<u32>,
    /// Intrusive FIFO links (per message).
    next_in_q: Vec<u32>,
    /// Per component: queue head / tail / depth, radio busy flag.
    q_head: Vec<u32>,
    q_tail: Vec<u32>,
    q_depth: Vec<u32>,
    radio_busy: Vec<bool>,
    /// Per component: pushes past the bound (sparse, via `touched`).
    overflow_at: Vec<u32>,
    touched_overflow: Vec<u32>,
    readings: Vec<f64>,
    records: Vec<Option<PartialRecord>>,
    results: Vec<Option<f64>>,
    dest_done: Vec<bool>,
    unit_cover: Vec<u64>,
    cover: Vec<u64>,
    tmp_cover: Vec<u64>,
    planes: m2m_telemetry::timeseries::NodePlanes,
}

impl Drop for SimState {
    fn drop(&mut self) {
        m2m_telemetry::timeseries::merge_planes(&mut self.planes);
    }
}

/// The event-driven executor. Built once per plan; see the module docs.
#[derive(Clone, Debug)]
pub struct SimExec {
    faults: FaultyExec,
    params: SimParams,
    /// Successor CSR: reverse of the message `preds` table.
    succ_start: Vec<u32>,
    succ_pool: Vec<u32>,
    /// Per message: initial predecessor count.
    init_preds: Vec<u32>,
    /// Message → record-step CSR: the record steps whose unit travels in
    /// the message, in compiled (topological) order.
    rstep_start: Vec<u32>,
    rstep_pool: Vec<u32>,
    /// Message → destination-step CSR: destinations whose final fold
    /// waits on the message.
    dstep_start: Vec<u32>,
    dstep_pool: Vec<u32>,
    /// Per destination step: distinct inbound messages demanded.
    init_dest_preds: Vec<u32>,
}

impl SimExec {
    /// Lowers `compiled` for event-driven execution with default
    /// parameters.
    pub fn new(network: &Network, compiled: &CompiledSchedule) -> Self {
        Self::with_params(network, compiled, SimParams::default())
    }

    /// Lowers `compiled` with explicit [`SimParams`].
    ///
    /// # Panics
    /// Panics if `params.queue_cap` or `params.latency` is zero.
    pub fn with_params(network: &Network, compiled: &CompiledSchedule, params: SimParams) -> Self {
        assert!(params.queue_cap >= 1, "queue bound must be >= 1");
        assert!(params.latency >= 1, "link latency must be >= 1 tick");
        Self::from_faults(FaultyExec::new(network, compiled), params)
    }

    /// Lowers an already-built [`FaultyExec`] (shares its static tables).
    pub fn from_faults(faults: FaultyExec, params: SimParams) -> Self {
        crate::telemetry::counter(names::SIM_BUILDS, 1);
        let message_count = faults.message_facts().len();
        let compiled = faults.compiled();

        // Reverse the predecessor table into a successor CSR, and record
        // initial pending counts.
        let mut init_preds = vec![0u32; message_count];
        let mut succ_count = vec![0u32; message_count];
        for (m, init) in init_preds.iter_mut().enumerate() {
            let preds = faults.preds_of(m);
            *init = preds.len() as u32;
            for &p in preds {
                succ_count[p as usize] += 1;
            }
        }
        let mut succ_start = Vec::with_capacity(message_count + 1);
        let mut acc = 0u32;
        for &c in &succ_count {
            succ_start.push(acc);
            acc += c;
        }
        succ_start.push(acc);
        let mut succ_pool = vec![0u32; acc as usize];
        let mut cursor = succ_start.clone();
        for m in 0..message_count {
            for &p in faults.preds_of(m) {
                let at = &mut cursor[p as usize];
                succ_pool[*at as usize] = m as u32;
                *at += 1;
            }
        }

        // Bucket record steps by carrying message, preserving compiled
        // (topological) order within each bucket.
        let unit_message = faults.unit_message();
        let mut rstep_count = vec![0u32; message_count];
        for step in &compiled.record_steps {
            rstep_count[unit_message[step.unit as usize] as usize] += 1;
        }
        let mut rstep_start = Vec::with_capacity(message_count + 1);
        let mut acc = 0u32;
        for &c in &rstep_count {
            rstep_start.push(acc);
            acc += c;
        }
        rstep_start.push(acc);
        let mut rstep_pool = vec![0u32; acc as usize];
        let mut cursor = rstep_start.clone();
        for (i, step) in compiled.record_steps.iter().enumerate() {
            let m = unit_message[step.unit as usize] as usize;
            rstep_pool[cursor[m] as usize] = i as u32;
            cursor[m] += 1;
        }

        // Each destination step waits on the distinct messages carrying
        // its gating units (local contributions gate on nothing).
        let op_gates = faults.op_gates();
        let mut dest_pred_lists: Vec<Vec<u32>> = Vec::with_capacity(compiled.dest_steps.len());
        for step in &compiled.dest_steps {
            let base = step.first_op as usize;
            let mut list: Vec<u32> = (0..step.op_count as usize)
                .filter_map(|k| {
                    let gate = op_gates[base + k];
                    (gate != u32::MAX).then(|| unit_message[gate as usize])
                })
                .collect();
            list.sort_unstable();
            list.dedup();
            dest_pred_lists.push(list);
        }
        let init_dest_preds: Vec<u32> = dest_pred_lists.iter().map(|l| l.len() as u32).collect();
        let mut dstep_count = vec![0u32; message_count];
        for list in &dest_pred_lists {
            for &m in list {
                dstep_count[m as usize] += 1;
            }
        }
        let mut dstep_start = Vec::with_capacity(message_count + 1);
        let mut acc = 0u32;
        for &c in &dstep_count {
            dstep_start.push(acc);
            acc += c;
        }
        dstep_start.push(acc);
        let mut dstep_pool = vec![0u32; acc as usize];
        let mut cursor = dstep_start.clone();
        for (i, list) in dest_pred_lists.iter().enumerate() {
            for &m in list {
                dstep_pool[cursor[m as usize] as usize] = i as u32;
                cursor[m as usize] += 1;
            }
        }

        crate::m2m_log!(
            crate::telemetry::Level::Debug,
            "sim compiled: {} components, {} messages, {} succ arcs",
            faults.plane_universe().len(),
            message_count,
            succ_pool.len()
        );
        SimExec {
            faults,
            params,
            succ_start,
            succ_pool,
            init_preds,
            rstep_start,
            rstep_pool,
            dstep_start,
            dstep_pool,
            init_dest_preds,
        }
    }

    /// The shared static lowering (message graph, gates, slot schedule).
    #[inline]
    pub fn faults(&self) -> &FaultyExec {
        &self.faults
    }

    /// The compiled schedule this simulator runs.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        self.faults.compiled()
    }

    /// The simulator's tuning knobs.
    #[inline]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Components (distinct message endpoints) in the simulation.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.faults.plane_universe().len()
    }

    /// Messages in one round of the simulation.
    #[inline]
    pub fn message_count(&self) -> usize {
        self.faults.message_facts().len()
    }

    /// Allocates a scratch arena sized for this simulator.
    pub fn state(&self) -> SimState {
        let messages = self.message_count();
        let components = self.component_count();
        let compiled = self.faults.compiled();
        let words = self.faults.cover_words();
        SimState {
            heap: BinaryHeap::with_capacity(messages * 2 + components),
            seq: 0,
            delivered: vec![false; messages],
            dropped: vec![false; messages],
            attempts: vec![0; messages],
            pred_left: vec![0; messages],
            dest_left: vec![0; compiled.dest_steps.len()],
            next_in_q: vec![NO_MSG; messages],
            q_head: vec![NO_MSG; components],
            q_tail: vec![NO_MSG; components],
            q_depth: vec![0; components],
            radio_busy: vec![false; components],
            overflow_at: vec![0; components],
            touched_overflow: Vec::new(),
            readings: vec![0.0; compiled.sources.len()],
            records: vec![None; compiled.unit_count],
            results: vec![None; compiled.dest_steps.len()],
            dest_done: vec![false; compiled.dest_steps.len()],
            unit_cover: vec![0; compiled.unit_count * words],
            cover: vec![0; compiled.dest_steps.len() * words],
            tmp_cover: vec![0; words],
            planes: m2m_telemetry::timeseries::NodePlanes::for_ids(
                self.faults.plane_universe().to_vec(),
            ),
        }
    }

    /// Folds one compiled op run against the current delivery state,
    /// also accumulating the run's source-coverage row in
    /// `st.tmp_cover`. Gate-open ops fold exactly like
    /// [`crate::exec::fold_ops`]; closed gates and empty upstream
    /// records are skipped like [`FaultyExec`]'s degraded fold.
    fn fold_step(
        &self,
        first_op: u32,
        op_count: u32,
        kind: AggregateKind,
        st: &mut SimState,
    ) -> Option<PartialRecord> {
        let compiled = self.faults.compiled();
        let op_gates = self.faults.op_gates();
        let words = self.faults.cover_words();
        st.tmp_cover.fill(0);
        let base = first_op as usize;
        let mut acc: Option<PartialRecord> = None;
        for (k, &gate) in op_gates
            .iter()
            .enumerate()
            .skip(base)
            .take(op_count as usize)
        {
            if !self.faults.gate_open_in(gate, &st.delivered) {
                continue;
            }
            let part = match compiled.ops.get(k) {
                Op::Pre { slot, alpha } => {
                    st.tmp_cover[slot as usize / 64] |= 1 << (slot % 64);
                    kind.pre_aggregate_weighted(alpha, st.readings[slot as usize])
                }
                Op::FromUnit { unit } => {
                    let src = unit as usize * words;
                    for w in 0..words {
                        st.tmp_cover[w] |= st.unit_cover[src + w];
                    }
                    match st.records[unit as usize] {
                        Some(r) => r,
                        None => continue,
                    }
                }
            };
            acc = Some(match acc {
                None => part,
                Some(prev) => kind.merge_records(prev, part),
            });
        }
        acc
    }

    /// A message's predecessors have all resolved: its node folds the
    /// record units it carries and the message joins the outbound FIFO.
    /// Returns the updated `(peak_depth, overflows)` accounting.
    fn ready(
        &self,
        m: u32,
        now: u64,
        st: &mut SimState,
        peak_depth: &mut u32,
        overflows: &mut u64,
    ) {
        let compiled = self.faults.compiled();
        let words = self.faults.cover_words();
        let lo = self.rstep_start[m as usize] as usize;
        let hi = self.rstep_start[m as usize + 1] as usize;
        for i in lo..hi {
            let step = &compiled.record_steps[self.rstep_pool[i] as usize];
            let acc = self.fold_step(step.first_op, step.op_count, step.kind, st);
            st.records[step.unit as usize] = acc;
            let dst = step.unit as usize * words;
            st.unit_cover[dst..dst + words].copy_from_slice(&st.tmp_cover);
        }
        // Enqueue on the sender's FIFO; wake the radio if idle.
        let comp = self.faults.message_facts()[m as usize].tail_slot as usize;
        st.next_in_q[m as usize] = NO_MSG;
        if st.q_tail[comp] == NO_MSG {
            st.q_head[comp] = m;
        } else {
            st.next_in_q[st.q_tail[comp] as usize] = m;
        }
        st.q_tail[comp] = m;
        st.q_depth[comp] += 1;
        *peak_depth = (*peak_depth).max(st.q_depth[comp]);
        if st.q_depth[comp] > self.params.queue_cap {
            *overflows += 1;
            if st.overflow_at[comp] == 0 {
                st.touched_overflow.push(comp as u32);
            }
            st.overflow_at[comp] += 1;
        }
        if !st.radio_busy[comp] {
            st.radio_busy[comp] = true;
            push_event(st, now + 1, EvKind::Tx(comp as u32));
        }
    }

    /// A destination's last inbound message resolved (or the deadline
    /// hit): evaluate its final fold and coverage row.
    fn finalize_dest(&self, i: usize, st: &mut SimState) {
        let compiled = self.faults.compiled();
        let words = self.faults.cover_words();
        let step = &compiled.dest_steps[i];
        let acc = self.fold_step(step.first_op, step.op_count, step.kind, st);
        st.results[i] = acc.map(|r| step.kind.evaluate_record(r));
        st.cover[i * words..(i + 1) * words].copy_from_slice(&st.tmp_cover);
        st.dest_done[i] = true;
    }

    /// A message resolved (delivered or lost): cascade readiness to its
    /// successors and finalize destinations whose inputs are complete.
    fn resolve(
        &self,
        m: u32,
        now: u64,
        st: &mut SimState,
        peak_depth: &mut u32,
        overflows: &mut u64,
    ) {
        let lo = self.succ_start[m as usize] as usize;
        let hi = self.succ_start[m as usize + 1] as usize;
        for i in lo..hi {
            let s = self.succ_pool[i];
            st.pred_left[s as usize] -= 1;
            if st.pred_left[s as usize] == 0 {
                self.ready(s, now, st, peak_depth, overflows);
            }
        }
        let lo = self.dstep_start[m as usize] as usize;
        let hi = self.dstep_start[m as usize + 1] as usize;
        for i in lo..hi {
            let d = self.dstep_pool[i] as usize;
            st.dest_left[d] -= 1;
            if st.dest_left[d] == 0 {
                self.finalize_dest(d, st);
            }
        }
    }

    /// Mirror of [`FaultyExec`]'s per-node plane fold, against the
    /// simulator's delivery state — same arithmetic, so plane totals
    /// reconcile with cost and the global counters exactly.
    fn update_planes(&self, st: &mut SimState) {
        for (m, msg) in self.faults.message_facts().iter().enumerate() {
            let attempts = u64::from(st.attempts[m]);
            if attempts == 0 {
                continue;
            }
            let tail = msg.tail_slot as usize;
            st.planes.record_tx(tail, attempts, msg.tx_uj);
            if st.delivered[m] {
                st.planes.record_rx(msg.head_slot as usize, msg.rx_uj);
                if attempts > 1 {
                    st.planes.record_retries(tail, attempts - 1);
                }
            } else {
                st.planes.record_retries(tail, attempts);
                if st.dropped[m] {
                    st.planes.record_drop(tail);
                }
            }
        }
        st.planes.add_rounds(1);
    }

    /// Runs one event-driven round over `readings` (dense, in
    /// [`CompiledSchedule::sources`] slot order), drawing losses from
    /// `model` at `(link, round_salt + tick)` coordinates.
    ///
    /// # Panics
    /// Panics if `readings` or `state` is sized for a different
    /// simulator.
    pub fn run(
        &self,
        readings: &[f64],
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        st: &mut SimState,
    ) -> SimOutcome {
        let _span = crate::telemetry::span(names::SIM_ROUND_NS);
        crate::telemetry::counter(names::SIM_ROUNDS, 1);
        let compiled = self.faults.compiled();
        assert_eq!(
            readings.len(),
            compiled.sources.len(),
            "reading vector length must match the interned source count"
        );
        assert_eq!(
            st.delivered.len(),
            self.message_count(),
            "state/simulator mismatch"
        );
        self.reset(st);
        st.readings.copy_from_slice(readings);

        let budget = u64::from(policy.max_slots);
        let latency = u64::from(self.params.latency);
        let mut events = 0u64;
        let mut now = 0u64;
        let mut retransmissions = 0usize;
        let mut dropped_count = 0usize;
        let mut peak_depth = 0u32;
        let mut overflows = 0u64;

        // Tick 0: source-local messages are ready immediately, and
        // destinations with purely local inputs finalize without any
        // traffic at all.
        for m in 0..self.message_count() as u32 {
            if self.init_preds[m as usize] == 0 {
                self.ready(m, 0, st, &mut peak_depth, &mut overflows);
            }
        }
        for i in 0..compiled.dest_steps.len() {
            if st.dest_left[i] == 0 && !st.dest_done[i] {
                self.finalize_dest(i, st);
            }
        }

        while let Some(std::cmp::Reverse(ev)) = st.heap.pop() {
            if ev.time > budget {
                now = budget;
                break;
            }
            now = ev.time;
            events += 1;
            match ev.kind {
                EvKind::Tx(comp) => {
                    let c = comp as usize;
                    let m = st.q_head[c];
                    if m == NO_MSG {
                        st.radio_busy[c] = false;
                        continue;
                    }
                    let msg = &self.faults.message_facts()[m as usize];
                    st.attempts[m as usize] += 1;
                    if model.is_down(msg.edge.0, msg.edge.1, round_salt.wrapping_add(now)) {
                        retransmissions += 1;
                        if policy.max_attempts > 0 && st.attempts[m as usize] >= policy.max_attempts
                        {
                            st.dropped[m as usize] = true;
                            dropped_count += 1;
                            pop_queue(st, c);
                            push_event(st, now + latency, EvKind::Lost(m));
                            push_event(st, now + 1, EvKind::Tx(comp));
                        } else {
                            push_event(
                                st,
                                now + 1 + u64::from(policy.backoff_slots),
                                EvKind::Tx(comp),
                            );
                        }
                    } else {
                        st.delivered[m as usize] = true;
                        pop_queue(st, c);
                        push_event(st, now + latency, EvKind::Deliver(m));
                        push_event(st, now + 1, EvKind::Tx(comp));
                    }
                }
                EvKind::Deliver(m) | EvKind::Lost(m) => {
                    self.resolve(m, now, st, &mut peak_depth, &mut overflows);
                }
            }
        }

        crate::telemetry::counter(names::SIM_EVENTS, events);
        crate::telemetry::counter(names::FAULTS_RETRANSMISSIONS, retransmissions as u64);
        crate::telemetry::counter(names::FAULTS_DROPPED_MESSAGES, dropped_count as u64);
        crate::telemetry::counter(names::SIM_QUEUE_OVERFLOWS, overflows);
        if m2m_telemetry::timeseries::obs_enabled() {
            self.update_planes(st);
        }

        // Deadline flush: destinations still pending fold from whatever
        // arrived — the event-clock analogue of running out of TDMA
        // slots. Delivery state is final (the wheel stopped), so gates
        // read exactly what the budgeted protocol knew.
        for i in 0..compiled.dest_steps.len() {
            if !st.dest_done[i] {
                self.finalize_dest(i, st);
            }
        }

        // Cost in message order (bit-identical to the static round when
        // lossless), link events, coverage — FaultOutcome semantics.
        let mut cost = RoundCost::default();
        for (m, msg) in self.faults.message_facts().iter().enumerate() {
            if st.attempts[m] > 0 {
                cost.tx_uj += msg.tx_uj * f64::from(st.attempts[m]);
            }
            if st.delivered[m] {
                cost.rx_uj += msg.rx_uj;
                cost.messages += 1;
                cost.units += msg.unit_count;
                cost.payload_bytes += u64::from(msg.body);
            }
        }
        let delivered_all = st.delivered.iter().all(|&d| d);
        let mut link_events: Vec<LinkEvent> = Vec::new();
        if retransmissions > 0 || dropped_count > 0 {
            for (m, msg) in self.faults.message_facts().iter().enumerate() {
                let failures = st.attempts[m] - u32::from(st.delivered[m]);
                if failures > 0 {
                    link_events.push(LinkEvent {
                        tail: msg.edge.0,
                        head: msg.edge.1,
                        failures,
                        dropped: st.dropped[m],
                    });
                }
            }
        }
        let words = self.faults.cover_words();
        if delivered_all {
            st.cover.copy_from_slice(self.faults.demanded_rows());
        }
        let demanded_rows = self.faults.demanded_rows();
        let demanded = self.faults.demanded_counts();
        let coverage: Vec<DestCoverage> = compiled
            .dest_steps
            .iter()
            .enumerate()
            .map(|(i, step)| {
                let row = &st.cover[i * words..(i + 1) * words];
                let demanded_row = &demanded_rows[i * words..(i + 1) * words];
                let covered: usize = row.iter().map(|w| w.count_ones() as usize).sum();
                let mut missing = Vec::new();
                if covered < demanded[i] {
                    for (w, (&have, &want)) in row.iter().zip(demanded_row).enumerate() {
                        let mut lost = want & !have;
                        while lost != 0 {
                            let bit = lost.trailing_zeros() as usize;
                            missing.push(compiled.sources.id(w * 64 + bit));
                            lost &= lost - 1;
                        }
                    }
                }
                DestCoverage {
                    destination: step.dest,
                    covered,
                    demanded: demanded[i],
                    missing,
                }
            })
            .collect();
        let degraded = coverage.iter().filter(|c| !c.complete()).count();
        crate::telemetry::counter(names::FAULTS_DEGRADED_DESTINATIONS, degraded as u64);

        let mut overflow_nodes: Vec<(NodeId, u32)> = st
            .touched_overflow
            .iter()
            .map(|&c| {
                (
                    NodeId(self.faults.plane_universe()[c as usize] as u32),
                    st.overflow_at[c as usize],
                )
            })
            .collect();
        overflow_nodes.sort_unstable_by_key(|&(n, _)| n);

        SimOutcome {
            outcome: FaultOutcome {
                results: st.results.clone(),
                coverage,
                cost,
                slots_used: now.min(u64::from(u32::MAX)) as u32,
                retransmissions,
                dropped_messages: dropped_count,
                delivered: delivered_all,
                link_events,
            },
            events,
            ticks: now,
            peak_queue_depth: peak_depth,
            queue_overflows: overflows,
            overflow_nodes,
        }
    }

    /// Like [`SimExec::run`] but taking readings keyed by node id.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_on(
        &self,
        readings: &std::collections::BTreeMap<NodeId, f64>,
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        st: &mut SimState,
    ) -> SimOutcome {
        let dense: Vec<f64> = self
            .faults
            .compiled()
            .sources
            .ids()
            .iter()
            .map(|s| {
                *readings
                    .get(s)
                    .unwrap_or_else(|| panic!("no reading for source {s}"))
            })
            .collect();
        self.run(&dense, model, policy, round_salt, st)
    }

    /// Rewinds `st` to a fresh round without releasing capacity.
    fn reset(&self, st: &mut SimState) {
        st.heap.clear();
        st.seq = 0;
        st.delivered.fill(false);
        st.dropped.fill(false);
        st.attempts.fill(0);
        st.pred_left.copy_from_slice(&self.init_preds);
        st.dest_left.copy_from_slice(&self.init_dest_preds);
        st.next_in_q.fill(NO_MSG);
        st.q_head.fill(NO_MSG);
        st.q_tail.fill(NO_MSG);
        st.q_depth.fill(0);
        st.radio_busy.fill(false);
        for &c in &st.touched_overflow {
            st.overflow_at[c as usize] = 0;
        }
        st.touched_overflow.clear();
        st.records.fill(None);
        st.results.fill(None);
        st.dest_done.fill(false);
        st.unit_cover.fill(0);
        st.cover.fill(0);
    }
}

/// Pushes an event with the next monotone sequence number.
#[inline]
fn push_event(st: &mut SimState, time: u64, kind: EvKind) {
    let ev = Ev {
        time,
        seq: st.seq,
        kind,
    };
    st.seq = st.seq.wrapping_add(1);
    st.heap.push(std::cmp::Reverse(ev));
}

/// Pops the queue head of component `c`.
#[inline]
fn pop_queue(st: &mut SimState, c: usize) {
    let head = st.q_head[c];
    debug_assert_ne!(head, NO_MSG, "pop from empty queue");
    let next = st.next_in_q[head as usize];
    st.q_head[c] = next;
    if next == NO_MSG {
        st.q_tail[c] = NO_MSG;
    }
    st.q_depth[c] -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggregateFunction, AggregateKind};
    use crate::exec::ExecState;
    use crate::plan::GlobalPlan;
    use crate::spec::AggregationSpec;
    use m2m_netsim::failure::FailureTrace;
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::new(
                AggregateKind::WeightedAverage,
                [
                    (NodeId(0), 1.0),
                    (NodeId(1), 2.0),
                    (NodeId(3), 0.5),
                    (NodeId(6), 1.5),
                ],
            ),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s
    }

    fn compile(net: &Network, spec: &AggregationSpec, mode: RoutingMode) -> CompiledSchedule {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        CompiledSchedule::compile(net, spec, &plan).unwrap()
    }

    fn dense_readings(compiled: &CompiledSchedule) -> Vec<f64> {
        compiled
            .sources()
            .ids()
            .iter()
            .map(|s| f64::from(s.0) * 1.25 - 3.0)
            .collect()
    }

    #[test]
    fn lossless_round_is_bit_identical_to_compiled() {
        let net = network();
        let spec = spec();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let compiled = compile(&net, &spec, mode);
            let sim = SimExec::new(&net, &compiled);
            let readings = dense_readings(&compiled);
            let mut state = ExecState::for_schedule(&compiled);
            state.readings_mut().copy_from_slice(&readings);
            let plain_cost = compiled.run_round(&mut state);
            let mut st = sim.state();
            for policy in [
                RetryPolicy::unlimited(10_000),
                RetryPolicy::bounded(1, 0, 10_000),
                RetryPolicy::bounded(3, 2, 10_000),
            ] {
                let out = sim.run(&readings, &DeliveryModel::reliable(), &policy, 42, &mut st);
                assert!(out.outcome.delivered);
                assert_eq!(out.outcome.retransmissions, 0);
                assert_eq!(out.queue_overflows, 0);
                assert_eq!(out.outcome.cost, plain_cost, "{mode:?}: bitwise cost");
                let exact: Vec<Option<f64>> = state.results().iter().map(|&r| Some(r)).collect();
                assert_eq!(out.outcome.results, exact, "{mode:?}: bitwise results");
                for c in &out.outcome.coverage {
                    assert!(c.complete());
                }
            }
        }
    }

    #[test]
    fn lossy_rounds_are_replayable_and_still_converge_unlimited() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::ShortestPathTrees);
        let sim = SimExec::new(&net, &compiled);
        let readings = dense_readings(&compiled);
        let model = DeliveryModel::uniform(0.3, 7);
        let policy = RetryPolicy::unlimited(100_000);
        let mut st = sim.state();
        let a = sim.run(&readings, &model, &policy, 5, &mut st);
        let b = sim.run(&readings, &model, &policy, 5, &mut st);
        assert_eq!(a, b, "seeded event rounds must replay bit-identically");
        assert!(a.outcome.delivered, "unlimited retries deliver everything");
        assert!(a.outcome.retransmissions > 0);
        assert!(a.events > 0 && a.ticks > 0);
    }

    #[test]
    fn a_dead_link_degrades_exactly_its_downstream_destinations() {
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(4),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(3), 1.0)]),
        );
        let compiled = compile(&net, &s, RoutingMode::ShortestPathTrees);
        let sim = SimExec::new(&net, &compiled);
        let trace = FailureTrace::new().down(NodeId(0), NodeId(1), 0, u64::MAX);
        let model = DeliveryModel::trace(trace);
        let readings = dense_readings(&compiled);
        let mut st = sim.state();
        let out = sim.run(
            &readings,
            &model,
            &RetryPolicy::bounded(3, 0, 1_000),
            0,
            &mut st,
        );
        assert!(!out.outcome.delivered);
        assert!(out.outcome.dropped_messages >= 1);
        let c = &out.outcome.coverage[0];
        assert_eq!(c.destination, NodeId(4));
        assert_eq!((c.covered, c.demanded), (1, 2));
        assert_eq!(c.missing, vec![NodeId(0)]);
        let idx = compiled.sources().slot(NodeId(3)).unwrap();
        assert_eq!(out.outcome.results[0], Some(readings[idx]));
    }

    #[test]
    fn queue_bound_accounting_never_changes_results() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::SharedSpanningTree);
        let readings = dense_readings(&compiled);
        let model = DeliveryModel::uniform(0.2, 3);
        let policy = RetryPolicy::bounded(4, 1, 100_000);
        let loose = SimExec::with_params(
            &net,
            &compiled,
            SimParams {
                queue_cap: 1_024,
                latency: 1,
            },
        );
        let tight = SimExec::with_params(
            &net,
            &compiled,
            SimParams {
                queue_cap: 1,
                latency: 1,
            },
        );
        let mut st_a = loose.state();
        let mut st_b = tight.state();
        let a = loose.run(&readings, &model, &policy, 11, &mut st_a);
        let b = tight.run(&readings, &model, &policy, 11, &mut st_b);
        assert_eq!(a.outcome, b.outcome, "the bound is accounting only");
        assert!(b.queue_overflows >= a.queue_overflows);
        assert_eq!(b.peak_queue_depth, a.peak_queue_depth);
    }

    #[test]
    fn latency_delays_ticks_but_not_results() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::ShortestPathTrees);
        let readings = dense_readings(&compiled);
        let policy = RetryPolicy::unlimited(100_000);
        let fast = SimExec::new(&net, &compiled);
        let slow = SimExec::with_params(
            &net,
            &compiled,
            SimParams {
                queue_cap: 64,
                latency: 5,
            },
        );
        let mut st_a = fast.state();
        let mut st_b = slow.state();
        let a = fast.run(&readings, &DeliveryModel::reliable(), &policy, 0, &mut st_a);
        let b = slow.run(&readings, &DeliveryModel::reliable(), &policy, 0, &mut st_b);
        assert_eq!(a.outcome.results, b.outcome.results);
        assert_eq!(a.outcome.cost, b.outcome.cost);
        assert!(b.ticks > a.ticks, "higher link latency stretches the clock");
    }
}
