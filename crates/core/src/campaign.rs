//! Multi-round campaigns: suppression with a *precision* contract.
//!
//! §3: linear aggregation functions "can be continuously maintained (up
//! to desired precision) using a variant of temporal suppression" — a
//! source transmits the accumulated change in its value only once it
//! exceeds a threshold. The destination's view then lags the truth by at
//! most the un-transmitted residuals, which for a linear function is
//! bounded by `Σ_s |∂f/∂v_s| · threshold`. This module simulates whole
//! campaigns — values drifting as random walks, thresholds suppressing
//! small changes, override policies shaping the traffic — and reports the
//! realized energy *and* the realized approximation error, asserting the
//! analytic bound along the way. This is the precision/energy trade-off
//! a deployment actually tunes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::agg::AggregateKind;
use crate::exec::{CompiledSchedule, ExecState};
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;
use crate::suppression::{OverridePolicy, StatePlacement, SuppressionSim};

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of rounds simulated.
    pub rounds: u32,
    /// Per-round probability that a source's physical value moves.
    pub change_probability: f64,
    /// Maximum per-round movement (uniform in `[-step, step]`).
    pub step: f64,
    /// Suppression threshold: a source transmits once its accumulated
    /// residual exceeds this.
    pub suppression_threshold: f64,
    /// Override policy for the transmitted rounds.
    pub policy: OverridePolicy,
    /// RNG seed.
    pub seed: u64,
}

/// What a campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Rounds simulated.
    pub rounds: u32,
    /// Total energy across the campaign.
    pub total: RoundCost,
    /// Source transmissions suppressed (source-rounds with a change that
    /// stayed under threshold).
    pub suppressed: usize,
    /// Source transmissions sent.
    pub transmitted: usize,
    /// Largest `|delivered − true|` over all rounds and destinations.
    pub max_abs_error: f64,
    /// Mean `|delivered − true|` over all rounds and destinations.
    pub mean_abs_error: f64,
    /// The analytic per-destination error bound
    /// `Σ_s |∂f/∂v_s| · threshold`, maximized over destinations.
    pub error_bound: f64,
}

/// The worst-case lag bound for one linear function under a threshold.
fn function_error_bound(spec: &AggregationSpec, d: NodeId, threshold: f64) -> f64 {
    let f = spec.function(d).expect("destination has a function");
    let n = f.source_count() as f64;
    f.sources()
        .map(|s| {
            let alpha = f.weight(s).expect("source has a weight").abs();
            match f.kind() {
                AggregateKind::WeightedSum => alpha,
                AggregateKind::WeightedAverage => alpha / n,
                other => unreachable!("campaigns require linear kinds, got {other:?}"),
            }
        })
        .sum::<f64>()
        * threshold
}

/// Runs a campaign. Functions must be delta-maintainable (weighted sum or
/// weighted average — checked by [`SuppressionSim::new`]).
///
/// Everything per-plan is compiled once up front — the suppression
/// executor's dense cost model and the [`CompiledSchedule`] used for the
/// error audit — so the per-round loop runs over flat arrays with no
/// schedule rebuilds and no map-keyed state.
pub fn run_campaign(
    network: &Network,
    spec: &AggregationSpec,
    routing: &RoutingTables,
    plan: &GlobalPlan,
    config: &CampaignConfig,
) -> CampaignReport {
    assert!(config.suppression_threshold >= 0.0);
    assert!((0.0..=1.0).contains(&config.change_probability));
    let sim = SuppressionSim::new(network, spec, routing, plan);
    let mut scratch = sim.scratch();
    let compiled =
        CompiledSchedule::compile(network, spec, plan).expect("plan must be schedulable");
    let mut believed_state = ExecState::for_schedule(&compiled);
    let mut actual_state = ExecState::for_schedule(&compiled);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Physical truth and the last value each source actually transmitted,
    // dense in ascending source order (== the sim's changed-mask slots).
    let sources = sim.sources().to_vec();
    let mut truth: Vec<f64> = vec![0.0; sources.len()];
    let mut transmitted_view: Vec<f64> = vec![0.0; sources.len()];
    // Compiled reading slot -> campaign source index.
    let slot_sources: Vec<usize> = compiled
        .sources()
        .ids()
        .iter()
        .map(|s| {
            sources
                .binary_search(s)
                .expect("every compiled source is a spec source")
        })
        .collect();

    let mut total = RoundCost::default();
    let mut suppressed = 0usize;
    let mut transmitted = 0usize;
    let mut max_err = 0.0f64;
    let mut err_sum = 0.0f64;
    let mut err_count = 0usize;

    for _ in 0..config.rounds {
        // Physical drift, in ascending source order (the RNG call
        // sequence of the original map-keyed implementation).
        for v in truth.iter_mut() {
            if rng.random_range(0.0..1.0) < config.change_probability {
                *v += rng.random_range(-config.step..config.step);
            }
        }
        // Suppression decision per source.
        let changed = scratch.changed_mask_mut();
        for (i, flag) in changed.iter_mut().enumerate() {
            let residual = truth[i] - transmitted_view[i];
            *flag = residual.abs() > config.suppression_threshold;
            if *flag {
                transmitted_view[i] = truth[i];
                transmitted += 1;
            } else if residual != 0.0 {
                suppressed += 1;
            }
        }
        total.accumulate(&sim.round_cost_prepared(
            config.policy,
            StatePlacement::TransitionOnly,
            &mut scratch,
        ));
        // Error audit: what each destination believes (the in-network
        // computation over the transmitted values) vs the same
        // computation over the truth. Both sides run the compiled
        // executor, so a zero threshold is *exactly* error-free.
        for (slot, &i) in slot_sources.iter().enumerate() {
            believed_state.readings_mut()[slot] = transmitted_view[i];
            actual_state.readings_mut()[slot] = truth[i];
        }
        compiled.run_round(&mut believed_state);
        compiled.run_round(&mut actual_state);
        for (believed, actual) in believed_state.results().iter().zip(actual_state.results()) {
            let err = (believed - actual).abs();
            max_err = max_err.max(err);
            err_sum += err;
            err_count += 1;
        }
    }

    let error_bound = spec
        .destinations()
        .map(|d| function_error_bound(spec, d, config.suppression_threshold))
        .fold(0.0f64, f64::max);

    crate::m2m_log!(
        crate::telemetry::Level::Debug,
        "campaign done: {} rounds, {transmitted} transmitted / {suppressed} suppressed, \
         max |err| {max_err:.3e} (bound {error_bound:.3e})",
        config.rounds
    );

    CampaignReport {
        rounds: config.rounds,
        total,
        suppressed,
        transmitted,
        max_abs_error: max_err,
        mean_abs_error: if err_count > 0 {
            err_sum / err_count as f64
        } else {
            0.0
        },
        error_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables, GlobalPlan) {
        let net = Network::with_default_energy(Deployment::great_duck_island(70));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, 9));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        (net, spec, routing, plan)
    }

    fn config(threshold: f64) -> CampaignConfig {
        CampaignConfig {
            rounds: 60,
            change_probability: 0.4,
            step: 1.0,
            suppression_threshold: threshold,
            policy: OverridePolicy::Medium,
            seed: 5,
        }
    }

    #[test]
    fn error_respects_the_analytic_bound() {
        let (net, spec, routing, plan) = setup();
        for threshold in [0.0, 0.5, 2.0] {
            let report = run_campaign(&net, &spec, &routing, &plan, &config(threshold));
            assert!(
                report.max_abs_error <= report.error_bound + 1e-9,
                "threshold {threshold}: error {} exceeds bound {}",
                report.max_abs_error,
                report.error_bound
            );
        }
    }

    #[test]
    fn zero_threshold_is_exact() {
        let (net, spec, routing, plan) = setup();
        let report = run_campaign(&net, &spec, &routing, &plan, &config(0.0));
        assert_eq!(report.max_abs_error, 0.0);
        assert_eq!(report.suppressed, 0);
    }

    #[test]
    fn higher_threshold_trades_energy_for_error() {
        let (net, spec, routing, plan) = setup();
        let tight = run_campaign(&net, &spec, &routing, &plan, &config(0.1));
        let loose = run_campaign(&net, &spec, &routing, &plan, &config(2.0));
        assert!(
            loose.total.total_uj() < tight.total.total_uj(),
            "looser threshold must transmit less"
        );
        assert!(loose.max_abs_error >= tight.max_abs_error);
        assert!(loose.suppressed > tight.suppressed);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let (net, spec, routing, plan) = setup();
        let a = run_campaign(&net, &spec, &routing, &plan, &config(0.5));
        let b = run_campaign(&net, &spec, &routing, &plan, &config(0.5));
        assert_eq!(a.total.total_uj(), b.total.total_uj());
        assert_eq!(a.max_abs_error, b.max_abs_error);
        assert_eq!(a.transmitted, b.transmitted);
    }

    #[test]
    fn still_values_cost_nothing() {
        let (net, spec, routing, plan) = setup();
        let mut cfg = config(0.5);
        cfg.change_probability = 0.0;
        let report = run_campaign(&net, &spec, &routing, &plan, &cfg);
        assert_eq!(report.total.total_uj(), 0.0);
        assert_eq!(report.transmitted, 0);
        assert_eq!(report.max_abs_error, 0.0);
    }
}
