//! Generalized algebraic aggregation functions (§2.1).
//!
//! The paper requires each destination's function `f_d` to decompose as
//! `f_d(v_1, …, v_n) = e_d(m_d({w_{d,s1}(v_1), …, w_{d,sn}(v_n)}))` where
//! the pre-aggregation functions `w_{d,s}` may transform *each input
//! differently* (this is the generalization over classic algebraic
//! aggregates — it is what admits weighted variants), the merging function
//! `m_d` is associative-commutative over partial aggregate records, and the
//! evaluator `e_d` produces the final value.
//!
//! Partial records are constant-size; their byte size (vs. the raw reading
//! size) is exactly what the vertex-cover weights in [`crate::edge_opt`]
//! trade off: e.g. for weighted sum both sides weigh one float, for
//! weighted average the destination side carries an extra count (§2.2).

use std::collections::BTreeMap;

use m2m_graph::NodeId;

/// Size in bytes of one raw sensor reading as transmitted on air. Motes
/// report readings as single-precision values.
pub const RAW_VALUE_BYTES: u32 = 4;

/// The family of built-in aggregation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggregateKind {
    /// `Σ α_s·v_s` — partial record: one float.
    WeightedSum,
    /// `(Σ α_s·v_s) / n` — partial record: float + count.
    WeightedAverage,
    /// Weighted population variance of `{α_s·v_s}` — partial record:
    /// sum + sum of squares + count.
    WeightedVariance,
    /// `min α_s·v_s` — partial record: one float.
    Min,
    /// `max α_s·v_s` — partial record: one float.
    Max,
    /// Number of contributing sources — partial record: one count. The
    /// partial record is *smaller* than a raw value, exercising the
    /// asymmetric-weight case of the cover reduction.
    Count,
    /// `max α_s·v_s − min α_s·v_s` — partial record: two floats. A
    /// record twice the raw size, biasing covers further toward raw
    /// multicast.
    Range,
    /// Weighted geometric mean `(Π v_s^{α_s})^(1/Σα_s)` over positive
    /// readings — algebraic in log space; partial record: log-sum +
    /// weight-sum.
    GeometricMean,
}

impl AggregateKind {
    /// On-air size of one partial aggregate record, in bytes.
    pub fn partial_record_bytes(self) -> u32 {
        match self {
            AggregateKind::WeightedSum | AggregateKind::Min | AggregateKind::Max => 4,
            AggregateKind::WeightedAverage => 6,
            AggregateKind::WeightedVariance => 10,
            AggregateKind::Count => 2,
            AggregateKind::Range | AggregateKind::GeometricMean => 8,
        }
    }

    /// True if changes to inputs can be folded in as deltas, i.e. the
    /// function can be maintained under temporal suppression (§3:
    /// "some types of aggregation functions can be continuously
    /// maintained"). Linear functions qualify; order statistics do not.
    pub fn supports_delta_maintenance(self) -> bool {
        matches!(
            self,
            AggregateKind::WeightedSum | AggregateKind::WeightedAverage
        )
    }

    /// The pre-aggregation function with the source weight `alpha` already
    /// resolved. [`AggregateFunction::pre_aggregate`] delegates here after
    /// its weight lookup, and the compiled executor
    /// ([`crate::exec::CompiledSchedule`]) calls it directly with weights
    /// resolved at compile time — both paths share this single arithmetic
    /// implementation, which is what makes them bit-identical.
    pub fn pre_aggregate_weighted(self, alpha: f64, value: f64) -> PartialRecord {
        let x = alpha * value;
        match self {
            AggregateKind::WeightedSum => PartialRecord::Sum(x),
            AggregateKind::WeightedAverage => PartialRecord::Avg { sum: x, count: 1 },
            AggregateKind::WeightedVariance => PartialRecord::Var {
                sum: x,
                sum_sq: x * x,
                count: 1,
            },
            AggregateKind::Min => PartialRecord::Min(x),
            AggregateKind::Max => PartialRecord::Max(x),
            AggregateKind::Count => PartialRecord::Count(1),
            AggregateKind::Range => PartialRecord::MinMax { min: x, max: x },
            AggregateKind::GeometricMean => {
                assert!(value > 0.0, "geometric mean requires positive readings");
                PartialRecord::LogSum {
                    log_sum: alpha * value.ln(),
                    weight_sum: alpha,
                }
            }
        }
    }

    /// The merging function `m_d` at the kind level.
    ///
    /// # Panics
    /// Panics if the records are of mismatched shapes for this kind.
    pub fn merge_records(self, a: PartialRecord, b: PartialRecord) -> PartialRecord {
        use PartialRecord as P;
        match (self, a, b) {
            (AggregateKind::WeightedSum, P::Sum(x), P::Sum(y)) => P::Sum(x + y),
            (
                AggregateKind::WeightedAverage,
                P::Avg { sum: x, count: a },
                P::Avg { sum: y, count: b },
            ) => P::Avg {
                sum: x + y,
                count: a + b,
            },
            (
                AggregateKind::WeightedVariance,
                P::Var {
                    sum: xs,
                    sum_sq: xq,
                    count: xc,
                },
                P::Var {
                    sum: ys,
                    sum_sq: yq,
                    count: yc,
                },
            ) => P::Var {
                sum: xs + ys,
                sum_sq: xq + yq,
                count: xc + yc,
            },
            (AggregateKind::Min, P::Min(x), P::Min(y)) => P::Min(x.min(y)),
            (AggregateKind::Max, P::Max(x), P::Max(y)) => P::Max(x.max(y)),
            (AggregateKind::Count, P::Count(x), P::Count(y)) => P::Count(x + y),
            (
                AggregateKind::Range,
                P::MinMax {
                    min: a_min,
                    max: a_max,
                },
                P::MinMax {
                    min: b_min,
                    max: b_max,
                },
            ) => P::MinMax {
                min: a_min.min(b_min),
                max: a_max.max(b_max),
            },
            (
                AggregateKind::GeometricMean,
                P::LogSum {
                    log_sum: xs,
                    weight_sum: xw,
                },
                P::LogSum {
                    log_sum: ys,
                    weight_sum: yw,
                },
            ) => P::LogSum {
                log_sum: xs + ys,
                weight_sum: xw + yw,
            },
            (kind, a, b) => panic!("cannot merge {a:?} and {b:?} under {kind:?}"),
        }
    }

    /// The evaluator `e_d` at the kind level.
    ///
    /// # Panics
    /// Panics if the record's shape does not match this kind.
    pub fn evaluate_record(self, record: PartialRecord) -> f64 {
        use PartialRecord as P;
        match (self, record) {
            (AggregateKind::WeightedSum, P::Sum(x)) => x,
            (AggregateKind::WeightedAverage, P::Avg { sum, count }) => sum / f64::from(count),
            (AggregateKind::WeightedVariance, P::Var { sum, sum_sq, count }) => {
                let n = f64::from(count);
                let mean = sum / n;
                (sum_sq / n - mean * mean).max(0.0)
            }
            (AggregateKind::Min, P::Min(x)) => x,
            (AggregateKind::Max, P::Max(x)) => x,
            (AggregateKind::Count, P::Count(c)) => f64::from(c),
            (AggregateKind::Range, P::MinMax { min, max }) => max - min,
            (
                AggregateKind::GeometricMean,
                P::LogSum {
                    log_sum,
                    weight_sum,
                },
            ) => (log_sum / weight_sum).exp(),
            (kind, r) => panic!("cannot evaluate {r:?} under {kind:?}"),
        }
    }
}

/// A partial aggregate record — the unit of in-network aggregation state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartialRecord {
    /// Running weighted sum.
    Sum(f64),
    /// Running weighted sum plus contribution count.
    Avg {
        /// Σ α_s·v_s so far.
        sum: f64,
        /// Number of contributions.
        count: u32,
    },
    /// Running moments for variance.
    Var {
        /// Σ x where x = α_s·v_s.
        sum: f64,
        /// Σ x².
        sum_sq: f64,
        /// Number of contributions.
        count: u32,
    },
    /// Running minimum.
    Min(f64),
    /// Running maximum.
    Max(f64),
    /// Running count.
    Count(u32),
    /// Running minimum and maximum (for range).
    MinMax {
        /// Smallest `α_s·v_s` so far.
        min: f64,
        /// Largest `α_s·v_s` so far.
        max: f64,
    },
    /// Running log-space sum for the geometric mean.
    LogSum {
        /// Σ α_s·ln(v_s).
        log_sum: f64,
        /// Σ α_s.
        weight_sum: f64,
    },
}

/// Maximum number of `f64` components a [`PartialRecord`] decomposes
/// into (variance: sum, sum of squares, count). The lane-batched
/// executor sizes its dense component planes by this.
pub(crate) const MAX_COMPONENTS: usize = 3;

/// The structure-of-arrays twin of [`PartialRecord`]: every record kind
/// is laid out as up to [`MAX_COMPONENTS`] `f64` components, and each
/// kind's pre-aggregate / merge / evaluate become straight-line
/// component arithmetic with **exactly** the same operations, in the
/// same order, as the enum methods above. That is the bit-identity
/// contract the lane-batched executor ([`crate::exec`]) relies on: a
/// lane is one round, and folding a lane through a [`LaneKernel`]
/// produces the same `f64` bits as folding the round through
/// [`AggregateKind::pre_aggregate_weighted`] /
/// [`AggregateKind::merge_records`] / [`AggregateKind::evaluate_record`].
///
/// Integer counts ride in an `f64` component: additions of small
/// integers are exact in `f64` (well below 2^53 here), and the enum
/// path's `f64::from(count)` conversion at evaluation time yields the
/// same value, so the bits agree. The `lane_kernels_match_enum_records`
/// test pins the contract for every kind.
pub(crate) trait LaneKernel {
    /// Components this kind actually uses (`<= MAX_COMPONENTS`).
    const COMPS: usize;
    /// Component form of [`AggregateKind::pre_aggregate_weighted`].
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64);
    /// Component form of [`AggregateKind::merge_records`].
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64);
    /// Component form of [`AggregateKind::evaluate_record`].
    fn eval(r: (f64, f64, f64)) -> f64;
}

/// [`LaneKernel`] for [`AggregateKind::WeightedSum`].
pub(crate) struct SumKernel;
/// [`LaneKernel`] for [`AggregateKind::WeightedAverage`].
pub(crate) struct AvgKernel;
/// [`LaneKernel`] for [`AggregateKind::WeightedVariance`].
pub(crate) struct VarKernel;
/// [`LaneKernel`] for [`AggregateKind::Min`].
pub(crate) struct MinKernel;
/// [`LaneKernel`] for [`AggregateKind::Max`].
pub(crate) struct MaxKernel;
/// [`LaneKernel`] for [`AggregateKind::Count`].
pub(crate) struct CountKernel;
/// [`LaneKernel`] for [`AggregateKind::Range`].
pub(crate) struct RangeKernel;
/// [`LaneKernel`] for [`AggregateKind::GeometricMean`].
pub(crate) struct GeoKernel;

impl LaneKernel for SumKernel {
    const COMPS: usize = 1;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        (alpha * value, 0.0, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, 0.0, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.0
    }
}

impl LaneKernel for AvgKernel {
    const COMPS: usize = 2;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        (alpha * value, 1.0, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, a.1 + b.1, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.0 / r.1
    }
}

impl LaneKernel for VarKernel {
    const COMPS: usize = 3;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        let x = alpha * value;
        (x, x * x, 1.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, a.1 + b.1, a.2 + b.2)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        let n = r.2;
        let mean = r.0 / n;
        (r.1 / n - mean * mean).max(0.0)
    }
}

impl LaneKernel for MinKernel {
    const COMPS: usize = 1;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        (alpha * value, 0.0, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0.min(b.0), 0.0, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.0
    }
}

impl LaneKernel for MaxKernel {
    const COMPS: usize = 1;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        (alpha * value, 0.0, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0.max(b.0), 0.0, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.0
    }
}

impl LaneKernel for CountKernel {
    const COMPS: usize = 1;
    #[inline(always)]
    fn pre(_alpha: f64, _value: f64) -> (f64, f64, f64) {
        (1.0, 0.0, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, 0.0, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.0
    }
}

impl LaneKernel for RangeKernel {
    const COMPS: usize = 2;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        let x = alpha * value;
        (x, x, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0.min(b.0), a.1.max(b.1), 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        r.1 - r.0
    }
}

impl LaneKernel for GeoKernel {
    const COMPS: usize = 2;
    #[inline(always)]
    fn pre(alpha: f64, value: f64) -> (f64, f64, f64) {
        assert!(value > 0.0, "geometric mean requires positive readings");
        (alpha * value.ln(), alpha, 0.0)
    }
    #[inline(always)]
    fn merge(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, a.1 + b.1, 0.0)
    }
    #[inline(always)]
    fn eval(r: (f64, f64, f64)) -> f64 {
        (r.0 / r.1).exp()
    }
}

/// Dispatches `$kind` to its [`LaneKernel`] type, binding it as `$K`
/// inside `$body`. This is the single point where the executor's
/// dynamic `AggregateKind` meets the monomorphized kernels: the match
/// runs once per op *run*, so the inner per-op, per-lane loops are
/// free of kind dispatch.
macro_rules! with_lane_kernel {
    ($kind:expr, $K:ident => $body:expr) => {
        match $kind {
            $crate::agg::AggregateKind::WeightedSum => {
                type $K = $crate::agg::SumKernel;
                $body
            }
            $crate::agg::AggregateKind::WeightedAverage => {
                type $K = $crate::agg::AvgKernel;
                $body
            }
            $crate::agg::AggregateKind::WeightedVariance => {
                type $K = $crate::agg::VarKernel;
                $body
            }
            $crate::agg::AggregateKind::Min => {
                type $K = $crate::agg::MinKernel;
                $body
            }
            $crate::agg::AggregateKind::Max => {
                type $K = $crate::agg::MaxKernel;
                $body
            }
            $crate::agg::AggregateKind::Count => {
                type $K = $crate::agg::CountKernel;
                $body
            }
            $crate::agg::AggregateKind::Range => {
                type $K = $crate::agg::RangeKernel;
                $body
            }
            $crate::agg::AggregateKind::GeometricMean => {
                type $K = $crate::agg::GeoKernel;
                $body
            }
        }
    };
}
pub(crate) use with_lane_kernel;

/// One destination's aggregation function: a kind plus per-source weights.
///
/// The weight map is also the source list — `s` is a source of this
/// function iff it has a weight (the paper's `s ∼ d` relation).
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateFunction {
    kind: AggregateKind,
    weights: BTreeMap<NodeId, f64>,
}

impl AggregateFunction {
    /// Creates a function of the given kind with per-source weights.
    ///
    /// # Panics
    /// Panics if no sources are given.
    pub fn new(kind: AggregateKind, weights: impl IntoIterator<Item = (NodeId, f64)>) -> Self {
        let weights: BTreeMap<NodeId, f64> = weights.into_iter().collect();
        assert!(
            !weights.is_empty(),
            "an aggregation function needs at least one source"
        );
        AggregateFunction { kind, weights }
    }

    /// Weighted-sum convenience constructor.
    pub fn weighted_sum(weights: impl IntoIterator<Item = (NodeId, f64)>) -> Self {
        Self::new(AggregateKind::WeightedSum, weights)
    }

    /// Weighted-average convenience constructor.
    pub fn weighted_average(weights: impl IntoIterator<Item = (NodeId, f64)>) -> Self {
        Self::new(AggregateKind::WeightedAverage, weights)
    }

    /// The function kind.
    #[inline]
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// The sources of this function, ascending.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.weights.keys().copied()
    }

    /// Number of sources.
    #[inline]
    pub fn source_count(&self) -> usize {
        self.weights.len()
    }

    /// True if `s` contributes to this function.
    pub fn has_source(&self, s: NodeId) -> bool {
        self.weights.contains_key(&s)
    }

    /// The weight `α_s`, if `s` is a source.
    pub fn weight(&self, s: NodeId) -> Option<f64> {
        self.weights.get(&s).copied()
    }

    /// Adds (or updates) a source weight. Used by dynamic adaptation.
    pub fn set_weight(&mut self, s: NodeId, weight: f64) {
        self.weights.insert(s, weight);
    }

    /// Removes a source; returns true if it was present. The caller must
    /// keep at least one source (checked).
    ///
    /// # Panics
    /// Panics if removing the last source.
    pub fn remove_source(&mut self, s: NodeId) -> bool {
        let removed = self.weights.remove(&s).is_some();
        assert!(
            !self.weights.is_empty(),
            "cannot remove the last source of an aggregation function"
        );
        removed
    }

    /// On-air size of one partial aggregate record for this function.
    #[inline]
    pub fn partial_record_bytes(&self) -> u32 {
        self.kind.partial_record_bytes()
    }

    /// The pre-aggregation function `w_{d,s}`: transforms a raw reading
    /// into a partial aggregate record specific to this destination.
    ///
    /// # Panics
    /// Panics if `s` is not a source of this function.
    pub fn pre_aggregate(&self, s: NodeId, value: f64) -> PartialRecord {
        let alpha = self
            .weights
            .get(&s)
            .unwrap_or_else(|| panic!("{s} is not a source of this function"));
        self.kind.pre_aggregate_weighted(*alpha, value)
    }

    /// The merging function `m_d`: combines two partial records.
    ///
    /// # Panics
    /// Panics if the records are of mismatched shapes for this kind.
    pub fn merge(&self, a: PartialRecord, b: PartialRecord) -> PartialRecord {
        self.kind.merge_records(a, b)
    }

    /// The evaluator `e_d`: produces the final aggregate from a complete
    /// partial record.
    pub fn evaluate(&self, record: PartialRecord) -> f64 {
        self.kind.evaluate_record(record)
    }

    /// Direct (out-of-network) computation of the function over readings —
    /// the ground truth every in-network execution is checked against.
    ///
    /// # Panics
    /// Panics if a source is missing from `readings`.
    pub fn reference_result(&self, readings: &BTreeMap<NodeId, f64>) -> f64 {
        let mut acc: Option<PartialRecord> = None;
        for &s in self.weights.keys() {
            let v = *readings
                .get(&s)
                .unwrap_or_else(|| panic!("no reading for source {s}"));
            let p = self.pre_aggregate(s, v);
            acc = Some(match acc {
                None => p,
                Some(prev) => self.merge(prev, p),
            });
        }
        self.evaluate(acc.expect("at least one source"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn readings(pairs: &[(u32, f64)]) -> BTreeMap<NodeId, f64> {
        pairs.iter().map(|&(n, v)| (NodeId(n), v)).collect()
    }

    #[test]
    fn weighted_sum_end_to_end() {
        let f = AggregateFunction::weighted_sum([(NodeId(1), 2.0), (NodeId(2), -1.0)]);
        let r = readings(&[(1, 3.0), (2, 4.0)]);
        assert!((f.reference_result(&r) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_matches_paper_example() {
        // §2.1's worked example: f(v_1..v_n) = (1/n)·Σ α_i v_i with
        // w_i(x) = ⟨α_i x, 1⟩, m({⟨x,a⟩,⟨y,b⟩}) = ⟨x+y, a+b⟩, e(⟨x,a⟩)=x/a.
        let f = AggregateFunction::weighted_average([
            (NodeId(1), 1.0),
            (NodeId(2), 2.0),
            (NodeId(3), 3.0),
        ]);
        let r = readings(&[(1, 10.0), (2, 10.0), (3, 10.0)]);
        // (10 + 20 + 30) / 3 = 20.
        assert!((f.reference_result(&r) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let f = AggregateFunction::new(
            AggregateKind::WeightedVariance,
            [(NodeId(1), 1.0), (NodeId(2), 1.0), (NodeId(3), 1.0)],
        );
        let parts: Vec<PartialRecord> = [(NodeId(1), 2.0), (NodeId(2), 5.0), (NodeId(3), 11.0)]
            .iter()
            .map(|&(s, v)| f.pre_aggregate(s, v))
            .collect();
        let left = f.merge(f.merge(parts[0], parts[1]), parts[2]);
        let right = f.merge(parts[0], f.merge(parts[1], parts[2]));
        assert_eq!(left, right);
    }

    #[test]
    fn variance_matches_direct_formula() {
        let f = AggregateFunction::new(
            AggregateKind::WeightedVariance,
            [
                (NodeId(1), 1.0),
                (NodeId(2), 1.0),
                (NodeId(3), 1.0),
                (NodeId(4), 1.0),
            ],
        );
        let r = readings(&[(1, 2.0), (2, 4.0), (3, 4.0), (4, 6.0)]);
        // mean 4, squared deviations {4,0,0,4} → variance 2.
        assert!((f.reference_result(&r) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_merge_order_and_respect_weights() {
        let f = AggregateFunction::new(AggregateKind::Min, [(NodeId(1), -1.0), (NodeId(2), 1.0)]);
        let r = readings(&[(1, 5.0), (2, 3.0)]);
        // α·v values: {-5, 3} → min -5.
        assert!((f.reference_result(&r) + 5.0).abs() < 1e-12);
        let g = AggregateFunction::new(AggregateKind::Max, [(NodeId(1), -1.0), (NodeId(2), 1.0)]);
        assert!((g.reference_result(&r) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn count_partial_is_smaller_than_raw() {
        assert!(AggregateKind::Count.partial_record_bytes() < RAW_VALUE_BYTES);
        let f = AggregateFunction::new(
            AggregateKind::Count,
            [(NodeId(1), 1.0), (NodeId(2), 1.0), (NodeId(3), 1.0)],
        );
        let r = readings(&[(1, 9.0), (2, 9.0), (3, 9.0)]);
        assert_eq!(f.reference_result(&r), 3.0);
    }

    #[test]
    fn range_tracks_spread_of_weighted_values() {
        let f = AggregateFunction::new(
            AggregateKind::Range,
            [(NodeId(1), 1.0), (NodeId(2), 2.0), (NodeId(3), 1.0)],
        );
        let r = readings(&[(1, 5.0), (2, 1.0), (3, -3.0)]);
        // Weighted values {5, 2, -3} → range 8.
        assert!((f.reference_result(&r) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn range_merge_is_associative() {
        let f = AggregateFunction::new(
            AggregateKind::Range,
            [(NodeId(1), 1.0), (NodeId(2), 1.0), (NodeId(3), 1.0)],
        );
        let parts: Vec<PartialRecord> = [(NodeId(1), 4.0), (NodeId(2), -1.0), (NodeId(3), 7.0)]
            .iter()
            .map(|&(s, v)| f.pre_aggregate(s, v))
            .collect();
        let left = f.merge(f.merge(parts[0], parts[1]), parts[2]);
        let right = f.merge(parts[0], f.merge(parts[1], parts[2]));
        assert_eq!(left, right);
    }

    #[test]
    fn geometric_mean_matches_direct_formula() {
        let f = AggregateFunction::new(
            AggregateKind::GeometricMean,
            [(NodeId(1), 1.0), (NodeId(2), 1.0)],
        );
        let r = readings(&[(1, 4.0), (2, 9.0)]);
        // sqrt(4 · 9) = 6.
        assert!((f.reference_result(&r) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_geometric_mean_respects_weights() {
        let f = AggregateFunction::new(
            AggregateKind::GeometricMean,
            [(NodeId(1), 3.0), (NodeId(2), 1.0)],
        );
        let r = readings(&[(1, 2.0), (2, 16.0)]);
        // (2³·16)^(1/4) = 128^0.25 ≈ 3.3636.
        let expected = 128f64.powf(0.25);
        assert!((f.reference_result(&r) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive readings")]
    fn geometric_mean_rejects_nonpositive() {
        let f = AggregateFunction::new(AggregateKind::GeometricMean, [(NodeId(1), 1.0)]);
        f.pre_aggregate(NodeId(1), -1.0);
    }

    #[test]
    fn record_sizes_match_paper_reasoning() {
        // "for weighted sum, source and destination weights would be equal
        //  … but for weighted average, destinations would weigh more" (§2.2)
        assert_eq!(
            AggregateKind::WeightedSum.partial_record_bytes(),
            RAW_VALUE_BYTES
        );
        assert!(AggregateKind::WeightedAverage.partial_record_bytes() > RAW_VALUE_BYTES);
    }

    #[test]
    fn delta_maintenance_support() {
        assert!(AggregateKind::WeightedSum.supports_delta_maintenance());
        assert!(AggregateKind::WeightedAverage.supports_delta_maintenance());
        assert!(!AggregateKind::Min.supports_delta_maintenance());
        assert!(!AggregateKind::WeightedVariance.supports_delta_maintenance());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_function_rejected() {
        AggregateFunction::weighted_sum(std::iter::empty::<(NodeId, f64)>());
    }

    #[test]
    #[should_panic(expected = "not a source")]
    fn pre_aggregate_unknown_source_panics() {
        let f = AggregateFunction::weighted_sum([(NodeId(1), 1.0)]);
        f.pre_aggregate(NodeId(9), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn mismatched_merge_panics() {
        let f = AggregateFunction::weighted_sum([(NodeId(1), 1.0)]);
        f.merge(PartialRecord::Sum(1.0), PartialRecord::Count(1));
    }

    /// The component form of a record, with the same `0.0` filler the
    /// lane kernels leave in unused components.
    fn components(r: PartialRecord) -> (f64, f64, f64) {
        use PartialRecord as P;
        match r {
            P::Sum(x) | P::Min(x) | P::Max(x) => (x, 0.0, 0.0),
            P::Avg { sum, count } => (sum, f64::from(count), 0.0),
            P::Var { sum, sum_sq, count } => (sum, sum_sq, f64::from(count)),
            P::Count(c) => (f64::from(c), 0.0, 0.0),
            P::MinMax { min, max } => (min, max, 0.0),
            P::LogSum {
                log_sum,
                weight_sum,
            } => (log_sum, weight_sum, 0.0),
        }
    }

    fn bits(t: (f64, f64, f64)) -> (u64, u64, u64) {
        (t.0.to_bits(), t.1.to_bits(), t.2.to_bits())
    }

    #[test]
    fn lane_kernels_match_enum_records_bit_for_bit() {
        // The contract the lane-batched executor rests on: for every
        // kind, folding weighted inputs through the LaneKernel produces
        // the same f64 bits — at every intermediate component and at the
        // final evaluation — as folding them through the PartialRecord
        // enum methods.
        let inputs = [
            (1.0, 3.75),
            (2.5, 0.125),
            (-1.5, 7.0),
            (0.3, 19.25),
            (4.0, 0.011),
        ];
        // GeometricMean demands alpha-weighted positive readings.
        let geo_inputs = [(1.0, 3.75), (2.5, 0.125), (1.5, 7.0), (0.3, 19.25)];
        for kind in [
            AggregateKind::WeightedSum,
            AggregateKind::WeightedAverage,
            AggregateKind::WeightedVariance,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Count,
            AggregateKind::Range,
            AggregateKind::GeometricMean,
        ] {
            let inputs: &[(f64, f64)] = if kind == AggregateKind::GeometricMean {
                &geo_inputs
            } else {
                &inputs
            };
            with_lane_kernel!(kind, K => {
                const { assert!(K::COMPS <= MAX_COMPONENTS) };
                let mut enum_acc: Option<PartialRecord> = None;
                let mut lane_acc = (0.0, 0.0, 0.0);
                for (i, &(alpha, v)) in inputs.iter().enumerate() {
                    let part = kind.pre_aggregate_weighted(alpha, v);
                    let lane_part = K::pre(alpha, v);
                    assert_eq!(bits(components(part)), bits(lane_part), "{kind:?} pre");
                    enum_acc = Some(match enum_acc {
                        None => part,
                        Some(prev) => kind.merge_records(prev, part),
                    });
                    lane_acc = if i == 0 {
                        lane_part
                    } else {
                        K::merge(lane_acc, lane_part)
                    };
                    assert_eq!(
                        bits(components(enum_acc.unwrap())),
                        bits(lane_acc),
                        "{kind:?} merge step {i}"
                    );
                }
                let enum_eval = kind.evaluate_record(enum_acc.unwrap());
                assert_eq!(
                    enum_eval.to_bits(),
                    K::eval(lane_acc).to_bits(),
                    "{kind:?} eval"
                );
            });
        }
    }
}
