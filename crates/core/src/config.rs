//! Typed runtime configuration: one entry point for every knob the
//! workspace used to read straight out of the environment.
//!
//! Historically `M2M_THREADS`, `M2M_TRACE`, `M2M_TRACE_OUT`, and `M2M_LOG`
//! were each parsed at their point of use (`parallel`, the telemetry
//! facade, the bench bins). [`Config`] centralizes them — plus the
//! fault-pipeline knobs (`M2M_RETRIES`, `M2M_BACKOFF`, `M2M_MAX_SLOTS`,
//! `M2M_HYSTERESIS`) and the observability knobs (`M2M_OBS`,
//! `M2M_OBS_EVERY`, `M2M_OBS_CAP`) — behind a builder:
//!
//! ```
//! use m2m_core::config::Config;
//! let cfg = Config::builder().threads(2).retries(3).build();
//! assert_eq!(cfg.resolved_threads(), 2);
//! assert_eq!(cfg.retry_policy().max_attempts, 3);
//! ```
//!
//! The environment variables remain the *defaults*: [`Config::from_env`]
//! (and therefore [`Config::builder`], which starts from it) reads them,
//! so existing scripts keep working unchanged. Library code that needs
//! the process-wide configuration goes through [`global`], a lazily
//! initialized snapshot; embedders that want explicit control call
//! [`install`] before first use.

use std::sync::OnceLock;

use crate::faults::RetryPolicy;
use crate::telemetry::Level;

/// Environment variable pinning the worker count (see [`crate::parallel`]).
pub const THREADS_ENV: &str = "M2M_THREADS";
/// Environment variable enabling telemetry collection (`1`/`true`/…).
pub const TRACE_ENV: &str = "M2M_TRACE";
/// Environment variable naming the telemetry snapshot output file.
pub const TRACE_OUT_ENV: &str = "M2M_TRACE_OUT";
/// Environment variable setting the log threshold (`off`…`trace`).
pub const LOG_ENV: &str = "M2M_LOG";
/// Environment variable bounding transmission attempts per message
/// (`0` = unlimited retries).
pub const RETRIES_ENV: &str = "M2M_RETRIES";
/// Environment variable adding backoff slots after a failed attempt.
pub const BACKOFF_ENV: &str = "M2M_BACKOFF";
/// Environment variable bounding the slots a fault-tolerant round may use.
pub const MAX_SLOTS_ENV: &str = "M2M_MAX_SLOTS";
/// Environment variable setting the relative ETX-drift threshold past
/// which the churn driver recomputes routes.
pub const HYSTERESIS_ENV: &str = "M2M_HYSTERESIS";
/// Environment variable pinning the executor lane width (one of
/// [`crate::exec::SUPPORTED_LANE_WIDTHS`]).
pub const LANES_ENV: &str = "M2M_LANES";
/// Environment variable enabling the observability layer (per-node
/// planes, flight recorder, stage spans; `1`/`true`/…).
pub const OBS_ENV: &str = m2m_telemetry::timeseries::OBS_ENV;
/// Environment variable setting the flight-recorder sampling stride:
/// record every Nth round's series point (events are never strided).
pub const OBS_EVERY_ENV: &str = "M2M_OBS_EVERY";
/// Environment variable bounding the flight recorder's ring capacities
/// (series points and events each keep at most this many entries).
pub const OBS_CAP_ENV: &str = "M2M_OBS_CAP";
/// Environment variable setting the event-driven simulator's per-node
/// outbound queue bound (overflow accounting threshold).
pub const SIM_QUEUE_ENV: &str = "M2M_SIM_QUEUE";
/// Environment variable setting the event-driven simulator's per-link
/// delivery latency in ticks.
pub const SIM_LATENCY_ENV: &str = "M2M_SIM_LATENCY";
/// Environment variable selecting the execution engine
/// [`crate::session::Session::run`] dispatches to
/// (`compiled` | `lossy` | `sim`).
pub const RUNTIME_ENV: &str = "M2M_RUNTIME";

/// The execution engine a [`crate::session::Session`] round runs on.
///
/// Historically the session exposed one method family per engine
/// (`run_round` / `run_round_lossy` / `run_round_sim`); the engine is
/// now a configuration axis and [`crate::session::Session::run`]
/// dispatches on it, returning one unified
/// [`crate::session::RoundReport`] shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Runtime {
    /// The compiled allocation-free executor over reliable links — the
    /// steady-state fast path, bit-identical to the reference oracle.
    #[default]
    Compiled,
    /// The loss-aware slotted executor ([`crate::faults::FaultyExec`]):
    /// seeded per-link loss, bounded retransmission, coverage
    /// accounting. Advances the session's replayable salt stream.
    Lossy,
    /// The discrete-event per-node simulator ([`crate::sim::SimExec`]):
    /// the same loss semantics on an event wheel with bounded queues.
    /// Shares the salt stream with [`Runtime::Lossy`].
    Sim,
}

impl Runtime {
    /// Parses an `M2M_RUNTIME`-style name, case-insensitively.
    pub fn parse(v: &str) -> Option<Runtime> {
        match v.trim().to_ascii_lowercase().as_str() {
            "compiled" => Some(Runtime::Compiled),
            "lossy" => Some(Runtime::Lossy),
            "sim" => Some(Runtime::Sim),
            _ => None,
        }
    }

    /// The canonical lowercase name (`parse(name)` round-trips).
    pub fn name(self) -> &'static str {
        match self {
            Runtime::Compiled => "compiled",
            Runtime::Lossy => "lossy",
            Runtime::Sim => "sim",
        }
    }
}

/// Default for [`Config::retries`] when `M2M_RETRIES` is unset.
pub const DEFAULT_RETRIES: u32 = 8;
/// Default for [`Config::max_slots`] when `M2M_MAX_SLOTS` is unset.
pub const DEFAULT_MAX_SLOTS: u32 = 10_000;
/// Default for [`Config::hysteresis`] when `M2M_HYSTERESIS` is unset.
pub const DEFAULT_HYSTERESIS: f64 = 0.25;
/// Default for [`Config::obs_every`] when `M2M_OBS_EVERY` is unset.
pub const DEFAULT_OBS_EVERY: u64 = 1;
/// Default for [`Config::obs_cap`] when `M2M_OBS_CAP` is unset.
pub const DEFAULT_OBS_CAP: usize = 4096;
/// Default for [`Config::sim_queue`] when `M2M_SIM_QUEUE` is unset.
pub const DEFAULT_SIM_QUEUE: u32 = 64;
/// Default for [`Config::sim_latency`] when `M2M_SIM_LATENCY` is unset.
pub const DEFAULT_SIM_LATENCY: u32 = 1;

/// A resolved runtime configuration. Construct with [`Config::from_env`]
/// or [`Config::builder`]; read through the accessors.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    threads: Option<usize>,
    trace: bool,
    trace_out: Option<String>,
    log: Level,
    retries: u32,
    backoff_slots: u32,
    max_slots: u32,
    hysteresis: f64,
    lanes: usize,
    obs: bool,
    obs_every: u64,
    obs_cap: usize,
    sim_queue: u32,
    sim_latency: u32,
    runtime: Runtime,
}

impl Config {
    /// Reads every knob from the environment, falling back to the
    /// documented defaults. This is exactly the configuration the
    /// scattered `std::env::var` call sites used to assemble implicitly.
    pub fn from_env() -> Self {
        let parse_u32 = |name: &str, default: u32| -> u32 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .unwrap_or(default)
        };
        Config {
            threads: std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0),
            trace: std::env::var(TRACE_ENV).is_ok_and(|v| parse_bool(&v)),
            trace_out: std::env::var(TRACE_OUT_ENV).ok().filter(|p| !p.is_empty()),
            log: std::env::var(LOG_ENV)
                .ok()
                .and_then(|v| Level::parse(&v))
                .unwrap_or(Level::Off),
            retries: parse_u32(RETRIES_ENV, DEFAULT_RETRIES),
            backoff_slots: parse_u32(BACKOFF_ENV, 0),
            max_slots: parse_u32(MAX_SLOTS_ENV, DEFAULT_MAX_SLOTS).max(1),
            hysteresis: std::env::var(HYSTERESIS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|h| h.is_finite() && *h >= 0.0)
                .unwrap_or(DEFAULT_HYSTERESIS),
            lanes: std::env::var(LANES_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|w| crate::exec::SUPPORTED_LANE_WIDTHS.contains(w))
                .unwrap_or(crate::exec::DEFAULT_LANE_WIDTH),
            obs: std::env::var(OBS_ENV).is_ok_and(|v| parse_bool(&v)),
            obs_every: std::env::var(OBS_EVERY_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_OBS_EVERY),
            obs_cap: std::env::var(OBS_CAP_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_OBS_CAP),
            sim_queue: parse_u32(SIM_QUEUE_ENV, DEFAULT_SIM_QUEUE).max(1),
            sim_latency: parse_u32(SIM_LATENCY_ENV, DEFAULT_SIM_LATENCY).max(1),
            runtime: std::env::var(RUNTIME_ENV)
                .ok()
                .and_then(|v| Runtime::parse(&v))
                .unwrap_or_default(),
        }
    }

    /// A builder seeded from [`Config::from_env`], so explicit settings
    /// override the environment and everything else keeps its env-derived
    /// default.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::from_env(),
        }
    }

    /// The pinned worker count, if any (`None` = auto-detect).
    #[inline]
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The worker count plan builds and epoch fan-outs should use: the
    /// pinned count if set, otherwise the machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Whether telemetry collection is on.
    #[inline]
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Where to write the telemetry snapshot, if anywhere.
    #[inline]
    pub fn trace_out(&self) -> Option<&str> {
        self.trace_out.as_deref()
    }

    /// The log threshold.
    #[inline]
    pub fn log(&self) -> Level {
        self.log
    }

    /// Maximum transmission attempts per message (`0` = unlimited).
    #[inline]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Extra wait slots after a failed attempt.
    #[inline]
    pub fn backoff_slots(&self) -> u32 {
        self.backoff_slots
    }

    /// Slot budget per fault-tolerant round.
    #[inline]
    pub fn max_slots(&self) -> u32 {
        self.max_slots
    }

    /// Relative ETX-drift threshold for the churn driver.
    #[inline]
    pub fn hysteresis(&self) -> f64 {
        self.hysteresis
    }

    /// Executor lane width for batched epoch runs (one of
    /// [`crate::exec::SUPPORTED_LANE_WIDTHS`]; results are bit-identical
    /// at every width, so this is purely a throughput knob).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether the observability layer (per-node planes, flight
    /// recorder, stage spans) is on.
    #[inline]
    pub fn obs(&self) -> bool {
        self.obs
    }

    /// Flight-recorder sampling stride: every Nth round gets a series
    /// point (structured events are recorded regardless of stride).
    #[inline]
    pub fn obs_every(&self) -> u64 {
        self.obs_every
    }

    /// Ring capacity for the flight recorder's series and event buffers.
    #[inline]
    pub fn obs_cap(&self) -> usize {
        self.obs_cap
    }

    /// Per-node outbound queue bound for the event-driven simulator
    /// (pushes past it are counted as overflow, never dropped).
    #[inline]
    pub fn sim_queue(&self) -> u32 {
        self.sim_queue
    }

    /// Per-link delivery latency of the event-driven simulator, in ticks.
    #[inline]
    pub fn sim_latency(&self) -> u32 {
        self.sim_latency
    }

    /// The execution engine [`crate::session::Session::run`] dispatches
    /// to (overridable per session via
    /// [`crate::session::SessionBuilder::runtime`]).
    #[inline]
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The simulator knobs as [`crate::sim::SimParams`].
    pub fn sim_params(&self) -> crate::sim::SimParams {
        crate::sim::SimParams {
            queue_cap: self.sim_queue,
            latency: self.sim_latency,
        }
    }

    /// The retry/backoff/budget knobs as a [`RetryPolicy`] for the
    /// fault-tolerant executor.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.retries,
            backoff_slots: self.backoff_slots,
            max_slots: self.max_slots,
        }
    }

    /// Pushes the telemetry knobs into the process-wide facade:
    /// collection on/off and the log threshold. Does **not** write any
    /// file — see [`Config::export_telemetry`].
    pub fn apply(&self) {
        crate::telemetry::set_enabled(self.trace);
        crate::telemetry::set_log_threshold(self.log);
        m2m_telemetry::timeseries::set_obs_enabled(self.obs);
    }

    /// Writes the current telemetry snapshot to [`Config::trace_out`]
    /// (if configured), returning the path written. The config-driven
    /// counterpart of [`crate::telemetry::export_if_requested`].
    pub fn export_telemetry(&self) -> Option<String> {
        let path = self.trace_out.clone()?;
        std::fs::write(&path, crate::telemetry::snapshot().to_json().render()).ok()?;
        Some(path)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

fn parse_bool(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "on"
    )
}

/// Builder for [`Config`]; see [`Config::builder`].
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Pins the worker count (must be positive).
    ///
    /// # Panics
    /// Panics if `n == 0` (use auto-detection by not calling this).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        self.config.threads = Some(n);
        self
    }

    /// Turns telemetry collection on or off.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Sets the telemetry snapshot output path.
    #[must_use]
    pub fn trace_out(mut self, path: impl Into<String>) -> Self {
        self.config.trace_out = Some(path.into());
        self
    }

    /// Sets the log threshold.
    #[must_use]
    pub fn log(mut self, level: Level) -> Self {
        self.config.log = level;
        self
    }

    /// Bounds transmission attempts per message (`0` = unlimited).
    #[must_use]
    pub fn retries(mut self, attempts: u32) -> Self {
        self.config.retries = attempts;
        self
    }

    /// Adds backoff slots after each failed attempt.
    #[must_use]
    pub fn backoff_slots(mut self, slots: u32) -> Self {
        self.config.backoff_slots = slots;
        self
    }

    /// Bounds the slots a fault-tolerant round may use.
    ///
    /// # Panics
    /// Panics if `slots == 0` (a round needs at least one slot).
    #[must_use]
    pub fn max_slots(mut self, slots: u32) -> Self {
        assert!(slots > 0, "slot budget must be positive");
        self.config.max_slots = slots;
        self
    }

    /// Sets the relative ETX-drift threshold for the churn driver.
    ///
    /// # Panics
    /// Panics unless `h` is finite and non-negative.
    #[must_use]
    pub fn hysteresis(mut self, h: f64) -> Self {
        assert!(
            h.is_finite() && h >= 0.0,
            "hysteresis must be finite and >= 0"
        );
        self.config.hysteresis = h;
        self
    }

    /// Sets the executor lane width for batched epoch runs.
    ///
    /// # Panics
    /// Panics unless `width` is one of
    /// [`crate::exec::SUPPORTED_LANE_WIDTHS`].
    #[must_use]
    pub fn lanes(mut self, width: usize) -> Self {
        assert!(
            crate::exec::SUPPORTED_LANE_WIDTHS.contains(&width),
            "unsupported lane width {width} (supported: {:?})",
            crate::exec::SUPPORTED_LANE_WIDTHS
        );
        self.config.lanes = width;
        self
    }

    /// Turns the observability layer on or off.
    #[must_use]
    pub fn obs(mut self, on: bool) -> Self {
        self.config.obs = on;
        self
    }

    /// Sets the flight-recorder sampling stride (record every Nth
    /// round's series point).
    ///
    /// # Panics
    /// Panics if `every == 0` (stride 1 records every round).
    #[must_use]
    pub fn obs_every(mut self, every: u64) -> Self {
        assert!(every > 0, "obs stride must be positive");
        self.config.obs_every = every;
        self
    }

    /// Bounds the flight recorder's series and event ring capacities.
    ///
    /// # Panics
    /// Panics if `cap == 0` (the recorder needs at least one slot).
    #[must_use]
    pub fn obs_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "obs ring capacity must be positive");
        self.config.obs_cap = cap;
        self
    }

    /// Bounds the simulator's per-node outbound queue.
    ///
    /// # Panics
    /// Panics if `depth == 0` (a radio needs at least one queue slot).
    #[must_use]
    pub fn sim_queue(mut self, depth: u32) -> Self {
        assert!(depth > 0, "sim queue bound must be positive");
        self.config.sim_queue = depth;
        self
    }

    /// Sets the simulator's per-link delivery latency in ticks.
    ///
    /// # Panics
    /// Panics if `ticks == 0` (delivery takes at least one tick).
    #[must_use]
    pub fn sim_latency(mut self, ticks: u32) -> Self {
        assert!(ticks > 0, "sim latency must be positive");
        self.config.sim_latency = ticks;
        self
    }

    /// Selects the execution engine [`crate::session::Session::run`]
    /// dispatches to.
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.config.runtime = runtime;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Config {
        self.config
    }
}

static GLOBAL: OnceLock<Config> = OnceLock::new();

/// The process-wide configuration: the installed one, or a lazily read
/// [`Config::from_env`] snapshot. Library call sites (the worker pool,
/// session defaults) read through here, so one `install` governs them all.
pub fn global() -> &'static Config {
    GLOBAL.get_or_init(Config::from_env)
}

/// Installs `config` as the process-wide configuration and applies its
/// telemetry knobs. Returns `Err(config)` if a global was already
/// installed (or lazily initialized) — first write wins, matching the
/// facade's first-read-wins env semantics.
pub fn install(config: Config) -> Result<(), Config> {
    config.apply();
    GLOBAL.set(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_and_defaults() {
        let cfg = Config::builder()
            .threads(3)
            .trace(true)
            .retries(2)
            .backoff_slots(4)
            .max_slots(77)
            .hysteresis(0.5)
            .log(Level::Warn)
            .obs(true)
            .obs_every(10)
            .obs_cap(128)
            .build();
        assert_eq!(cfg.threads(), Some(3));
        assert_eq!(cfg.resolved_threads(), 3);
        assert!(cfg.trace());
        assert_eq!(cfg.log(), Level::Warn);
        let policy = cfg.retry_policy();
        assert_eq!(policy.max_attempts, 2);
        assert_eq!(policy.backoff_slots, 4);
        assert_eq!(policy.max_slots, 77);
        assert_eq!(cfg.hysteresis(), 0.5);
        assert!(cfg.obs());
        assert_eq!(cfg.obs_every(), 10);
        assert_eq!(cfg.obs_cap(), 128);
        let sim = Config::builder().sim_queue(7).sim_latency(3).build();
        assert_eq!(sim.sim_queue(), 7);
        assert_eq!(sim.sim_latency(), 3);
        assert_eq!(
            sim.sim_params(),
            crate::sim::SimParams {
                queue_cap: 7,
                latency: 3
            }
        );
    }

    #[test]
    fn env_free_defaults_are_sane() {
        // The test environment does not set the fault knobs, so from_env
        // must land on the documented defaults.
        let cfg = Config::from_env();
        assert_eq!(cfg.retries(), DEFAULT_RETRIES);
        assert_eq!(cfg.backoff_slots(), 0);
        assert_eq!(cfg.max_slots(), DEFAULT_MAX_SLOTS);
        assert_eq!(cfg.hysteresis(), DEFAULT_HYSTERESIS);
        assert_eq!(cfg.lanes(), crate::exec::DEFAULT_LANE_WIDTH);
        assert!(cfg.resolved_threads() >= 1);
        assert!(!cfg.obs());
        assert_eq!(cfg.obs_every(), DEFAULT_OBS_EVERY);
        assert_eq!(cfg.obs_cap(), DEFAULT_OBS_CAP);
        assert_eq!(cfg.sim_queue(), DEFAULT_SIM_QUEUE);
        assert_eq!(cfg.sim_latency(), DEFAULT_SIM_LATENCY);
    }

    #[test]
    #[should_panic(expected = "obs stride must be positive")]
    fn zero_obs_stride_rejected() {
        let _ = Config::builder().obs_every(0);
    }

    #[test]
    #[should_panic(expected = "obs ring capacity must be positive")]
    fn zero_obs_cap_rejected() {
        let _ = Config::builder().obs_cap(0);
    }

    #[test]
    fn lanes_accepts_every_supported_width() {
        for w in crate::exec::SUPPORTED_LANE_WIDTHS {
            assert_eq!(Config::builder().lanes(w).build().lanes(), w);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported lane width")]
    fn odd_lane_width_rejected() {
        let _ = Config::builder().lanes(3);
    }

    #[test]
    fn default_is_from_env() {
        assert_eq!(Config::default(), Config::from_env());
    }

    #[test]
    fn runtime_knob_defaults_parses_and_round_trips() {
        // The test environment does not set M2M_RUNTIME.
        assert_eq!(Config::from_env().runtime(), Runtime::Compiled);
        for rt in [Runtime::Compiled, Runtime::Lossy, Runtime::Sim] {
            assert_eq!(Runtime::parse(rt.name()), Some(rt));
            assert_eq!(Config::builder().runtime(rt).build().runtime(), rt);
        }
        assert_eq!(Runtime::parse(" SIM "), Some(Runtime::Sim));
        assert_eq!(Runtime::parse("interpreted"), None);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let _ = Config::builder().threads(0);
    }

    #[test]
    fn global_is_stable_across_reads() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
    }
}
