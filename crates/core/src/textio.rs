//! Plain-text persistence for deployments and workloads.
//!
//! Experiments need to be shareable and re-runnable: this module writes
//! and parses a simple line-oriented format (no external dependencies),
//! so a deployment + workload pair can be checked into a repository,
//! attached to a bug report, or fed to the `scenario` CLI.
//!
//! ```text
//! # m2m v1
//! deployment 106 203 50
//! node 0 12.5 88.25
//! node 1 47 191.0
//! function 5 weighted_average
//! source 5 0 1.5
//! source 5 1 0.75
//! ```
//!
//! Lines: `deployment W H RANGE`, `node ID X Y` (ordered, dense ids),
//! `function DEST KIND`, `source DEST SRC WEIGHT` (after its function).
//! Blank lines and `#` comments are ignored.

use std::fmt::Write as _;

use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Position};

use crate::agg::{AggregateFunction, AggregateKind};
use crate::spec::AggregationSpec;

/// Serializes a deployment and workload to the text format.
pub fn to_text(deployment: &Deployment, spec: &AggregationSpec) -> String {
    let mut out = String::from("# m2m v1\n");
    let _ = writeln!(
        out,
        "deployment {} {} {}",
        deployment.width_m(),
        deployment.height_m(),
        deployment.radio_range_m()
    );
    for (i, p) in deployment.positions().iter().enumerate() {
        let _ = writeln!(out, "node {i} {} {}", p.x, p.y);
    }
    for (d, f) in spec.functions() {
        let _ = writeln!(out, "function {} {}", d.0, kind_name(f.kind()));
        for s in f.sources() {
            let _ = writeln!(out, "source {} {} {}", d.0, s.0, f.weight(s).unwrap());
        }
    }
    out
}

/// Parses the text format back into a deployment and workload.
pub fn from_text(text: &str) -> Result<(Deployment, AggregationSpec), String> {
    /// A function under construction while parsing.
    type PendingFunction = (NodeId, AggregateKind, Vec<(NodeId, f64)>);
    let mut dims: Option<(f64, f64, f64)> = None;
    let mut positions: Vec<Position> = Vec::new();
    let mut functions: Vec<PendingFunction> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        let ctx = |what: &str| format!("line {}: {what}", lineno + 1);
        match keyword {
            "deployment" => {
                let mut f = || -> Result<f64, String> {
                    parts
                        .next()
                        .ok_or_else(|| ctx("deployment needs W H RANGE"))?
                        .parse()
                        .map_err(|e| ctx(&format!("bad number: {e}")))
                };
                dims = Some((f()?, f()?, f()?));
            }
            "node" => {
                let id: usize = parts
                    .next()
                    .ok_or_else(|| ctx("node needs ID X Y"))?
                    .parse()
                    .map_err(|e| ctx(&format!("bad id: {e}")))?;
                if id != positions.len() {
                    return Err(ctx(&format!(
                        "node ids must be dense and ordered; expected {}, got {id}",
                        positions.len()
                    )));
                }
                let mut f = || -> Result<f64, String> {
                    parts
                        .next()
                        .ok_or_else(|| ctx("node needs ID X Y"))?
                        .parse()
                        .map_err(|e| ctx(&format!("bad coordinate: {e}")))
                };
                positions.push(Position::new(f()?, f()?));
            }
            "function" => {
                let d: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("function needs DEST KIND"))?
                    .parse()
                    .map_err(|e| ctx(&format!("bad destination: {e}")))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| ctx("function needs DEST KIND"))
                    .and_then(|k| parse_kind(k).ok_or_else(|| ctx(&format!("unknown kind {k}"))))?;
                functions.push((NodeId(d), kind, Vec::new()));
            }
            "source" => {
                let d: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("source needs DEST SRC WEIGHT"))?
                    .parse()
                    .map_err(|e| ctx(&format!("bad destination: {e}")))?;
                let s: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("source needs DEST SRC WEIGHT"))?
                    .parse()
                    .map_err(|e| ctx(&format!("bad source: {e}")))?;
                let w: f64 = parts
                    .next()
                    .ok_or_else(|| ctx("source needs DEST SRC WEIGHT"))?
                    .parse()
                    .map_err(|e| ctx(&format!("bad weight: {e}")))?;
                let entry = functions
                    .iter_mut()
                    .rev()
                    .find(|(dest, _, _)| *dest == NodeId(d))
                    .ok_or_else(|| ctx(&format!("source before function for {d}")))?;
                entry.2.push((NodeId(s), w));
            }
            other => return Err(ctx(&format!("unknown keyword {other}"))),
        }
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
    }

    let (w, h, range) = dims.ok_or("missing deployment line")?;
    if positions.is_empty() {
        return Err("no nodes".into());
    }
    let deployment = Deployment::from_positions(positions, w, h, range);
    let mut spec = AggregationSpec::new();
    for (d, kind, sources) in functions {
        if sources.is_empty() {
            return Err(format!("function {d} has no sources"));
        }
        if d.index() >= deployment.node_count() {
            return Err(format!("function destination {d} out of range"));
        }
        for (s, _) in &sources {
            if s.index() >= deployment.node_count() {
                return Err(format!("source {s} out of range"));
            }
        }
        spec.add_function(d, AggregateFunction::new(kind, sources));
    }
    Ok((deployment, spec))
}

fn kind_name(kind: AggregateKind) -> &'static str {
    match kind {
        AggregateKind::WeightedSum => "weighted_sum",
        AggregateKind::WeightedAverage => "weighted_average",
        AggregateKind::WeightedVariance => "weighted_variance",
        AggregateKind::Min => "min",
        AggregateKind::Max => "max",
        AggregateKind::Count => "count",
        AggregateKind::Range => "range",
        AggregateKind::GeometricMean => "geometric_mean",
    }
}

fn parse_kind(name: &str) -> Option<AggregateKind> {
    Some(match name {
        "weighted_sum" => AggregateKind::WeightedSum,
        "weighted_average" => AggregateKind::WeightedAverage,
        "weighted_variance" => AggregateKind::WeightedVariance,
        "min" => AggregateKind::Min,
        "max" => AggregateKind::Max,
        "count" => AggregateKind::Count,
        "range" => AggregateKind::Range,
        "geometric_mean" => AggregateKind::GeometricMean,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::Network;

    #[test]
    fn round_trip_preserves_everything() {
        let deployment = Deployment::great_duck_island(7);
        let net = Network::with_default_energy(deployment.clone());
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(9, 7, 3));
        let text = to_text(&deployment, &spec);
        let (d2, s2) = from_text(&text).expect("round trip parses");
        assert_eq!(d2.positions(), deployment.positions());
        assert_eq!(d2.radio_range_m(), deployment.radio_range_m());
        assert_eq!(s2.destination_count(), spec.destination_count());
        for (d, f) in spec.functions() {
            let g = s2.function(d).expect("function survives");
            assert_eq!(g.kind(), f.kind());
            assert_eq!(
                g.sources().collect::<Vec<_>>(),
                f.sources().collect::<Vec<_>>()
            );
            for s in f.sources() {
                assert_eq!(g.weight(s), f.weight(s));
            }
        }
    }

    #[test]
    fn every_kind_round_trips() {
        for kind in [
            AggregateKind::WeightedSum,
            AggregateKind::WeightedAverage,
            AggregateKind::WeightedVariance,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Count,
            AggregateKind::Range,
            AggregateKind::GeometricMean,
        ] {
            assert_eq!(parse_kind(kind_name(kind)), Some(kind));
        }
        assert_eq!(parse_kind("median"), None);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "\n# hello\ndeployment 10 10 5\nnode 0 1 1\n\nnode 1 2 2\n\
                    function 0 min\nsource 0 1 1.0\n";
        let (d, s) = from_text(text).unwrap();
        assert_eq!(d.node_count(), 2);
        assert_eq!(s.destination_count(), 1);
    }

    #[test]
    fn helpful_errors() {
        assert!(from_text("").unwrap_err().contains("missing deployment"));
        assert!(from_text("deployment 1 1 1\n")
            .unwrap_err()
            .contains("no nodes"));
        let gap = "deployment 1 1 1\nnode 1 0 0\n";
        assert!(from_text(gap).unwrap_err().contains("dense"));
        let orphan = "deployment 1 1 1\nnode 0 0 0\nsource 0 0 1.0\n";
        assert!(from_text(orphan).unwrap_err().contains("before function"));
        let badkind = "deployment 1 1 1\nnode 0 0 0\nfunction 0 median\n";
        assert!(from_text(badkind).unwrap_err().contains("unknown kind"));
        let oob = "deployment 1 1 1\nnode 0 0 0\nfunction 5 min\nsource 5 0 1.0\n";
        assert!(from_text(oob).unwrap_err().contains("out of range"));
        let trailing = "deployment 1 1 1 9\n";
        assert!(from_text(trailing).unwrap_err().contains("trailing"));
    }

    #[test]
    fn parsed_workload_is_plannable() {
        let deployment = Deployment::great_duck_island(7);
        let net = Network::with_default_energy(deployment.clone());
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(6, 6, 9));
        let (d2, s2) = from_text(&to_text(&deployment, &spec)).unwrap();
        let net2 = Network::with_default_energy(d2);
        let routing = m2m_netsim::RoutingTables::build(
            &net2,
            &s2.source_to_destinations(),
            m2m_netsim::RoutingMode::ShortestPathTrees,
        );
        let plan = crate::plan::GlobalPlan::build(&net2, &s2, &routing);
        plan.validate(&s2, &routing).unwrap();
    }
}
