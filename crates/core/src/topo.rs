//! Interned topology snapshot: the dense index layer under the planner.
//!
//! Every stage of the Theorem 1 pipeline — per-edge problem building,
//! the parallel solve fan-out, the §2.3 raw-availability repair sweep,
//! the Corollary 1 memo, incremental maintenance, scheduling, and the
//! compiled executor — operates on the *same* set of demanded directed
//! edges: the edges that appear on some routing path from a source to a
//! destination that actually demands it. Historically each stage
//! re-derived that set into its own `BTreeMap<DirectedEdge, _>`;
//! [`Topology::snapshot`] derives it once per `(spec, routing)` pair and
//! assigns every node and edge a dense index, so downstream stages store
//! flat slabs in [`EdgeIdx`] order and look edges up in O(1) instead of
//! O(log n) pointer-chasing.
//!
//! A snapshot is immutable. It is invalidated — meaning a new one must
//! be taken — whenever the routing tables change or the spec's
//! source→destination demand structure changes; weight-only spec changes
//! keep it valid. [`crate::dynamics::PlanMaintainer`] snapshots per
//! install and diffs old-vs-new through the edge lookup table.
//!
//! ## Ordering invariant
//!
//! The edge slab is sorted ascending by `(tail, head)`, so iterating
//! solutions in [`EdgeIdx`] order is *exactly* the iteration order of the
//! old `BTreeMap<DirectedEdge, _>` planner state. Every bit-identity
//! argument in `plan`/`schedule`/`exec` leans on this.

use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::RoutingTables;

use crate::edge_opt::DirectedEdge;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::spec::AggregationSpec;

/// Dense index of a node within a [`Topology`] snapshot.
///
/// Indexes the snapshot's sorted node slab; `NodeIdx` order equals
/// [`NodeId`] order within one snapshot. Indices are meaningless across
/// snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The index as a `usize`, for slab addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of a directed edge within a [`Topology`] snapshot.
///
/// Indexes the snapshot's sorted edge slab; `EdgeIdx` order equals
/// `(tail, head)` lexicographic order within one snapshot. Indices are
/// meaningless across snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIdx(pub u32);

impl EdgeIdx {
    /// The index as a `usize`, for slab addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One demanded destination of a tree plus its route, pre-resolved to
/// edge indices and interned path suffixes.
///
/// `hops[k]` is the `k`-th edge on the route from the tree's source to
/// `destination`, paired with the route's remaining node suffix *after*
/// that edge's tail (head through destination inclusive) — exactly the
/// suffix an [`crate::edge_opt::AggGroup`] on that edge carries. Empty
/// `hops` means the source aggregates for itself (`s == d`).
#[derive(Clone, Debug)]
pub struct DestPath {
    destination: NodeId,
    hops: Vec<(EdgeIdx, Arc<[NodeId]>)>,
}

impl DestPath {
    /// The demanded destination this path leads to.
    #[inline]
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The route as `(edge, remaining-suffix)` pairs, source-outward.
    #[inline]
    pub fn hops(&self) -> &[(EdgeIdx, Arc<[NodeId]>)] {
        &self.hops
    }
}

/// CSR adjacency for the demanded portion of one source's multicast
/// tree, plus the per-destination routes through it.
#[derive(Clone, Debug)]
pub struct TreeTopo {
    source: NodeId,
    /// Demanded tree nodes, parents strictly before children;
    /// `order[0]` is the source.
    order: Vec<NodeIdx>,
    /// CSR offsets into `children`; length `order.len() + 1`.
    child_start: Vec<u32>,
    /// Flat child lists: `(position in order, connecting edge)`.
    children: Vec<(u32, EdgeIdx)>,
    dest_paths: Vec<DestPath>,
}

impl TreeTopo {
    /// The tree's source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Demanded tree nodes in parent-before-child order.
    #[inline]
    pub fn order(&self) -> &[NodeIdx] {
        &self.order
    }

    /// Children of the node at position `pos` in [`Self::order`], each
    /// as `(child position, tree edge into the child)`.
    #[inline]
    pub fn children_of(&self, pos: u32) -> &[(u32, EdgeIdx)] {
        let lo = self.child_start[pos as usize] as usize;
        let hi = self.child_start[pos as usize + 1] as usize;
        &self.children[lo..hi]
    }

    /// The demanded destinations and their routes, in the routing
    /// table's destination order (ascending).
    #[inline]
    pub fn dest_paths(&self) -> &[DestPath] {
        &self.dest_paths
    }
}

/// The interned topology: sorted node/edge slabs with O(1) edge lookup
/// and per-tree CSR adjacency, snapshotted once per `(spec, routing)`.
///
/// Only *demanded* structure is interned: a tree appears only if its
/// source has at least one reachable demanded destination, and an edge
/// appears only if some demanded `(source, destination)` route crosses
/// it. This is precisely the edge set the planner solves (the old
/// `BTreeMap` builders skipped undemanded edges the same way).
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<NodeId>,
    edges: Vec<DirectedEdge>,
    edge_lookup: FxHashMap<DirectedEdge, EdgeIdx>,
    trees: Vec<TreeTopo>,
    sources: Vec<NodeId>,
    slab_bytes: usize,
}

impl Topology {
    /// Snapshots the demanded topology of `(spec, routing)`.
    ///
    /// Walks each routing tree's destinations (ascending source, then
    /// ascending destination), keeping only destinations the spec
    /// actually demands from that source, and interns every node and
    /// directed edge on the surviving routes.
    pub fn snapshot(spec: &AggregationSpec, routing: &RoutingTables) -> Topology {
        // Pass 1: walk every demanded route once through a single reused
        // path buffer (routes are re-walked from the forest in pass 2
        // instead of being materialized as one `Vec<NodeId>` each).
        let mut demanded_by_tree: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        let mut path: Vec<NodeId> = Vec::new();
        let mut edges: Vec<DirectedEdge> = Vec::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        for (s, tree) in routing.trees() {
            let mut demanded: Vec<NodeId> = Vec::new();
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                assert!(
                    tree.write_path_to(d, &mut path),
                    "tree spans its destinations by construction"
                );
                nodes.extend_from_slice(&path);
                edges.extend(path.windows(2).map(|h| (h[0], h[1])));
                demanded.push(d);
            }
            if !demanded.is_empty() {
                demanded_by_tree.push((s, demanded));
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        edges.sort_unstable();
        edges.dedup();
        let edge_lookup: FxHashMap<DirectedEdge, EdgeIdx> = edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, EdgeIdx(i as u32)))
            .collect();
        let node_idx_of = |id: NodeId| -> NodeIdx {
            NodeIdx(nodes.binary_search(&id).expect("interned node") as u32)
        };

        // Pass 2: per-tree CSR plus resolved destination routes. Path
        // suffixes are interned across the whole snapshot so every edge
        // problem and schedule lookup shares one allocation per distinct
        // remaining route.
        let mut suffixes: FxHashSet<Arc<[NodeId]>> = FxHashSet::default();
        let mut suffix_bytes = 0usize;
        let mut intern = |tail: &[NodeId]| -> Arc<[NodeId]> {
            if let Some(existing) = suffixes.get(tail) {
                Arc::clone(existing)
            } else {
                let arc: Arc<[NodeId]> = tail.into();
                suffix_bytes += std::mem::size_of_val(tail);
                suffixes.insert(Arc::clone(&arc));
                arc
            }
        };
        let mut trees = Vec::with_capacity(demanded_by_tree.len());
        let mut sources = Vec::with_capacity(demanded_by_tree.len());
        for (s, demanded) in demanded_by_tree {
            sources.push(s);
            let tree = routing.tree(s).expect("tree existed in pass 1");
            let mut order: Vec<NodeIdx> = vec![node_idx_of(s)];
            let mut pos_of: FxHashMap<NodeId, u32> = FxHashMap::default();
            pos_of.insert(s, 0);
            let mut child_lists: Vec<Vec<(u32, EdgeIdx)>> = vec![Vec::new()];
            let mut dest_paths = Vec::with_capacity(demanded.len());
            for d in demanded {
                assert!(tree.write_path_to(d, &mut path), "route existed in pass 1");
                let mut hops = Vec::with_capacity(path.len().saturating_sub(1));
                for idx in 0..path.len().saturating_sub(1) {
                    let (tail, head) = (path[idx], path[idx + 1]);
                    let edge_idx = edge_lookup[&(tail, head)];
                    hops.push((edge_idx, intern(&path[idx + 1..])));
                    let parent = pos_of[&tail];
                    if let std::collections::hash_map::Entry::Vacant(slot) = pos_of.entry(head) {
                        let pos = order.len() as u32;
                        slot.insert(pos);
                        order.push(node_idx_of(head));
                        child_lists.push(Vec::new());
                        child_lists[parent as usize].push((pos, edge_idx));
                    }
                }
                dest_paths.push(DestPath {
                    destination: d,
                    hops,
                });
            }
            let mut child_start = Vec::with_capacity(order.len() + 1);
            let mut children = Vec::new();
            child_start.push(0);
            for list in &child_lists {
                children.extend_from_slice(list);
                child_start.push(children.len() as u32);
            }
            trees.push(TreeTopo {
                source: s,
                order,
                child_start,
                children,
                dest_paths,
            });
        }

        let tree_bytes: usize = trees
            .iter()
            .map(|t| {
                t.order.len() * std::mem::size_of::<NodeIdx>()
                    + t.child_start.len() * std::mem::size_of::<u32>()
                    + t.children.len() * std::mem::size_of::<(u32, EdgeIdx)>()
                    + t.dest_paths
                        .iter()
                        .map(|dp| {
                            std::mem::size_of::<NodeId>()
                                + dp.hops.len() * std::mem::size_of::<(EdgeIdx, Arc<[NodeId]>)>()
                        })
                        .sum::<usize>()
            })
            .sum();
        let slab_bytes = nodes.len() * std::mem::size_of::<NodeId>()
            + edges.len() * std::mem::size_of::<DirectedEdge>()
            + edge_lookup.len() * std::mem::size_of::<(DirectedEdge, EdgeIdx)>()
            + sources.len() * std::mem::size_of::<NodeId>()
            + tree_bytes
            + suffix_bytes;

        Topology {
            nodes,
            edges,
            edge_lookup,
            trees,
            sources,
            slab_bytes,
        }
    }

    /// Resident bytes of the snapshot's slabs (node/edge slabs, lookup
    /// table, per-tree CSR, destination routes, interned suffixes) —
    /// the scaling benchmark's per-stage memory column.
    #[inline]
    pub fn slab_bytes(&self) -> usize {
        self.slab_bytes
    }

    /// The interned nodes, ascending.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The demanded directed edges, ascending by `(tail, head)`.
    #[inline]
    pub fn edges(&self) -> &[DirectedEdge] {
        &self.edges
    }

    /// Number of demanded directed edges (the slab length every
    /// per-edge stage shares).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// O(1) lookup of a directed edge's dense index; `None` if the edge
    /// is not demanded in this snapshot.
    #[inline]
    pub fn edge_idx(&self, edge: DirectedEdge) -> Option<EdgeIdx> {
        self.edge_lookup.get(&edge).copied()
    }

    /// The directed edge at a dense index.
    #[inline]
    pub fn edge(&self, idx: EdgeIdx) -> DirectedEdge {
        self.edges[idx.index()]
    }

    /// The node at a dense index.
    #[inline]
    pub fn node(&self, idx: NodeIdx) -> NodeId {
        self.nodes[idx.index()]
    }

    /// Per-source demanded trees, ascending by source.
    #[inline]
    pub fn trees(&self) -> &[TreeTopo] {
        &self.trees
    }

    /// Sources with at least one demanded destination, ascending —
    /// exactly the sources whose readings the executor needs.
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The `(source, destination)` pairs this snapshot was demanded for,
    /// sorted ascending. A spec matches this topology exactly when its
    /// own pair set (every destination of every function, per source)
    /// equals this one — the check [`crate::session::SessionBuilder`]
    /// runs before reusing a caller-supplied substrate.
    pub fn demanded_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .trees
            .iter()
            .flat_map(|tree| {
                tree.dest_paths()
                    .iter()
                    .map(move |dp| (tree.source(), dp.destination()))
            })
            .collect();
        pairs.sort_unstable();
        pairs
    }
}

/// A growable fixed-stride bitset for dirty tracking over dense indices
/// ([`EdgeIdx`] in the maintainer, destination ids in the memo).
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty bitset pre-sized for indices `0..len`.
    pub fn with_capacity(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Sets bit `i` (growing as needed); returns `true` if newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Clears every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::spec::AggregationSpec;
    use m2m_netsim::{Deployment, Network, RoutingMode};

    fn demo() -> (Network, AggregationSpec, RoutingTables) {
        let network = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 15.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(0),
            AggregateFunction::weighted_sum([
                (NodeId(5), 1.0),
                (NodeId(10), 1.0),
                (NodeId(15), 1.0),
            ]),
        );
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(5), 1.0), (NodeId(12), 1.0)]),
        );
        let routing = RoutingTables::build(
            &network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        (network, spec, routing)
    }

    #[test]
    fn edge_slab_is_sorted_and_lookup_roundtrips() {
        let (_n, spec, routing) = demo();
        let topo = Topology::snapshot(&spec, &routing);
        assert!(topo.edge_count() > 0);
        assert!(topo.edges().windows(2).all(|w| w[0] < w[1]));
        for (i, &e) in topo.edges().iter().enumerate() {
            assert_eq!(topo.edge_idx(e), Some(EdgeIdx(i as u32)));
            assert_eq!(topo.edge(EdgeIdx(i as u32)), e);
        }
        assert_eq!(topo.edge_idx((NodeId(999), NodeId(998))), None);
    }

    #[test]
    fn trees_cover_exactly_demanded_pairs() {
        let (_n, spec, routing) = demo();
        let topo = Topology::snapshot(&spec, &routing);
        // Sources ascending, matching the tree slab.
        let tree_sources: Vec<NodeId> = topo.trees().iter().map(|t| t.source()).collect();
        assert_eq!(tree_sources, topo.sources());
        assert!(tree_sources.windows(2).all(|w| w[0] < w[1]));
        // Every (source, destination) demanded pair appears exactly once.
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for tree in topo.trees() {
            for dp in tree.dest_paths() {
                pairs.push((tree.source(), dp.destination()));
                assert!(spec.is_source_of(tree.source(), dp.destination()));
            }
        }
        pairs.sort_unstable();
        let mut expected: Vec<(NodeId, NodeId)> = Vec::new();
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if spec.is_source_of(s, d) {
                    expected.push((s, d));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn csr_adjacency_matches_dest_path_edges() {
        let (_n, spec, routing) = demo();
        let topo = Topology::snapshot(&spec, &routing);
        for tree in topo.trees() {
            // Edges reachable through the CSR...
            let mut csr_edges: Vec<EdgeIdx> = Vec::new();
            let mut stack = vec![0u32];
            while let Some(pos) = stack.pop() {
                for &(child, e) in tree.children_of(pos) {
                    csr_edges.push(e);
                    stack.push(child);
                }
            }
            csr_edges.sort_unstable();
            // ...are exactly the edges on the demanded routes.
            let mut path_edges: Vec<EdgeIdx> = tree
                .dest_paths()
                .iter()
                .flat_map(|dp| dp.hops().iter().map(|&(e, _)| e))
                .collect();
            path_edges.sort_unstable();
            path_edges.dedup();
            assert_eq!(csr_edges, path_edges);
            // Parent-before-child: position 0 is the source and every
            // child position exceeds its parent's.
            for pos in 0..tree.order().len() as u32 {
                for &(child, _) in tree.children_of(pos) {
                    assert!(child > pos);
                }
            }
        }
    }

    #[test]
    fn suffixes_are_interned_across_trees() {
        let (_n, spec, routing) = demo();
        let topo = Topology::snapshot(&spec, &routing);
        let mut by_content: std::collections::HashMap<Vec<NodeId>, *const [NodeId]> =
            std::collections::HashMap::new();
        for tree in topo.trees() {
            for dp in tree.dest_paths() {
                for (_, suffix) in dp.hops() {
                    let key = suffix.to_vec();
                    let ptr = Arc::as_ptr(suffix);
                    let prev = by_content.entry(key).or_insert(ptr);
                    assert!(std::ptr::eq(*prev, ptr), "same suffix, distinct allocs");
                }
            }
        }
    }

    #[test]
    fn bitset_insert_contains_count() {
        let mut bits = BitSet::with_capacity(10);
        assert!(!bits.any());
        assert!(bits.insert(3));
        assert!(!bits.insert(3));
        assert!(bits.insert(130)); // beyond initial capacity: grows
        assert!(bits.contains(3));
        assert!(bits.contains(130));
        assert!(!bits.contains(64));
        assert_eq!(bits.count(), 2);
        assert!(bits.any());
        bits.clear();
        assert_eq!(bits.count(), 0);
        assert!(!bits.contains(3));
    }
}
