//! Milestone routing (§3, "Flexibility Trade-Off in Routing using
//! Milestones").
//!
//! Fully specified routes give the optimizer the most aggregation
//! opportunities but force the communication layer to push every message
//! through every pre-selected hop, even across flaky links. The milestone
//! approach keeps only a *subset* of each route's intermediate nodes as
//! milestones; optimization runs over milestones and the *virtual edges*
//! between them, while the communication layer is free to route each
//! virtual hop however it likes at runtime.
//!
//! We select as milestones every `spacing`-th node of each multicast tree
//! (plus the root and every destination — convergence points must be
//! pinned for compile-time aggregation to be guaranteed). `spacing == 1`
//! recovers the fully specified plan. The expected-delivery cost model:
//!
//! * a *pinned* hop (spacing 1) must be traversed exactly, paying an
//!   expected `1 / (1 − p)` transmissions under per-round link failure
//!   probability `p` (retransmit until the link is up);
//! * a *flexible* virtual edge of physical length `L` lets the
//!   communication layer route around failures, paying
//!   `L · (1 + detour_overhead · p)` expected transmissions.
//!
//! The paper sketches this trade-off qualitatively; the concrete cost
//! model here (and the `milestones` ablation bench built on it) is our
//! parameterization — see DESIGN.md, "Substitutions".

use std::collections::BTreeMap;

use m2m_graph::spt::MulticastTree;
use m2m_graph::NodeId;
use m2m_netsim::{EnergyModel, Network, RoutingTables};

use crate::edge_opt::DirectedEdge;
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;

/// Milestone selection and runtime cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct MilestoneConfig {
    /// Keep every `spacing`-th tree node as a milestone (1 = every hop).
    pub spacing: u32,
    /// Relative extra distance the communication layer travels to route
    /// around a failed link on a flexible segment.
    pub detour_overhead: f64,
}

impl Default for MilestoneConfig {
    fn default() -> Self {
        MilestoneConfig {
            spacing: 1,
            detour_overhead: 0.5,
        }
    }
}

/// The virtual topology milestone optimization runs on: per-source virtual
/// multicast trees plus the physical length of every virtual edge.
#[derive(Clone, Debug)]
pub struct MilestoneRouting {
    /// Virtual multicast trees (edges connect consecutive milestones).
    pub routing: RoutingTables,
    /// Physical hop length of each virtual edge.
    pub edge_lengths: BTreeMap<DirectedEdge, u32>,
}

/// Builds the milestone (virtual-edge) routing from physical routing.
pub fn build_milestone_routing(
    network: &Network,
    physical: &RoutingTables,
    config: &MilestoneConfig,
) -> MilestoneRouting {
    assert!(config.spacing >= 1, "spacing must be at least 1");
    let mut edge_lengths: BTreeMap<DirectedEdge, u32> = BTreeMap::new();
    let mut demands: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut virtual_trees: BTreeMap<NodeId, MulticastTree> = BTreeMap::new();

    for (s, tree) in physical.trees() {
        demands.insert(s, tree.destinations().to_vec());
        // Milestone predicate per tree: depth multiple of spacing, the
        // root, or a destination.
        let is_milestone = |v: NodeId, depth: u32| -> bool {
            depth % config.spacing == 0 || v == s || tree.destinations().binary_search(&v).is_ok()
        };
        let n = network.node_count();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for &d in tree.destinations() {
            let path = tree.path_to(d).expect("tree spans destination");
            let mut last_milestone = (path[0], 0u32);
            for (depth, &v) in path.iter().enumerate().skip(1) {
                let depth = depth as u32;
                if is_milestone(v, depth) {
                    let (prev, prev_depth) = last_milestone;
                    if v != prev {
                        parent[v.index()] = Some(prev);
                        edge_lengths
                            .entry((prev, v))
                            .and_modify(|l| *l = (*l).max(depth - prev_depth))
                            .or_insert(depth - prev_depth);
                    }
                    last_milestone = (v, depth);
                }
            }
        }
        virtual_trees.insert(
            s,
            MulticastTree::from_parents(s, parent, tree.destinations().to_vec()),
        );
    }

    crate::m2m_log!(
        crate::telemetry::Level::Debug,
        "milestone routing built: {} virtual trees, {} virtual edges (spacing {})",
        virtual_trees.len(),
        edge_lengths.len(),
        config.spacing
    );
    MilestoneRouting {
        routing: RoutingTables::from_trees(physical.mode(), virtual_trees),
        edge_lengths,
    }
}

/// One virtual edge's precomputed cost facts.
#[derive(Clone, Copy, Debug)]
struct MilestoneEdgeCost {
    /// Per-delivery energies for the edge's merged message.
    tx_uj: f64,
    rx_uj: f64,
    /// Physical hop length of the virtual edge.
    length: f64,
    units: usize,
    cost_bytes: u64,
}

/// The milestone cost model compiled once per `(plan, routing)`: per-edge
/// message energies and lengths are resolved up front (in ascending edge
/// order, matching the reference accumulation), so sweeping failure
/// probabilities — as the `ablations` bench does — is a flat-array pass
/// per probe instead of a `BTreeMap` walk with energy-model calls.
#[derive(Clone, Debug)]
pub struct CompiledMilestoneCost {
    entries: Vec<MilestoneEdgeCost>,
    detour_overhead: f64,
}

impl CompiledMilestoneCost {
    /// Precomputes the per-edge facts for `plan` over `milestone`.
    pub fn new(
        plan: &GlobalPlan,
        milestone: &MilestoneRouting,
        energy: &EnergyModel,
        config: &MilestoneConfig,
    ) -> Self {
        let entries = plan
            .iter_solutions()
            .map(|(edge, sol)| {
                let body = u32::try_from(sol.cost_bytes).expect("payload fits u32");
                MilestoneEdgeCost {
                    tx_uj: energy.tx_cost_uj(body),
                    rx_uj: energy.rx_cost_uj(body),
                    length: f64::from(milestone.edge_lengths.get(&edge).copied().unwrap_or(1)),
                    units: sol.unit_count(),
                    cost_bytes: sol.cost_bytes,
                }
            })
            .collect();
        CompiledMilestoneCost {
            entries,
            detour_overhead: config.detour_overhead,
        }
    }

    /// Expected per-round cost under per-link failure probability `p`
    /// (see [`expected_round_cost`] for the model).
    pub fn expected_cost(&self, failure_probability: f64) -> RoundCost {
        assert!((0.0..1.0).contains(&failure_probability));
        let mut cost = RoundCost::default();
        for e in &self.entries {
            let multiplier = if e.length <= 1.0 {
                // Pinned hop: retransmit on this exact link until it is up.
                1.0 / (1.0 - failure_probability)
            } else {
                // Flexible segment: route around failures with bounded
                // detour.
                e.length * (1.0 + self.detour_overhead * failure_probability)
            };
            cost.tx_uj += e.tx_uj * multiplier;
            cost.rx_uj += e.rx_uj * multiplier;
            cost.messages += e.length as usize;
            cost.units += e.units;
            cost.payload_bytes += e.cost_bytes;
        }
        cost
    }
}

/// Expected per-round cost of executing `plan` over the milestone routing
/// under per-link failure probability `p`.
///
/// Each virtual edge carries one message (full merging, as in the paper's
/// experiments); the message is relayed over the virtual edge's physical
/// length with the flexible-delivery multiplier, except that length-1
/// virtual edges are pinned hops paying the retransmission multiplier.
///
/// One-shot convenience over [`CompiledMilestoneCost`]; probability
/// sweeps should compile once and call
/// [`CompiledMilestoneCost::expected_cost`] per probe.
pub fn expected_round_cost(
    plan: &GlobalPlan,
    milestone: &MilestoneRouting,
    energy: &EnergyModel,
    failure_probability: f64,
    config: &MilestoneConfig,
) -> RoundCost {
    CompiledMilestoneCost::new(plan, milestone, energy, config).expected_cost(failure_probability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GlobalPlan;
    use crate::spec::AggregationSpec;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables) {
        let net = Network::with_default_energy(Deployment::great_duck_island(8));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 12, 5));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        (net, spec, routing)
    }

    #[test]
    fn spacing_one_is_identity() {
        let (net, spec, routing) = setup();
        let cfg = MilestoneConfig {
            spacing: 1,
            detour_overhead: 0.5,
        };
        let m = build_milestone_routing(&net, &routing, &cfg);
        // Every physical tree edge survives with length 1.
        assert!(m.edge_lengths.values().all(|&l| l == 1));
        assert_eq!(
            m.routing.directed_edges().len(),
            routing.directed_edges().len()
        );
        let _ = spec;
    }

    #[test]
    fn wider_spacing_contracts_paths() {
        let (net, spec, routing) = setup();
        let cfg = MilestoneConfig {
            spacing: 3,
            detour_overhead: 0.5,
        };
        let m = build_milestone_routing(&net, &routing, &cfg);
        assert!(
            m.routing.directed_edges().len() <= routing.directed_edges().len(),
            "virtual topology must not be larger"
        );
        assert!(
            m.edge_lengths.values().any(|&l| l > 1),
            "some edges contract"
        );
        // The virtual plan still validates and executes symbolically.
        let plan = GlobalPlan::build_unchecked(&spec, &m.routing);
        plan.validate(&spec, &m.routing).unwrap();
    }

    #[test]
    fn compiled_sweep_matches_one_shot() {
        let (net, spec, routing) = setup();
        let cfg = MilestoneConfig {
            spacing: 3,
            detour_overhead: 0.5,
        };
        let m = build_milestone_routing(&net, &routing, &cfg);
        let plan = GlobalPlan::build_unchecked(&spec, &m.routing);
        let compiled = CompiledMilestoneCost::new(&plan, &m, net.energy(), &cfg);
        for p in [0.0, 0.3, 0.6] {
            assert_eq!(
                compiled.expected_cost(p),
                expected_round_cost(&plan, &m, net.energy(), p, &cfg),
                "p={p}"
            );
        }
    }

    #[test]
    fn milestones_win_under_heavy_failures() {
        let (net, spec, routing) = setup();
        let pinned_cfg = MilestoneConfig {
            spacing: 1,
            detour_overhead: 0.5,
        };
        let flex_cfg = MilestoneConfig {
            spacing: 4,
            detour_overhead: 0.5,
        };
        let pinned = build_milestone_routing(&net, &routing, &pinned_cfg);
        let flexible = build_milestone_routing(&net, &routing, &flex_cfg);
        let pinned_plan = GlobalPlan::build_unchecked(&spec, &pinned.routing);
        let flex_plan = GlobalPlan::build_unchecked(&spec, &flexible.routing);
        let cost = |plan: &GlobalPlan, m: &MilestoneRouting, cfg: &MilestoneConfig, p: f64| {
            expected_round_cost(plan, m, net.energy(), p, cfg).total_uj()
        };
        // With reliable links, pinning every hop is at least as good
        // (maximum aggregation opportunity, no failure penalty).
        assert!(
            cost(&pinned_plan, &pinned, &pinned_cfg, 0.0)
                <= cost(&flex_plan, &flexible, &flex_cfg, 0.0) * 1.05
        );
        // Under heavy failures the trend reverses at some probability:
        // pinned cost grows like 1/(1-p), flexible like (1 + 0.5 p).
        let p = 0.6;
        let pinned_hi = cost(&pinned_plan, &pinned, &pinned_cfg, p);
        let pinned_lo = cost(&pinned_plan, &pinned, &pinned_cfg, 0.0);
        let flex_hi = cost(&flex_plan, &flexible, &flex_cfg, p);
        let flex_lo = cost(&flex_plan, &flexible, &flex_cfg, 0.0);
        assert!(
            pinned_hi / pinned_lo > flex_hi / flex_lo,
            "pinned routing must degrade faster under failures"
        );
    }

    #[test]
    #[should_panic(expected = "spacing must be at least 1")]
    fn zero_spacing_rejected() {
        let (net, _, routing) = setup();
        build_milestone_routing(
            &net,
            &routing,
            &MilestoneConfig {
                spacing: 0,
                detour_overhead: 0.5,
            },
        );
    }
}
