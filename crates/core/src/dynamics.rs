//! Dynamic adaptation (§3, "Adapting to Dynamic Situations").
//!
//! Corollary 1: the globally optimal plan is unchanged at every edge whose
//! single-edge inputs are unchanged. So when the workload changes — a
//! source added to or removed from a function, a destination deployed or
//! retired — only the edges whose `(S_e, D_e, ∼_e)` inputs actually
//! changed need re-optimization, and only their incident nodes need new
//! state disseminated. [`PlanMaintainer`] implements exactly this: it
//! diffs the per-edge problems before and after the update, reuses
//! solutions for unchanged problems verbatim, re-solves the rest, and
//! reports how local the update was.

use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingMode, RoutingTables};

use crate::agg::AggregateFunction;
use crate::edge_opt::{
    build_edge_problems, solve_edge_batch, solve_edge_slab, EdgeProblem, EdgeSolution,
};
use crate::parallel;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;
use crate::topo::{BitSet, Topology};

/// A change to the aggregation workload.
#[derive(Clone, Debug)]
pub enum WorkloadUpdate {
    /// Add (or re-weight) a source of an existing destination.
    AddSource {
        /// The destination whose function gains the source.
        destination: NodeId,
        /// The new source.
        source: NodeId,
        /// Its weight `α_s`.
        weight: f64,
    },
    /// Remove a source from a destination's function.
    RemoveSource {
        /// The destination whose function loses the source.
        destination: NodeId,
        /// The source to remove.
        source: NodeId,
    },
    /// Install a new aggregation function (new destination).
    AddDestination {
        /// The new destination.
        destination: NodeId,
        /// Its function.
        function: AggregateFunction,
    },
    /// Retire a destination and its function.
    RemoveDestination {
        /// The destination to retire.
        destination: NodeId,
    },
}

/// How local an update turned out to be.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Edges whose single-edge problem changed and were re-solved.
    pub edges_reoptimized: usize,
    /// Edges whose solution was kept verbatim (Corollary 1).
    pub edges_reused: usize,
    /// Edges that newly appeared or disappeared from the plan.
    pub edges_added_or_removed: usize,
}

impl UpdateStats {
    /// Total edges in the new plan.
    pub fn edges_total(&self) -> usize {
        self.edges_reoptimized + self.edges_reused
    }

    /// Fraction of the new plan's edges that did *not* need re-solving.
    pub fn reuse_fraction(&self) -> f64 {
        if self.edges_total() == 0 {
            return 1.0;
        }
        self.edges_reused as f64 / self.edges_total() as f64
    }
}

/// Maintains a plan across workload updates with incremental
/// re-optimization.
#[derive(Clone, Debug)]
pub struct PlanMaintainer {
    network: Arc<Network>,
    spec: AggregationSpec,
    mode: RoutingMode,
    routing: Arc<RoutingTables>,
    /// The interned topology the slabs below are laid out over.
    topo: Arc<Topology>,
    /// Pre-repair per-edge optima in `EdgeIdx` order, reusable across
    /// updates (repairs are applied on a copy when the public plan is
    /// assembled).
    base_solutions: Vec<EdgeSolution>,
    problems: Vec<EdgeProblem>,
    plan: GlobalPlan,
}

impl PlanMaintainer {
    /// Builds the initial plan. Accepts the network by value or as a
    /// shared [`Arc`], so service tenants and standalone maintainers can
    /// share one deployment without cloning it.
    pub fn new(network: impl Into<Arc<Network>>, spec: AggregationSpec, mode: RoutingMode) -> Self {
        let network = network.into();
        let routing = RoutingTables::build(&network, &spec.source_to_destinations(), mode);
        let topo = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_INTERN);
            Arc::new(Topology::snapshot(&spec, &routing))
        };
        let problems = {
            let _s =
                m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_PROBLEMS);
            build_edge_problems(&topo)
        };
        let base_solutions = {
            let _s = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_SOLVE);
            solve_edge_slab(&problems, &spec, parallel::max_threads())
        };
        let plan = GlobalPlan::from_solutions(
            &spec,
            Arc::clone(&topo),
            problems.clone(),
            base_solutions.clone(),
        );
        PlanMaintainer {
            network,
            spec,
            mode,
            routing: Arc::new(routing),
            topo,
            base_solutions,
            problems,
            plan,
        }
    }

    /// Wraps an already-planned substrate without re-routing or
    /// re-solving: the caller supplies the routing tables, the interned
    /// topology snapshot for `(spec, routing)`, the per-edge problems in
    /// the topology's slab order, and the matching **pre-repair**
    /// solutions (from [`crate::edge_opt::solve_edge_slab`], a shared
    /// [`crate::memo::SharedSolveCache`], or a restored service
    /// checkpoint). The public plan is assembled exactly as
    /// [`PlanMaintainer::new`] assembles it from the same parts, so a
    /// maintainer built this way is bit-identical to one that planned
    /// from scratch.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (problems that do not match
    /// the topology's edge slab, or solutions that do not answer their
    /// problems — the repair sweep and schedule assembly check both).
    pub fn from_parts(
        network: impl Into<Arc<Network>>,
        spec: AggregationSpec,
        mode: RoutingMode,
        routing: Arc<RoutingTables>,
        topo: Arc<Topology>,
        problems: Vec<EdgeProblem>,
        base_solutions: Vec<EdgeSolution>,
    ) -> Self {
        let plan = GlobalPlan::from_solutions(
            &spec,
            Arc::clone(&topo),
            problems.clone(),
            base_solutions.clone(),
        );
        PlanMaintainer {
            network: network.into(),
            spec,
            mode,
            routing,
            topo,
            base_solutions,
            problems,
            plan,
        }
    }

    /// The current plan.
    #[inline]
    pub fn plan(&self) -> &GlobalPlan {
        &self.plan
    }

    /// The current workload.
    #[inline]
    pub fn spec(&self) -> &AggregationSpec {
        &self.spec
    }

    /// The network the plan is maintained for.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// A shared handle to the network (cheap to clone into another
    /// maintainer or session over the same deployment).
    #[inline]
    pub fn network_arc(&self) -> Arc<Network> {
        Arc::clone(&self.network)
    }

    /// The current routing tables.
    #[inline]
    pub fn routing(&self) -> &RoutingTables {
        &self.routing
    }

    /// A shared handle to the current routing tables.
    #[inline]
    pub fn routing_arc(&self) -> Arc<RoutingTables> {
        Arc::clone(&self.routing)
    }

    /// The interned topology snapshot the plan's slabs are laid out over.
    #[inline]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The routing mode workload-driven re-routes rebuild tables with.
    #[inline]
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// The per-edge problems in slab order (pre-repair inputs).
    #[inline]
    pub fn problems(&self) -> &[EdgeProblem] {
        &self.problems
    }

    /// The pre-repair per-edge solutions in slab order — the reusable
    /// basis [`PlanMaintainer::from_parts`] accepts back (the public
    /// [`PlanMaintainer::plan`] holds the *post-repair* copies).
    #[inline]
    pub fn base_solutions(&self) -> &[EdgeSolution] {
        &self.base_solutions
    }

    /// Applies one update, re-optimizing only the edges whose single-edge
    /// inputs changed.
    ///
    /// # Panics
    /// Panics on malformed updates (unknown destination, removing a
    /// function's last source).
    pub fn apply(&mut self, update: WorkloadUpdate) -> UpdateStats {
        match update {
            WorkloadUpdate::AddSource {
                destination,
                source,
                weight,
            } => {
                self.spec
                    .function_mut(destination)
                    .unwrap_or_else(|| panic!("no function at {destination}"))
                    .set_weight(source, weight);
            }
            WorkloadUpdate::RemoveSource {
                destination,
                source,
            } => {
                self.spec
                    .function_mut(destination)
                    .unwrap_or_else(|| panic!("no function at {destination}"))
                    .remove_source(source);
            }
            WorkloadUpdate::AddDestination {
                destination,
                function,
            } => {
                self.spec.add_function(destination, function);
            }
            WorkloadUpdate::RemoveDestination { destination } => {
                assert!(
                    self.spec.remove_function(destination).is_some(),
                    "no function at {destination}"
                );
            }
        }
        self.reoptimize()
    }

    /// Installs externally supplied routing tables (e.g. ETX-weighted
    /// trees rebuilt after link-stability changes — §3: "changes to
    /// multicast trees … may happen if stability of certain routes have
    /// changed significantly"), re-solving only the edges whose
    /// single-edge inputs changed.
    pub fn apply_route_change(&mut self, new_routing: RoutingTables) -> UpdateStats {
        self.install(new_routing)
    }

    /// Re-routes with the maintainer's own mode, diffs per-edge problems
    /// against the previous state, and re-solves only the changed ones.
    fn reoptimize(&mut self) -> UpdateStats {
        let new_routing = RoutingTables::build(
            &self.network,
            &self.spec.source_to_destinations(),
            self.mode,
        );
        self.install(new_routing)
    }

    /// Shared Corollary 1 machinery: diff, reuse, re-solve, reassemble.
    /// The re-solve set — the edges whose problems actually changed — is
    /// fanned out across worker threads; Theorem 1 makes the solves
    /// independent and ordered collection keeps the plan bit-identical to
    /// a serial re-solve.
    fn install(&mut self, new_routing: RoutingTables) -> UpdateStats {
        let _span = crate::telemetry::span(crate::telemetry::names::DYNAMICS_INSTALL_NS);
        let new_topo = Arc::new(Topology::snapshot(&self.spec, &new_routing));
        let new_problems = build_edge_problems(&new_topo);

        // Dirty-edge bitset over the *new* slab: an edge is dirty when
        // its problem is brand new or changed; everything else reuses its
        // solution verbatim (Corollary 1). The old snapshot's O(1) edge
        // lookup does the diff — no map re-keying.
        let mut stats = UpdateStats::default();
        let mut dirty = BitSet::with_capacity(new_problems.len());
        for (idx, problem) in new_problems.iter().enumerate() {
            match self.topo.edge_idx(problem.edge) {
                Some(old) if self.problems[old.index()] == *problem => {
                    stats.edges_reused += 1;
                }
                existing => {
                    stats.edges_reoptimized += 1;
                    if existing.is_none() {
                        stats.edges_added_or_removed += 1;
                    }
                    dirty.insert(idx);
                }
            }
        }
        let to_solve: Vec<&EdgeProblem> = new_problems
            .iter()
            .enumerate()
            .filter(|&(idx, _)| dirty.contains(idx))
            .map(|(_, p)| p)
            .collect();
        let solved = solve_edge_batch(&to_solve, &self.spec, parallel::max_threads());
        let mut fresh = solved.into_iter();
        let new_solutions: Vec<EdgeSolution> = new_problems
            .iter()
            .enumerate()
            .map(|(idx, problem)| {
                if dirty.contains(idx) {
                    fresh.next().expect("one solve per dirty edge")
                } else {
                    let old = self.topo.edge_idx(problem.edge).expect("reused edge");
                    self.base_solutions[old.index()].clone()
                }
            })
            .collect();
        stats.edges_added_or_removed += self
            .topo
            .edges()
            .iter()
            .filter(|&&e| new_topo.edge_idx(e).is_none())
            .count();

        if crate::telemetry::enabled() {
            use crate::telemetry::names;
            crate::telemetry::counter(names::DYNAMICS_UPDATES, 1);
            crate::telemetry::counter(names::DYNAMICS_EDGES_REUSED, stats.edges_reused as u64);
            crate::telemetry::counter(
                names::DYNAMICS_EDGES_REOPTIMIZED,
                stats.edges_reoptimized as u64,
            );
        }
        self.plan = GlobalPlan::from_solutions(
            &self.spec,
            Arc::clone(&new_topo),
            new_problems.clone(),
            new_solutions.clone(),
        );
        self.routing = Arc::new(new_routing);
        self.topo = new_topo;
        self.problems = new_problems;
        self.base_solutions = new_solutions;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::Deployment;

    fn maintainer() -> PlanMaintainer {
        let net = Network::with_default_energy(Deployment::great_duck_island(4));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 8, 21));
        PlanMaintainer::new(net, spec, RoutingMode::ShortestPathTrees)
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let mut m = maintainer();
        let d = m.spec().destinations().next().unwrap();
        // Pick a source not yet feeding d.
        let s = m
            .spec()
            .all_sources()
            .into_iter()
            .find(|&s| !m.spec().is_source_of(s, d) && s != d)
            .unwrap();
        m.apply(WorkloadUpdate::AddSource {
            destination: d,
            source: s,
            weight: 1.0,
        });
        // Rebuild from scratch and compare total cost.
        let scratch = PlanMaintainer::new(
            m.network.clone(),
            m.spec().clone(),
            RoutingMode::ShortestPathTrees,
        );
        assert_eq!(
            m.plan().total_payload_bytes(),
            scratch.plan().total_payload_bytes()
        );
        m.plan().validate(m.spec(), m.routing()).unwrap();
    }

    #[test]
    fn small_update_is_local() {
        let mut m = maintainer();
        let d = m.spec().destinations().next().unwrap();
        let s = m
            .spec()
            .all_sources()
            .into_iter()
            .find(|&s| !m.spec().is_source_of(s, d) && s != d)
            .unwrap();
        let stats = m.apply(WorkloadUpdate::AddSource {
            destination: d,
            source: s,
            weight: 1.0,
        });
        // Corollary 1: most of the plan survives a one-pair change.
        assert!(
            stats.reuse_fraction() > 0.5,
            "expected a local update, reused only {:.0}%",
            stats.reuse_fraction() * 100.0
        );
    }

    #[test]
    fn reuse_fraction_of_an_edgeless_plan_is_total() {
        // Regression: an update can leave a plan with zero edges (e.g. the
        // last destination removed, or every source co-located with its
        // destination). The fraction must not divide by zero — "nothing
        // needed re-solving" reads as full reuse.
        let stats = UpdateStats::default();
        assert_eq!(stats.edges_total(), 0);
        assert_eq!(stats.reuse_fraction(), 1.0);
    }

    #[test]
    fn remove_then_readd_is_identity() {
        let mut m = maintainer();
        let before = m.plan().total_payload_bytes();
        let (d, f) = {
            let (d, f) = m.spec().functions().next().unwrap();
            (d, f.clone())
        };
        // Pick a removable source (function keeps ≥1 source).
        let s = f.sources().next().unwrap();
        let w = f.weight(s).unwrap();
        m.apply(WorkloadUpdate::RemoveSource {
            destination: d,
            source: s,
        });
        m.apply(WorkloadUpdate::AddSource {
            destination: d,
            source: s,
            weight: w,
        });
        assert_eq!(m.plan().total_payload_bytes(), before);
        m.plan().validate(m.spec(), m.routing()).unwrap();
    }

    #[test]
    fn destination_lifecycle() {
        let mut m = maintainer();
        let new_dest = m
            .network
            .nodes()
            .find(|&v| m.spec().function(v).is_none())
            .unwrap();
        let sources: Vec<NodeId> = m
            .spec()
            .all_sources()
            .into_iter()
            .filter(|&s| s != new_dest)
            .take(4)
            .collect();
        let stats = m.apply(WorkloadUpdate::AddDestination {
            destination: new_dest,
            function: AggregateFunction::weighted_sum(
                sources.iter().map(|&s| (s, 1.0)).collect::<Vec<_>>(),
            ),
        });
        assert!(stats.edges_reoptimized > 0);
        m.plan().validate(m.spec(), m.routing()).unwrap();
        let stats = m.apply(WorkloadUpdate::RemoveDestination {
            destination: new_dest,
        });
        assert!(stats.edges_total() > 0);
        m.plan().validate(m.spec(), m.routing()).unwrap();
    }

    #[test]
    fn route_change_is_incremental_and_correct() {
        use m2m_netsim::quality::{weighted_routing, LinkQuality};
        let mut m = maintainer();
        let before_bytes = m.plan().total_payload_bytes();
        // Reroute over ETX-weighted trees after links degrade.
        let quality = LinkQuality::distance_based(&m.network, 0.5, 3);
        let new_routing =
            weighted_routing(&m.network, &m.spec().source_to_destinations(), &quality);
        let stats = m.apply_route_change(new_routing);
        assert!(stats.edges_total() > 0);
        m.plan().validate(m.spec(), m.routing()).unwrap();
        // Some edges typically survive (shared short routes), and the
        // plan matches a from-scratch build over the same routing.
        let scratch = GlobalPlan::build_unchecked(m.spec(), m.routing());
        assert_eq!(
            m.plan().total_payload_bytes(),
            scratch.total_payload_bytes()
        );
        let _ = before_bytes;
    }

    #[test]
    #[should_panic(expected = "no function at")]
    fn bad_update_panics() {
        let mut m = maintainer();
        let ghost = m
            .network
            .nodes()
            .find(|v| m.spec().function(*v).is_none())
            .unwrap();
        m.apply(WorkloadUpdate::RemoveDestination { destination: ghost });
    }
}
