//! Out-of-network control — the §1 strawman the paper argues against.
//!
//! "One possible approach is out-of-network control of sensors: all
//! sources send data to the base station, where all control signals are
//! computed and sent to destinations." The paper rejects it because (i)
//! round trips grow with network size and (ii) nodes near the base
//! station become bottlenecks and "deplete their energy earlier than
//! other nodes".
//!
//! This module implements that baseline faithfully — batched collection
//! up a shortest-path tree to the station, computation at the station,
//! batched dissemination of the control outputs back down — with per-node
//! energy accounting, so both claims are measurable:
//! [`NodeEnergyLedger::hotspot`] lands at or next to the station, and
//! [`project_lifetime`](crate::metrics::project_lifetime) shows the
//! first-death round arriving much earlier than under in-network control.

use std::collections::BTreeMap;

use m2m_graph::bfs::bfs_distances;
use m2m_graph::spt::ShortestPathTree;
use m2m_graph::NodeId;
use m2m_netsim::Network;

use crate::agg::RAW_VALUE_BYTES;
use crate::metrics::{NodeEnergyLedger, RoundCost};
use crate::spec::AggregationSpec;

/// Size of one computed control output on air (a single float, like a raw
/// reading).
pub const CONTROL_OUTPUT_BYTES: u32 = 4;

/// Picks the base-station node: the node minimizing total hop distance to
/// all others (the 1-median of the hop metric), ties toward the lower id.
/// Real deployments place the station centrally for exactly this reason.
pub fn choose_station(network: &Network) -> NodeId {
    let mut best: Option<(u64, NodeId)> = None;
    for v in network.nodes() {
        let dist = bfs_distances(network.graph(), v);
        let total: u64 = dist
            .iter()
            .map(|d| u64::from(d.unwrap_or(u32::MAX / 2)))
            .sum();
        if best.is_none_or(|(b, _)| total < b) {
            best = Some((total, v));
        }
    }
    best.expect("network has at least one node").1
}

/// The out-of-network plan: every source's collection route and every
/// destination's delivery route, over the station's shortest-path tree.
#[derive(Clone, Debug)]
pub struct BaseStationPlan {
    station: NodeId,
    /// Per directed collection edge (child → parent, toward the station):
    /// number of source values batched across it.
    collection_load: BTreeMap<(NodeId, NodeId), u32>,
    /// Per directed delivery edge (parent → child, away from the
    /// station): number of control outputs batched across it.
    delivery_load: BTreeMap<(NodeId, NodeId), u32>,
}

impl BaseStationPlan {
    /// Builds the plan for a workload. Sources and destinations must be
    /// reachable from the station (true on connected deployments).
    ///
    /// # Panics
    /// Panics if a source or destination cannot reach the station.
    pub fn build(network: &Network, spec: &AggregationSpec, station: NodeId) -> Self {
        let spt = ShortestPathTree::build(network.graph(), station);
        let mut collection_load: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
        for s in spec.all_sources() {
            let path = spt
                .path_to(s)
                .unwrap_or_else(|| panic!("source {s} cannot reach the station"));
            // Collection flows child → parent: reverse the root path.
            for hop in path.windows(2) {
                *collection_load.entry((hop[1], hop[0])).or_insert(0) += 1;
            }
        }
        let mut delivery_load: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
        for d in spec.destinations() {
            let path = spt
                .path_to(d)
                .unwrap_or_else(|| panic!("destination {d} cannot reach the station"));
            for hop in path.windows(2) {
                *delivery_load.entry((hop[0], hop[1])).or_insert(0) += 1;
            }
        }
        BaseStationPlan {
            station,
            collection_load,
            delivery_load,
        }
    }

    /// The station node.
    #[inline]
    pub fn station(&self) -> NodeId {
        self.station
    }

    /// Energy of one control round: one batched message per used
    /// collection edge (carrying every source value routed through it) and
    /// one per used delivery edge (carrying every control output routed
    /// through it), charged per node.
    pub fn round_cost(&self, network: &Network) -> (RoundCost, NodeEnergyLedger) {
        let energy = network.energy();
        let mut cost = RoundCost::default();
        let mut ledger = NodeEnergyLedger::new(network.node_count());
        let mut charge = |edge: (NodeId, NodeId), units: u32, unit_bytes: u32| {
            let body = units * unit_bytes;
            let tx = energy.tx_cost_uj(body);
            let rx = energy.rx_cost_uj(body);
            ledger.charge_tx(edge.0, tx);
            ledger.charge_rx(edge.1, rx);
            cost.tx_uj += tx;
            cost.rx_uj += rx;
            cost.messages += 1;
            cost.units += units as usize;
            cost.payload_bytes += u64::from(body);
        };
        for (&edge, &units) in &self.collection_load {
            charge(edge, units, RAW_VALUE_BYTES);
        }
        for (&edge, &units) in &self.delivery_load {
            charge(edge, units, CONTROL_OUTPUT_BYTES);
        }
        (cost, ledger)
    }

    /// Computes every control signal at the station from complete
    /// readings — the ground truth the in-network plans are compared to,
    /// and trivially correct by construction.
    pub fn compute_at_station(
        &self,
        spec: &AggregationSpec,
        readings: &BTreeMap<NodeId, f64>,
    ) -> BTreeMap<NodeId, f64> {
        spec.functions()
            .map(|(d, f)| (d, f.reference_result(readings)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::Deployment;

    #[test]
    fn station_is_hop_median() {
        // On a 5-node line the median node minimizes total distance.
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        assert_eq!(choose_station(&net), NodeId(2));
    }

    #[test]
    fn line_collection_costs_one_message_per_hop() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        // Destination 0 aggregates source 3; station at 0.
        spec.add_function(
            NodeId(0),
            AggregateFunction::weighted_sum([(NodeId(3), 1.0)]),
        );
        let plan = BaseStationPlan::build(&net, &spec, NodeId(0));
        let (cost, _) = plan.round_cost(&net);
        // 3 collection hops; destination 0 == station, so no delivery.
        assert_eq!(cost.messages, 3);
        assert_eq!(cost.units, 3);
    }

    #[test]
    fn batching_shares_edges() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(0),
            AggregateFunction::weighted_sum([(NodeId(2), 1.0), (NodeId(3), 1.0)]),
        );
        let plan = BaseStationPlan::build(&net, &spec, NodeId(0));
        // Edge 1→0 carries both values in ONE message of two units.
        assert_eq!(plan.collection_load[&(NodeId(1), NodeId(0))], 2);
        let (cost, _) = plan.round_cost(&net);
        assert_eq!(cost.messages, 3); // edges 3→2, 2→1, 1→0
        assert_eq!(cost.units, 1 + 2 + 2);
    }

    #[test]
    fn hotspot_sits_next_to_the_station() {
        let net = Network::with_default_energy(Deployment::great_duck_island(3));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 15, 4));
        let station = choose_station(&net);
        let plan = BaseStationPlan::build(&net, &spec, station);
        let (_, ledger) = plan.round_cost(&net);
        let (hot, _) = ledger.hotspot();
        let hops = net.hop_distance(station, hot).unwrap();
        assert!(
            hops <= 1,
            "hotspot {hot} should be the station {station} or adjacent, is {hops} hops away"
        );
    }

    #[test]
    fn station_results_match_reference() {
        let net = Network::with_default_energy(Deployment::great_duck_island(3));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(6, 8, 4));
        let plan = BaseStationPlan::build(&net, &spec, choose_station(&net));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, f64::from(v.0) * 0.5)).collect();
        let results = plan.compute_at_station(&spec, &readings);
        for (d, f) in spec.functions() {
            assert_eq!(results[&d], f.reference_result(&readings));
        }
    }

    #[test]
    #[should_panic(expected = "cannot reach the station")]
    fn disconnected_source_panics() {
        let net = Network::with_default_energy(Deployment::grid(2, 1, 100.0, 10.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(0),
            AggregateFunction::weighted_sum([(NodeId(1), 1.0)]),
        );
        let _ = BaseStationPlan::build(&net, &spec, NodeId(0));
    }
}
