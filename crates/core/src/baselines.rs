//! The paper's comparison algorithms (§4).
//!
//! * **Multicast** — "simply multicasts raw values to destinations": every
//!   edge carries all its sources raw; aggregation happens only at the
//!   destinations themselves.
//! * **Aggregation** — pure in-network aggregation in the TAG lineage:
//!   every value travels as a destination-specific unit and units for the
//!   same destination merge as soon as their routes converge; there is no
//!   multicast sharing, so a source feeding two destinations pays twice.
//! * **Optimal** — the paper's contribution: the per-edge vertex-cover
//!   balance of the two ([`GlobalPlan::build`]).
//! * **Flood** — "sources flood the entire network using broadcasts";
//!   needs no in-network state. Per the paper, each node delays and
//!   batches, combining every value it relays into one broadcast per
//!   round, so each node transmits one message carrying all source values
//!   and every radio neighbor receives it.
//!
//! The first three produce a [`GlobalPlan`] and run on the same schedule
//! and energy accounting; flood does not route on multicast trees, so its
//! cost is computed directly from the broadcast model.

use std::sync::Arc;

use m2m_netsim::Network;
use m2m_netsim::RoutingTables;

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{build_edge_problems, EdgeSolution};
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;
use crate::topo::Topology;

/// The algorithms compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's optimal many-to-many aggregation plan.
    Optimal,
    /// Raw multicast only.
    Multicast,
    /// In-network aggregation only.
    Aggregation,
    /// Network-wide flooding with per-node batching.
    Flood,
}

impl Algorithm {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Optimal => "Optimal",
            Algorithm::Multicast => "Multicast",
            Algorithm::Aggregation => "Aggregation",
            Algorithm::Flood => "Flood",
        }
    }

    /// The tree-routed algorithms (everything but flood).
    pub const PLANNED: [Algorithm; 3] = [
        Algorithm::Optimal,
        Algorithm::Multicast,
        Algorithm::Aggregation,
    ];
}

/// Builds the plan a tree-routed algorithm uses.
///
/// # Panics
/// Panics if called with [`Algorithm::Flood`], which has no plan — use
/// [`flood_round_cost`].
pub fn plan_for_algorithm(
    network: &Network,
    spec: &AggregationSpec,
    routing: &RoutingTables,
    algorithm: Algorithm,
) -> GlobalPlan {
    match algorithm {
        Algorithm::Optimal => GlobalPlan::build(network, spec, routing),
        Algorithm::Multicast => {
            let topo = Arc::new(Topology::snapshot(spec, routing));
            let problems = build_edge_problems(&topo);
            let solutions = problems
                .iter()
                .map(|p| EdgeSolution {
                    edge: p.edge,
                    raw: p.sources.clone(),
                    agg: Vec::new(),
                    cost_bytes: p.sources.len() as u64 * u64::from(RAW_VALUE_BYTES),
                })
                .collect();
            GlobalPlan::from_solutions(spec, topo, problems, solutions)
        }
        Algorithm::Aggregation => {
            let topo = Arc::new(Topology::snapshot(spec, routing));
            let problems = build_edge_problems(&topo);
            let solutions = problems
                .iter()
                .map(|p| {
                    let cost: u64 = p
                        .groups
                        .iter()
                        .map(|g| {
                            u64::from(
                                spec.function(g.destination)
                                    .expect("function exists")
                                    .partial_record_bytes(),
                            )
                        })
                        .sum();
                    EdgeSolution {
                        edge: p.edge,
                        raw: Vec::new(),
                        agg: p.groups.clone(),
                        cost_bytes: cost,
                    }
                })
                .collect();
            GlobalPlan::from_solutions(spec, topo, problems, solutions)
        }
        Algorithm::Flood => panic!("flood has no multicast-tree plan; use flood_round_cost"),
    }
}

/// Energy of one flood round: every node broadcasts one batched message
/// containing every source value (flooding delivers every value to every
/// node exactly once per round) and receives one such message — the
/// paper's flood "reduces the per-message overhead" with delays/batching
/// and relies on broadcast efficiency, so each node pays for the first
/// copy it hears and suppresses duplicates without powering the radio
/// (ideal duplicate suppression; without it flood would never approach
/// the tree algorithms, contradicting the paper's heavy-workload result).
pub fn flood_round_cost(network: &Network, spec: &AggregationSpec) -> RoundCost {
    let source_count = spec.all_sources().len();
    let body = source_count as u32 * RAW_VALUE_BYTES;
    let mut cost = RoundCost::default();
    if source_count == 0 {
        return cost;
    }
    let energy = network.energy();
    for _ in network.nodes() {
        cost.tx_uj += energy.tx_cost_uj(body);
        cost.rx_uj += energy.rx_cost_uj(body);
        cost.messages += 1;
        cost.units += source_count;
        cost.payload_bytes += u64::from(body);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::schedule::build_schedule;
    use m2m_graph::NodeId;
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables) {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(6), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        (net, spec, routing)
    }

    #[test]
    fn all_planned_algorithms_validate() {
        let (net, spec, routing) = setup();
        for alg in Algorithm::PLANNED {
            let plan = plan_for_algorithm(&net, &spec, &routing, alg);
            plan.validate(&spec, &routing)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", alg.name()));
        }
    }

    #[test]
    fn optimal_payload_never_exceeds_baselines() {
        // Per-edge the optimal cover is at most the all-raw cover
        // (multicast) and at most the all-groups cover (aggregation), so
        // the totals are ordered too.
        let (net, spec, routing) = setup();
        let optimal = plan_for_algorithm(&net, &spec, &routing, Algorithm::Optimal);
        let multicast = plan_for_algorithm(&net, &spec, &routing, Algorithm::Multicast);
        let aggregation = plan_for_algorithm(&net, &spec, &routing, Algorithm::Aggregation);
        assert!(optimal.total_payload_bytes() <= multicast.total_payload_bytes());
        assert!(optimal.total_payload_bytes() <= aggregation.total_payload_bytes());
    }

    #[test]
    fn multicast_plan_has_no_records() {
        let (net, spec, routing) = setup();
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Multicast);
        assert!(plan.solutions().iter().all(|s| s.agg.is_empty()));
        assert_eq!(plan.repair_count(), 0);
    }

    #[test]
    fn aggregation_plan_has_no_raws() {
        let (net, spec, routing) = setup();
        let plan = plan_for_algorithm(&net, &spec, &routing, Algorithm::Aggregation);
        assert!(plan.solutions().iter().all(|s| s.raw.is_empty()));
    }

    #[test]
    fn baseline_plans_schedule_cleanly() {
        let (net, spec, routing) = setup();
        for alg in Algorithm::PLANNED {
            let plan = plan_for_algorithm(&net, &spec, &routing, alg);
            let schedule =
                build_schedule(&spec, &plan).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert!(!schedule.units.is_empty());
        }
    }

    #[test]
    fn flood_cost_scales_with_sources_and_nodes() {
        let (net, spec, _) = setup();
        let cost = flood_round_cost(&net, &spec);
        assert_eq!(cost.messages, net.node_count());
        // Body = distinct sources × 4 bytes, transmitted once per node.
        let distinct = spec.all_sources().len();
        assert_eq!(distinct, 4); // {0, 1, 2, 6}
        assert_eq!(cost.payload_bytes, (net.node_count() * distinct * 4) as u64);
        assert!(cost.total_uj() > 0.0);
    }

    #[test]
    fn flood_of_empty_spec_is_free() {
        let (net, _, _) = setup();
        let empty = AggregationSpec::new();
        assert_eq!(flood_round_cost(&net, &empty), RoundCost::default());
    }

    #[test]
    #[should_panic(expected = "flood has no multicast-tree plan")]
    fn flood_plan_panics() {
        let (net, spec, routing) = setup();
        let _ = plan_for_algorithm(&net, &spec, &routing, Algorithm::Flood);
    }
}
