//! Lifting the one-function-per-destination assumption.
//!
//! §2.1: "we assume each node can be the destination of at most one
//! aggregation function, though this assumption is simple to lift". The
//! lift: partition the functions into *layers* such that each destination
//! appears at most once per layer, plan each layer with the unmodified
//! optimizer, and execute the layers back to back within the round. The
//! number of layers equals the largest number of functions any single
//! destination carries (greedy first-fit is optimal here because the only
//! constraint is per-destination multiplicity).

use std::collections::BTreeMap;

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingMode, RoutingTables};

use crate::agg::AggregateFunction;
use crate::exec::{CompiledSchedule, ExecState};
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// A workload where destinations may carry any number of functions.
#[derive(Clone, Debug, Default)]
pub struct MultiSpec {
    functions: Vec<(NodeId, AggregateFunction)>,
}

impl MultiSpec {
    /// Creates an empty multi-function workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function for destination `d`. Unlike
    /// [`AggregationSpec::add_function`], repeated destinations add
    /// *additional* functions rather than replacing.
    pub fn add_function(&mut self, d: NodeId, f: AggregateFunction) {
        self.functions.push((d, f));
    }

    /// Total number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// The functions in insertion order.
    pub fn functions(&self) -> &[(NodeId, AggregateFunction)] {
        &self.functions
    }

    /// Greedy first-fit layering: each layer holds at most one function
    /// per destination. The layer count equals the maximum multiplicity of
    /// any destination.
    pub fn layers(&self) -> Vec<AggregationSpec> {
        let mut layers: Vec<AggregationSpec> = Vec::new();
        for (d, f) in &self.functions {
            let slot = layers.iter_mut().find(|layer| layer.function(*d).is_none());
            match slot {
                Some(layer) => layer.add_function(*d, f.clone()),
                None => {
                    let mut layer = AggregationSpec::new();
                    layer.add_function(*d, f.clone());
                    layers.push(layer);
                }
            }
        }
        layers
    }

    /// Ground-truth results per function, insertion order.
    pub fn reference_results(&self, readings: &BTreeMap<NodeId, f64>) -> Vec<f64> {
        self.functions
            .iter()
            .map(|(_, f)| f.reference_result(readings))
            .collect()
    }
}

/// Plans for every layer of a [`MultiSpec`], each lowered once into a
/// [`CompiledSchedule`] so rounds run on the single public executor.
#[derive(Clone, Debug)]
pub struct MultiPlan {
    layers: Vec<(AggregationSpec, GlobalPlan, CompiledSchedule)>,
}

impl MultiPlan {
    /// Builds per-layer optimal plans and compiles each.
    ///
    /// # Panics
    /// Panics if a layer's plan is unschedulable (it cannot be, for
    /// plans produced by [`GlobalPlan::build`]).
    pub fn build(network: &Network, multi: &MultiSpec, mode: RoutingMode) -> Self {
        let layers = multi
            .layers()
            .into_iter()
            .map(|spec| {
                let routing = RoutingTables::build(network, &spec.source_to_destinations(), mode);
                let plan = GlobalPlan::build(network, &spec, &routing);
                let compiled = CompiledSchedule::compile(network, &spec, &plan)
                    .expect("layer plan must be schedulable");
                (spec, plan, compiled)
            })
            .collect();
        MultiPlan { layers }
    }

    /// Number of layers (sub-rounds per round).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total per-round payload across all layers.
    pub fn total_payload_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|(_, p, _)| p.total_payload_bytes())
            .sum()
    }

    /// Executes one round: all layers in sequence on the compiled
    /// executor. Returns one result per original function, in insertion
    /// order, plus the summed cost.
    pub fn execute_round(
        &self,
        multi: &MultiSpec,
        readings: &BTreeMap<NodeId, f64>,
    ) -> (Vec<f64>, RoundCost) {
        let mut per_layer: Vec<BTreeMap<NodeId, f64>> = Vec::new();
        let mut cost = RoundCost::default();
        for (_, _, compiled) in &self.layers {
            let mut state = ExecState::for_schedule(compiled);
            cost.accumulate(&compiled.run_round_on(readings, &mut state));
            per_layer.push(state.result_map(compiled));
        }
        // Map back to insertion order by replaying the layering.
        let mut next_layer: BTreeMap<NodeId, usize> = BTreeMap::new();
        let results = multi
            .functions()
            .iter()
            .map(|(d, _)| {
                let layer = *next_layer.entry(*d).and_modify(|l| *l += 1).or_insert(0);
                per_layer[layer][d]
            })
            .collect();
        (results, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateKind;
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 0.5 + 1.0))
            .collect()
    }

    #[test]
    fn one_destination_many_functions() {
        let net = network();
        let vals = readings(&net);
        let mut multi = MultiSpec::new();
        // Node 12 wants an average, a minimum, AND a count of the same set.
        for kind in [
            AggregateKind::WeightedAverage,
            AggregateKind::Min,
            AggregateKind::Count,
        ] {
            multi.add_function(
                NodeId(12),
                AggregateFunction::new(kind, [(NodeId(0), 1.0), (NodeId(3), 1.0)]),
            );
        }
        assert_eq!(multi.layers().len(), 3);
        let plan = MultiPlan::build(&net, &multi, RoutingMode::ShortestPathTrees);
        assert_eq!(plan.layer_count(), 3);
        let (results, cost) = plan.execute_round(&multi, &vals);
        let expected = multi.reference_results(&vals);
        for (got, want) in results.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
        assert!(cost.total_uj() > 0.0);
    }

    #[test]
    fn layering_is_minimal() {
        let mut multi = MultiSpec::new();
        // d=1 has 3 functions, d=2 has 1: exactly 3 layers.
        for _ in 0..3 {
            multi.add_function(
                NodeId(1),
                AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
            );
        }
        multi.add_function(
            NodeId(2),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let layers = multi.layers();
        assert_eq!(layers.len(), 3);
        // The singleton function lands in the first layer.
        assert!(layers[0].function(NodeId(2)).is_some());
        assert_eq!(layers[0].destination_count(), 2);
    }

    #[test]
    fn single_function_per_destination_is_one_layer() {
        let net = network();
        let vals = readings(&net);
        let mut multi = MultiSpec::new();
        multi.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 2.0)]),
        );
        multi.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 3.0)]),
        );
        let plan = MultiPlan::build(&net, &multi, RoutingMode::ShortestPathTrees);
        assert_eq!(plan.layer_count(), 1);
        let (results, _) = plan.execute_round(&multi, &vals);
        assert!((results[0] - 2.0 * vals[&NodeId(0)]).abs() < 1e-12);
        assert!((results[1] - 3.0 * vals[&NodeId(0)]).abs() < 1e-12);
    }

    #[test]
    fn duplicate_functions_both_answered() {
        // The same function twice at one destination — results repeat.
        let net = network();
        let vals = readings(&net);
        let mut multi = MultiSpec::new();
        let f = AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(5), 1.0)]);
        multi.add_function(NodeId(10), f.clone());
        multi.add_function(NodeId(10), f);
        let plan = MultiPlan::build(&net, &multi, RoutingMode::ShortestPathTrees);
        let (results, _) = plan.execute_round(&multi, &vals);
        assert_eq!(results.len(), 2);
        assert!((results[0] - results[1]).abs() < 1e-12);
    }
}
