//! Compiled round execution: build the schedule once, run epochs
//! allocation-free.
//!
//! The paper's steady-state model (§2) runs one plan unchanged for
//! thousands of epochs between workload updates, yet the reference
//! executor ([`crate::runtime::execute_round`]) rebuilds the full
//! [`Schedule`] — including the greedy message merger and its per-edge
//! acyclicity checks — on every round. [`CompiledSchedule`] lowers the
//! schedule **once** into flat dense-index arrays:
//!
//! * source node ids are interned to dense `u32` slots by a [`NodeIndex`];
//! * record units are listed in topological (wait-for) order, so every
//!   dependency is computed before its consumer, exactly as the reference
//!   path walks `Schedule::topo_order`;
//! * each unit's contributions become a contiguous run of [`Op`]s —
//!   `Pre { slot, alpha }` with the pre-aggregation weight baked in, or
//!   `FromUnit { unit }` pointing at an already-computed record;
//! * per-destination final evaluations are laid out in ascending
//!   destination order (the `BTreeMap` iteration order of the reference);
//! * the round's [`RoundCost`] is precomputed (it only depends on the
//!   message structure, not the readings).
//!
//! The op stream itself is stored as a **structure of arrays**
//! ([`OpStream`]: tag, argument, and weight slabs instead of an
//! enum-of-structs `Vec<Op>`), and all record state lives in dense `f64`
//! **component planes** rather than `Vec<Option<PartialRecord>>`: every
//! aggregate kind decomposes into at most three `f64` components
//! ([`crate::agg::LaneKernel`]), so a record unit is three contiguous
//! `f64` lanes, not a 32-byte tagged union. The fold over an op run is
//! monomorphized per [`AggregateKind`] — the kind dispatch happens once
//! per run, and the inner loop is branch-free arithmetic over the
//! component lanes.
//!
//! [`CompiledSchedule::run_round`] executes one epoch against an
//! [`ExecState`] scratch arena with **zero heap allocation** and no map
//! lookups: every access is an index into a flat array. Because the ops
//! preserve the reference path's contribution order and the lane kernels
//! perform exactly the arithmetic of
//! ([`AggregateKind::pre_aggregate_weighted`],
//! [`AggregateKind::merge_records`], [`AggregateKind::evaluate_record`]),
//! the results are **bit-identical** to `execute_round` — the same float
//! associativity order, asserted by `tests/exec_equivalence.rs`.
//!
//! [`CompiledSchedule::run_rounds_batched`] goes further: it executes
//! `W ∈ {1, 4, 8, 16}` **independent rounds per pass**, with the round
//! index as the fastest-moving lane dimension of every plane, so the
//! per-op work is a straight-line loop over `W` adjacent `f64`s that the
//! compiler auto-vectorizes. Lanes are whole rounds — no within-round
//! float association changes — so each lane's bits equal a scalar
//! [`CompiledSchedule::run_round`] of the same readings
//! (`tests/batched_equivalence.rs` pins this, NaN/∞ included).
//!
//! [`run_epochs`] fans independent rounds (distinct reading vectors)
//! across worker threads in **chunked batches**: each worker owns one
//! lane-batched [`ExecState`] arena and writes its rounds' results
//! directly into a disjoint span of one preallocated output slab
//! ([`EpochSlab`]) — no per-round task dispatch, no per-round result
//! allocation. [`EpochDriver`] pairs a compiled schedule with a
//! [`PlanMaintainer`] so a long-running campaign recompiles only when an
//! update actually changed the plan's structure (Corollary 1) and merely
//! refreshes baked-in weights otherwise.

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::{EnergyModel, Network, RoutingMode, RoutingTables};

use crate::agg::{with_lane_kernel, AggregateFunction, AggregateKind, LaneKernel, PartialRecord};
use crate::dynamics::{PlanMaintainer, UpdateStats, WorkloadUpdate};
use crate::metrics::RoundCost;
use crate::parallel;
use crate::plan::GlobalPlan;
use crate::schedule::{build_schedule, Contribution, Schedule, UnitContent};
use crate::spec::AggregationSpec;

/// Dense interning of node ids: the sorted set of ids is the slot space,
/// so `slot` is a binary search (compile/load time only — the hot path
/// works purely in slots).
#[derive(Clone, Debug)]
pub struct NodeIndex {
    ids: Vec<NodeId>,
}

impl NodeIndex {
    fn from_ids(mut ids: Vec<NodeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        NodeIndex { ids }
    }

    /// The dense slot of `id`, if interned.
    #[inline]
    pub fn slot(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The node id at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn id(&self, slot: usize) -> NodeId {
        self.ids[slot]
    }

    /// All interned ids in slot order (ascending).
    #[inline]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of interned ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no ids are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One lowered contribution, as a value. Mirrors [`Contribution`] with
/// all lookups (weight, reading slot) resolved at compile time. The hot
/// path never materializes these — ops are stored as a structure of
/// arrays ([`OpStream`]) — but the fault-tolerant executor
/// ([`crate::faults`]) replays the stream through [`OpStream::get`]
/// views when folding degraded rounds.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// Pre-aggregate the reading in `slot` with weight `alpha`.
    Pre { slot: u32, alpha: f64 },
    /// Merge the record computed for unit `unit`.
    FromUnit { unit: u32 },
}

/// Discriminant slab entry of an [`OpStream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpTag {
    /// The op's argument is a reading slot; its weight is in `alphas`.
    Pre,
    /// The op's argument is a record unit index.
    FromUnit,
}

/// The compiled op stream in structure-of-arrays form: one tag slab, one
/// argument slab (reading slot for `Pre`, unit index for `FromUnit`),
/// and one weight slab (`α` for `Pre`, `0.0` filler for `FromUnit`).
/// Splitting the enum this way keeps the hot fold's per-op decode to two
/// narrow loads plus one `f64` load, with no padding dragged through the
/// cache — and lets [`CompiledSchedule::refresh_weights`] re-bake
/// weights by walking the `alphas` slab alone.
#[derive(Clone, Debug, Default)]
pub(crate) struct OpStream {
    pub(crate) tags: Vec<OpTag>,
    pub(crate) args: Vec<u32>,
    pub(crate) alphas: Vec<f64>,
}

impl OpStream {
    fn push_pre(&mut self, slot: u32, alpha: f64) {
        self.tags.push(OpTag::Pre);
        self.args.push(slot);
        self.alphas.push(alpha);
    }

    fn push_from_unit(&mut self, unit: u32) {
        self.tags.push(OpTag::FromUnit);
        self.args.push(unit);
        self.alphas.push(0.0);
    }

    /// Number of ops in the stream.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.tags.len()
    }

    /// The op at `i`, re-assembled as a value (cold paths only).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Op {
        match self.tags[i] {
            OpTag::Pre => Op::Pre {
                slot: self.args[i],
                alpha: self.alphas[i],
            },
            OpTag::FromUnit => Op::FromUnit { unit: self.args[i] },
        }
    }
}

/// One record unit to compute, in topological order. The ops in
/// `first_op .. first_op + op_count` are folded left-to-right in the
/// reference path's contribution order.
#[derive(Clone, Debug)]
pub(crate) struct RecordStep {
    /// Index into [`ExecState::records`] (== the unit's schedule index).
    pub(crate) unit: u32,
    /// The destination whose merging function applies.
    pub(crate) dest: NodeId,
    pub(crate) kind: AggregateKind,
    pub(crate) first_op: u32,
    pub(crate) op_count: u32,
}

/// One destination's final evaluation, in ascending destination order.
#[derive(Clone, Debug)]
pub(crate) struct DestStep {
    pub(crate) dest: NodeId,
    pub(crate) kind: AggregateKind,
    pub(crate) first_op: u32,
    pub(crate) op_count: u32,
}

/// A schedule lowered to flat dense-index arrays, executable with zero
/// heap allocation per round. Built once per plan; see the module docs.
#[derive(Clone, Debug)]
pub struct CompiledSchedule {
    pub(crate) sources: NodeIndex,
    pub(crate) ops: OpStream,
    pub(crate) record_steps: Vec<RecordStep>,
    pub(crate) dest_steps: Vec<DestStep>,
    pub(crate) unit_count: usize,
    round_cost: RoundCost,
    schedule: Arc<Schedule>,
    /// One reliable round's per-node observability profile (tx/rx counts
    /// and energies). The reliable path is readings-independent, so the
    /// hot loop only *counts* rounds; flushing multiplies this template.
    obs_profile: Arc<m2m_telemetry::timeseries::NodePlanes>,
}

impl CompiledSchedule {
    /// Builds the schedule for `plan` and lowers it. Errors if the plan
    /// is unschedulable (wait-for cycle, Theorem 2).
    ///
    /// Source interning reuses the plan's [`crate::topo::Topology`]
    /// snapshot: every demanded `(s, d)` pair produces exactly one `Pre(s)`
    /// contribution somewhere in the schedule (at the raw→record
    /// transition, or as a destination input when the pair stays raw or is
    /// local), so the topology's source set equals the set of `Pre`
    /// sources and no scan over the contributions is needed.
    pub fn compile(
        network: &Network,
        spec: &AggregationSpec,
        plan: &GlobalPlan,
    ) -> Result<Self, String> {
        let _span = crate::telemetry::span(crate::telemetry::names::EXEC_COMPILE_NS);
        let _stage =
            m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_COMPILE);
        crate::telemetry::counter(crate::telemetry::names::EXEC_COMPILES, 1);
        let schedule = build_schedule(spec, plan)?;
        let sources = NodeIndex::from_ids(plan.topology().sources().to_vec());
        Ok(Self::from_schedule_with_sources(
            network.energy(),
            spec,
            schedule,
            sources,
        ))
    }

    /// Lowers an already-built schedule, deriving the source set by
    /// scanning its `Pre` contributions.
    pub fn from_schedule(energy: &EnergyModel, spec: &AggregationSpec, schedule: Schedule) -> Self {
        let sources = NodeIndex::from_ids(pre_sources(&schedule));
        Self::from_schedule_with_sources(energy, spec, schedule, sources)
    }

    fn from_schedule_with_sources(
        energy: &EnergyModel,
        spec: &AggregationSpec,
        schedule: Schedule,
        sources: NodeIndex,
    ) -> Self {
        debug_assert_eq!(
            sources.ids(),
            NodeIndex::from_ids(pre_sources(&schedule)).ids(),
            "interned sources must equal the schedule's Pre sources"
        );
        let function = |d: NodeId| -> &AggregateFunction {
            spec.function(d).expect("destination has a function")
        };
        let mut ops = OpStream::default();
        let mut lower_run = |f: &AggregateFunction, contribs: &[Contribution]| -> (u32, u32) {
            let first_op = ops.len() as u32;
            for c in contribs {
                match *c {
                    Contribution::Pre(s) => ops.push_pre(
                        sources.slot(s).expect("source interned above") as u32,
                        f.weight(s)
                            .unwrap_or_else(|| panic!("{s} is not a source of this function")),
                    ),
                    Contribution::FromUnit(u) => ops.push_from_unit(u as u32),
                }
            }
            (first_op, ops.len() as u32 - first_op)
        };

        // Record units in topological order — dependencies first, exactly
        // like the reference walk over `topo_order`.
        let mut record_steps: Vec<RecordStep> = Vec::new();
        for &u in &schedule.topo_order {
            let UnitContent::Record(ref group) = schedule.units[u].content else {
                continue;
            };
            let f = function(group.destination);
            let (first_op, op_count) = lower_run(f, &schedule.contributions[u]);
            record_steps.push(RecordStep {
                unit: u as u32,
                dest: group.destination,
                kind: f.kind(),
                first_op,
                op_count,
            });
        }

        // Destination evaluations in ascending id order (BTreeMap order).
        let mut dest_steps: Vec<DestStep> = Vec::new();
        for (&d, inputs) in &schedule.destination_inputs {
            let f = function(d);
            let (first_op, op_count) = lower_run(f, inputs);
            dest_steps.push(DestStep {
                dest: d,
                kind: f.kind(),
                first_op,
                op_count,
            });
        }

        let round_cost = schedule.round_cost(energy);

        // Per-node profile of one reliable round, for the observability
        // planes: every message pays tx at its tail and rx at its head —
        // the same arithmetic as `Schedule::round_cost`, per node.
        let mut obs_ids: Vec<u64> = schedule
            .messages
            .iter()
            .flat_map(|m| [u64::from(m.edge.0 .0), u64::from(m.edge.1 .0)])
            .collect();
        obs_ids.sort_unstable();
        obs_ids.dedup();
        let mut obs_profile = m2m_telemetry::timeseries::NodePlanes::for_ids(obs_ids);
        for msg in &schedule.messages {
            let body: u32 = msg
                .units
                .iter()
                .map(|&u| schedule.units[u].size_bytes)
                .sum();
            let tail = obs_profile
                .slot(u64::from(msg.edge.0 .0))
                .expect("endpoint in profile universe");
            let head = obs_profile
                .slot(u64::from(msg.edge.1 .0))
                .expect("endpoint in profile universe");
            obs_profile.record_tx(tail, 1, energy.tx_cost_uj(body));
            obs_profile.record_rx(head, energy.rx_cost_uj(body));
        }
        obs_profile.add_rounds(1);

        CompiledSchedule {
            sources,
            ops,
            record_steps,
            dest_steps,
            unit_count: schedule.units.len(),
            round_cost,
            schedule: Arc::new(schedule),
            obs_profile: Arc::new(obs_profile),
        }
    }

    /// The interned source ids (slot order defines the layout of
    /// [`ExecState::readings_mut`] and of each row passed to
    /// [`run_epochs`]).
    #[inline]
    pub fn sources(&self) -> &NodeIndex {
        &self.sources
    }

    /// Destinations in result order (ascending id).
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dest_steps.iter().map(|s| s.dest)
    }

    /// Number of destinations (length of [`ExecState::results`]).
    #[inline]
    pub fn destination_count(&self) -> usize {
        self.dest_steps.len()
    }

    /// The underlying schedule (message structure, per-edge counts).
    #[inline]
    pub fn schedule(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The precomputed per-round cost (independent of readings).
    #[inline]
    pub fn round_cost(&self) -> RoundCost {
        self.round_cost
    }

    /// Executes one round against the readings already loaded in `state`
    /// (see [`ExecState::load_readings`] / [`ExecState::readings_mut`]),
    /// leaving per-destination results in [`ExecState::results`].
    ///
    /// This is the scalar hot path — the `W = 1` instantiation of the
    /// lane-batched engine: no heap allocation, no map lookups, kind
    /// dispatch once per op run.
    ///
    /// # Panics
    /// Panics if `state` was sized for a different compiled schedule or
    /// built with a lane width other than 1.
    pub fn run_round(&self, state: &mut ExecState) -> RoundCost {
        // One relaxed load when tracing is off — the documented cost of
        // instrumenting the hot path.
        crate::telemetry::counter(crate::telemetry::names::EXEC_ROUNDS, 1);
        if m2m_telemetry::timeseries::obs_enabled() {
            state.obs_rounds += 1;
        }
        assert_eq!(state.width, 1, "run_round needs a width-1 state");
        self.check_state(state);
        self.round_window::<1>(state);
        self.round_cost
    }

    fn check_state(&self, state: &ExecState) {
        let w = state.width;
        assert_eq!(
            state.readings.len(),
            self.sources.len() * w,
            "state/schedule mismatch"
        );
        assert_eq!(
            state.rec0.len(),
            self.unit_count * w,
            "state/schedule mismatch"
        );
        assert_eq!(
            state.results.len(),
            self.dest_steps.len() * w,
            "state/schedule mismatch"
        );
    }

    /// Executes one window of `W` rounds whose readings are loaded
    /// lane-major in `state.readings`. Lanes are independent rounds: all
    /// arithmetic is per-lane, in the compiled op order, so each lane is
    /// bit-identical to a scalar round of the same readings.
    fn round_window<const W: usize>(&self, state: &mut ExecState) {
        for step in &self.record_steps {
            assert!(
                step.op_count > 0,
                "record unit {} for {} has no contributions",
                step.unit,
                step.dest
            );
            let base = step.unit as usize * W;
            with_lane_kernel!(step.kind, K => {
                let (a0, a1, a2) = fold_run::<K, W>(
                    &self.ops,
                    step.first_op,
                    step.op_count,
                    &state.readings,
                    &state.rec0,
                    &state.rec1,
                    &state.rec2,
                );
                state.rec0[base..base + W].copy_from_slice(&a0);
                if K::COMPS > 1 {
                    state.rec1[base..base + W].copy_from_slice(&a1);
                }
                if K::COMPS > 2 {
                    state.rec2[base..base + W].copy_from_slice(&a2);
                }
            });
        }
        for (i, step) in self.dest_steps.iter().enumerate() {
            assert!(
                step.op_count > 0,
                "destination {} received no inputs",
                step.dest
            );
            let base = i * W;
            with_lane_kernel!(step.kind, K => {
                let (a0, a1, a2) = fold_run::<K, W>(
                    &self.ops,
                    step.first_op,
                    step.op_count,
                    &state.readings,
                    &state.rec0,
                    &state.rec1,
                    &state.rec2,
                );
                for w in 0..W {
                    state.results[base + w] = K::eval((a0[w], a1[w], a2[w]));
                }
            });
        }
    }

    /// Executes one round per entry of `rounds` (dense reading vectors in
    /// [`CompiledSchedule::sources`] slot order), `state.width()` lanes
    /// at a time, writing per-destination results round-major into `out`
    /// (`out[r * destination_count + d]`). Ragged tails (final window
    /// shorter than the lane width) are handled by replicating the last
    /// round into the pad lanes and discarding their results — pad lanes
    /// never touch real output, and lanes never interact, so every
    /// written result is bit-identical to a scalar [`Self::run_round`].
    ///
    /// Allocation-free given a prepared `state` and `out` slab; this is
    /// the engine under [`run_epochs`] / [`EpochSlab`].
    ///
    /// # Panics
    /// Panics if `state` was sized for a different schedule, a reading
    /// vector has the wrong length, or `out` is not exactly
    /// `rounds.len() * destination_count` long.
    pub fn run_rounds_batched(
        &self,
        rounds: &[Vec<f64>],
        state: &mut ExecState,
        out: &mut [f64],
    ) -> RoundCost {
        crate::telemetry::counter(crate::telemetry::names::EXEC_ROUNDS, rounds.len() as u64);
        if m2m_telemetry::timeseries::obs_enabled() {
            state.obs_rounds += rounds.len() as u64;
        }
        self.check_state(state);
        let dests = self.dest_steps.len();
        assert_eq!(
            out.len(),
            rounds.len() * dests,
            "output slab must be rounds x destinations"
        );
        let width = state.width;
        let mut r0 = 0;
        while r0 < rounds.len() {
            let lanes = (rounds.len() - r0).min(width);
            // Transpose this window's rounds into lane-major readings;
            // pad lanes replicate the window's last real round.
            for lane in 0..width {
                let row = &rounds[r0 + lane.min(lanes - 1)];
                assert_eq!(
                    row.len(),
                    self.sources.len(),
                    "reading vector length must match the interned source count"
                );
                for (slot, &v) in row.iter().enumerate() {
                    state.readings[slot * width + lane] = v;
                }
            }
            match width {
                1 => self.round_window::<1>(state),
                4 => self.round_window::<4>(state),
                8 => self.round_window::<8>(state),
                16 => self.round_window::<16>(state),
                w => unreachable!("unsupported lane width {w}"),
            }
            for lane in 0..lanes {
                let dst = (r0 + lane) * dests;
                for d in 0..dests {
                    out[dst + d] = state.results[d * width + lane];
                }
            }
            r0 += lanes;
        }
        self.round_cost
    }

    /// Convenience wrapper: loads `readings` (keyed by node id, as the
    /// reference path takes them) into `state` and runs one round.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_round_on(
        &self,
        readings: &BTreeMap<NodeId, f64>,
        state: &mut ExecState,
    ) -> RoundCost {
        state.load_readings(self, readings);
        self.run_round(state)
    }

    /// Re-bakes the pre-aggregation weights `α_{d,s}` from `spec` into the
    /// compiled ops, in place. Sound only for pure re-weight updates —
    /// ones that change no `(source, destination)` pair, no aggregate
    /// kind, and no routing — because those leave every per-edge problem
    /// (and hence the schedule structure) unchanged while still changing
    /// the arithmetic. [`EpochDriver`] decides refresh-vs-recompile.
    ///
    /// # Panics
    /// Panics if a destination or source disappeared from `spec`, or if a
    /// destination's aggregate kind changed (both require a recompile).
    pub fn refresh_weights(&mut self, spec: &AggregationSpec) {
        // Split borrows: the step tables and the source interning are read
        // while only the `alphas` slab is written, so a pure re-weight
        // allocates nothing.
        let CompiledSchedule {
            sources,
            ops,
            record_steps,
            dest_steps,
            ..
        } = self;
        let runs = record_steps
            .iter()
            .map(|s| (s.dest, s.kind, s.first_op, s.op_count))
            .chain(
                dest_steps
                    .iter()
                    .map(|s| (s.dest, s.kind, s.first_op, s.op_count)),
            );
        for (dest, kind, first_op, op_count) in runs {
            let f = spec
                .function(dest)
                .unwrap_or_else(|| panic!("no function at {dest}; recompile instead"));
            assert_eq!(
                f.kind(),
                kind,
                "aggregate kind changed at {dest}; recompile instead"
            );
            let lo = first_op as usize;
            for i in lo..lo + op_count as usize {
                if ops.tags[i] == OpTag::Pre {
                    let s = sources.ids[ops.args[i] as usize];
                    ops.alphas[i] = f
                        .weight(s)
                        .unwrap_or_else(|| panic!("{s} no longer a source of {dest}; recompile"));
                }
            }
        }
    }
}

/// Every source that appears as a `Pre` contribution in `schedule`
/// (duplicates included; callers dedup via [`NodeIndex::from_ids`]).
fn pre_sources(schedule: &Schedule) -> Vec<NodeId> {
    let mut source_ids: Vec<NodeId> = Vec::new();
    let pres = schedule
        .contributions
        .iter()
        .chain(schedule.destination_inputs.values());
    for contribs in pres {
        for c in contribs {
            if let Contribution::Pre(s) = c {
                source_ids.push(*s);
            }
        }
    }
    source_ids
}

/// Lane widths [`ExecState::batched`] accepts. Powers of two up to one
/// cache line of `f64`s per plane row; 1 is the scalar path.
pub const SUPPORTED_LANE_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// Default lane width for [`run_epochs`] / [`EpochSlab`] batching
/// (overridable per [`crate::config::Config::lanes`]).
pub const DEFAULT_LANE_WIDTH: usize = 8;

// Three component planes cover every kernel, by the agg-side contract.
const _: () = assert!(crate::agg::MAX_COMPONENTS == 3);

/// Left fold of a contiguous op run (dynamic-dispatch flavour), in the
/// reference path's contribution order — the float associativity is
/// identical to the reference by construction. This is the cold/degraded
/// sibling of [`fold_run`]: [`crate::faults`] uses it where record
/// *presence* matters (an `Option` per unit), which the dense component
/// planes deliberately do not represent.
#[inline]
pub(crate) fn fold_ops(
    kind: AggregateKind,
    ops: &OpStream,
    first: usize,
    count: usize,
    readings: &[f64],
    records: &[Option<PartialRecord>],
) -> Option<PartialRecord> {
    let mut acc: Option<PartialRecord> = None;
    for i in first..first + count {
        let part = match ops.get(i) {
            Op::Pre { slot, alpha } => kind.pre_aggregate_weighted(alpha, readings[slot as usize]),
            Op::FromUnit { unit } => {
                records[unit as usize].expect("topological order computes dependencies first")
            }
        };
        acc = Some(match acc {
            None => part,
            Some(prev) => kind.merge_records(prev, part),
        });
    }
    acc
}

/// Monomorphized left fold of a contiguous op run over `W` lanes at once.
///
/// The kind dispatch happened before the call (see
/// [`crate::agg::with_lane_kernel`]); in here every `K::pre`/`K::merge`
/// is a concrete inlined arithmetic kernel, so each op decodes once and
/// then runs a straight-line loop over `W` adjacent `f64`s — the shape
/// the auto-vectorizer wants. Per lane, the op order and the
/// merge-association order are exactly those of [`fold_ops`], so lane `w`
/// of the result is bit-identical to a scalar fold of lane `w`'s round.
///
/// `count` must be ≥ 1 (the compiler never emits an empty run; callers
/// assert with the empty-run panics the scalar path always had).
#[inline(always)]
fn fold_run<K: LaneKernel, const W: usize>(
    ops: &OpStream,
    first: u32,
    count: u32,
    readings: &[f64],
    rec0: &[f64],
    rec1: &[f64],
    rec2: &[f64],
) -> ([f64; W], [f64; W], [f64; W]) {
    let lo = first as usize;
    let hi = lo + count as usize;
    let mut a0 = [0.0f64; W];
    let mut a1 = [0.0f64; W];
    let mut a2 = [0.0f64; W];
    for i in lo..hi {
        let arg = ops.args[i] as usize;
        match ops.tags[i] {
            OpTag::Pre => {
                let alpha = ops.alphas[i];
                let base = arg * W;
                if i == lo {
                    for w in 0..W {
                        let p = K::pre(alpha, readings[base + w]);
                        a0[w] = p.0;
                        a1[w] = p.1;
                        a2[w] = p.2;
                    }
                } else {
                    for w in 0..W {
                        let p = K::pre(alpha, readings[base + w]);
                        let m = K::merge((a0[w], a1[w], a2[w]), p);
                        a0[w] = m.0;
                        a1[w] = m.1;
                        a2[w] = m.2;
                    }
                }
            }
            OpTag::FromUnit => {
                let base = arg * W;
                if i == lo {
                    a0[..W].copy_from_slice(&rec0[base..base + W]);
                    if K::COMPS > 1 {
                        a1[..W].copy_from_slice(&rec1[base..base + W]);
                    }
                    if K::COMPS > 2 {
                        a2[..W].copy_from_slice(&rec2[base..base + W]);
                    }
                } else {
                    for w in 0..W {
                        let p = (
                            rec0[base + w],
                            if K::COMPS > 1 { rec1[base + w] } else { 0.0 },
                            if K::COMPS > 2 { rec2[base + w] } else { 0.0 },
                        );
                        let m = K::merge((a0[w], a1[w], a2[w]), p);
                        a0[w] = m.0;
                        a1[w] = m.1;
                        a2[w] = m.2;
                    }
                }
            }
        }
    }
    (a0, a1, a2)
}

/// Reusable scratch arena for [`CompiledSchedule::run_round`] /
/// [`CompiledSchedule::run_rounds_batched`]. Allocate once (per worker),
/// run any number of rounds.
///
/// All state is dense `f64` planes with the lane index fastest-moving:
/// `readings[slot * width + lane]`, record component `c` of unit `u` at
/// `rec{c}[u * width + lane]`, `results[dest * width + lane]`. A record
/// is *not* a tagged union here — every aggregate kind decomposes into at
/// most [`crate::agg::MAX_COMPONENTS`] `f64` components (counts ride in
/// `f64`, exact below 2^53), and only the first [`LaneKernel::COMPS`]
/// planes of a unit carry meaning for its kind.
#[derive(Clone, Debug)]
pub struct ExecState {
    /// Lane count `W`: rounds executed per [`CompiledSchedule::round_window`] pass.
    width: usize,
    /// One reading per interned source per lane, lane-major.
    readings: Vec<f64>,
    /// Record component planes: `unit_count * width` each.
    rec0: Vec<f64>,
    rec1: Vec<f64>,
    rec2: Vec<f64>,
    /// One result per destination per lane, lane-major.
    results: Vec<f64>,
    /// The compiled schedule's static one-round profile (shared).
    obs_profile: Arc<m2m_telemetry::timeseries::NodePlanes>,
    /// Rounds run since the last observability flush. The reliable path
    /// is readings-independent per node, so counting is the *entire*
    /// per-round observability cost; [`ExecState::flush_obs`] multiplies
    /// the profile by this count into the global plane registry.
    obs_rounds: u64,
}

impl ExecState {
    /// Allocates scalar (width-1) scratch sized for `compiled` — the
    /// shape [`CompiledSchedule::run_round`] requires.
    pub fn for_schedule(compiled: &CompiledSchedule) -> Self {
        Self::batched(compiled, 1)
    }

    /// Allocates lane-batched scratch sized for `compiled` with `width`
    /// lanes per plane row.
    ///
    /// # Panics
    /// Panics unless `width` is one of [`SUPPORTED_LANE_WIDTHS`].
    pub fn batched(compiled: &CompiledSchedule, width: usize) -> Self {
        assert!(
            SUPPORTED_LANE_WIDTHS.contains(&width),
            "unsupported lane width {width} (supported: {SUPPORTED_LANE_WIDTHS:?})"
        );
        ExecState {
            width,
            readings: vec![0.0; compiled.sources.len() * width],
            rec0: vec![0.0; compiled.unit_count * width],
            rec1: vec![0.0; compiled.unit_count * width],
            rec2: vec![0.0; compiled.unit_count * width],
            results: vec![0.0; compiled.dest_steps.len() * width],
            obs_profile: Arc::clone(&compiled.obs_profile),
            obs_rounds: 0,
        }
    }

    /// Flushes the rounds counted since the last flush into the global
    /// per-node plane registry (profile × count). Called on chunk
    /// completion by [`run_epochs_slab`]; dropping the state is the
    /// backstop, so counts can never be lost.
    pub fn flush_obs(&mut self) {
        if self.obs_rounds > 0 {
            m2m_telemetry::timeseries::merge_planes_scaled(&self.obs_profile, self.obs_rounds);
            self.obs_rounds = 0;
        }
    }

    /// The lane count this arena was allocated for.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Copies the readings of every interned source out of a per-node map
    /// (the reference path's input shape). Width-1 states only.
    ///
    /// # Panics
    /// Panics if a source reading is missing or the state is lane-batched.
    pub fn load_readings(&mut self, compiled: &CompiledSchedule, readings: &BTreeMap<NodeId, f64>) {
        assert_eq!(self.width, 1, "load_readings needs a width-1 state");
        for (slot, &s) in compiled.sources.ids().iter().enumerate() {
            self.readings[slot] = *readings
                .get(&s)
                .unwrap_or_else(|| panic!("no reading for source {s}"));
        }
    }

    /// Mutable access to the reading plane (slot order =
    /// [`CompiledSchedule::sources`] order; lane-major when batched), for
    /// callers that already keep readings dense.
    #[inline]
    pub fn readings_mut(&mut self) -> &mut [f64] {
        &mut self.readings
    }

    /// Per-destination results of the last round, in ascending
    /// destination order ([`CompiledSchedule::destinations`]);
    /// lane-major (`results[dest * width + lane]`) when batched.
    #[inline]
    pub fn results(&self) -> &[f64] {
        &self.results
    }

    /// The last round's results keyed by destination id (allocates — use
    /// [`ExecState::results`] on the hot path). Width-1 states only.
    ///
    /// # Panics
    /// Panics if the state is lane-batched.
    pub fn result_map(&self, compiled: &CompiledSchedule) -> BTreeMap<NodeId, f64> {
        assert_eq!(self.width, 1, "result_map needs a width-1 state");
        compiled
            .dest_steps
            .iter()
            .zip(&self.results)
            .map(|(s, &r)| (s.dest, r))
            .collect()
    }
}

impl Drop for ExecState {
    fn drop(&mut self) {
        self.flush_obs();
    }
}

/// One epoch's outcome from [`run_epochs`].
#[derive(Clone, Debug, PartialEq)]
pub struct EpochOutcome {
    /// Per-destination results in ascending destination order.
    pub results: Vec<f64>,
    /// The (readings-independent) round cost.
    pub cost: RoundCost,
}

/// The preallocated output of [`run_epochs_slab`]: one flat
/// rounds × destinations `f64` slab plus the (readings-independent) round
/// cost — no per-round `Vec`, no per-round allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSlab {
    results: Vec<f64>,
    rounds: usize,
    dests: usize,
    cost: RoundCost,
}

impl EpochSlab {
    /// All results, round-major: `results()[r * destination_count + d]`.
    #[inline]
    pub fn results(&self) -> &[f64] {
        &self.results
    }

    /// Round `r`'s per-destination results, in ascending destination
    /// order.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[inline]
    pub fn round(&self, r: usize) -> &[f64] {
        &self.results[r * self.dests..(r + 1) * self.dests]
    }

    /// Number of rounds executed.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of destinations per round.
    #[inline]
    pub fn destination_count(&self) -> usize {
        self.dests
    }

    /// The per-round cost (identical for every round — it only depends on
    /// the message structure).
    #[inline]
    pub fn cost(&self) -> RoundCost {
        self.cost
    }

    /// Expands into per-round [`EpochOutcome`]s (allocates one `Vec` per
    /// round — compatibility shape only; iterate [`EpochSlab::round`] on
    /// the hot path).
    pub fn into_outcomes(self) -> Vec<EpochOutcome> {
        (0..self.rounds)
            .map(|r| EpochOutcome {
                results: self.round(r).to_vec(),
                cost: self.cost,
            })
            .collect()
    }
}

/// Runs one round per entry of `rounds` — each a dense reading vector in
/// [`CompiledSchedule::sources`] slot order — through the lane-batched
/// engine (`width` lanes per pass), fanned across up to `threads` workers
/// in **chunked batches**: the rounds are statically partitioned into one
/// contiguous chunk per worker, each worker owns one lane-batched
/// [`ExecState`] arena, and every chunk writes its results directly into
/// its disjoint span of the preallocated slab. One task dispatch per
/// worker instead of one per round, and zero per-round allocation.
///
/// Because lanes are independent rounds, every round's bits are those of
/// a scalar [`CompiledSchedule::run_round`] no matter how the rounds land
/// in chunks or lane windows — the output is identical at any `width`
/// and any thread count.
///
/// `threads` is a ceiling, not a quota: the fan-out never spawns more
/// workers than the machine's available parallelism. A statically
/// partitioned chunk fan-out cannot profit from oversubscription — extra
/// workers on a saturated machine only add scheduling overhead — and the
/// worker count cannot change the results, so clamping is free.
///
/// # Panics
/// Panics if any reading vector has the wrong length or `width` is not
/// one of [`SUPPORTED_LANE_WIDTHS`].
pub fn run_epochs_slab(
    compiled: &CompiledSchedule,
    rounds: &[Vec<f64>],
    width: usize,
    threads: usize,
) -> EpochSlab {
    let _span = crate::telemetry::span(crate::telemetry::names::EXEC_RUN_EPOCHS_NS);
    let threads = threads.min(std::thread::available_parallelism().map_or(1, |p| p.get()));
    let dests = compiled.dest_steps.len();
    let mut results = vec![0.0; rounds.len() * dests];
    if rounds.is_empty() || dests == 0 {
        // Nothing to fan out (but a destination-free schedule still
        // counts its rounds and checks its inputs).
        if !rounds.is_empty() {
            let mut state = ExecState::batched(compiled, width);
            compiled.run_rounds_batched(rounds, &mut state, &mut results);
        }
        return EpochSlab {
            results,
            rounds: rounds.len(),
            dests,
            cost: compiled.round_cost,
        };
    }
    parallel::parallel_chunks_mut(
        rounds,
        &mut results,
        dests,
        threads,
        || ExecState::batched(compiled, width),
        |state, round_chunk, out_chunk| {
            compiled.run_rounds_batched(round_chunk, state, out_chunk);
            // Chunk done: fold this worker's round count into the global
            // plane registry now, not just at arena drop — the registry
            // is complete the moment the fan-out returns.
            state.flush_obs();
        },
    );
    EpochSlab {
        results,
        rounds: rounds.len(),
        dests,
        cost: compiled.round_cost,
    }
}

/// Compatibility shape of [`run_epochs_slab`]: runs at the default lane
/// width and expands the slab into per-round [`EpochOutcome`]s. Identical
/// bits at any thread count.
///
/// # Panics
/// Panics if any reading vector has the wrong length.
pub fn run_epochs(
    compiled: &CompiledSchedule,
    rounds: &[Vec<f64>],
    threads: usize,
) -> Vec<EpochOutcome> {
    run_epochs_slab(compiled, rounds, DEFAULT_LANE_WIDTH, threads).into_outcomes()
}

/// A [`PlanMaintainer`] paired with the compiled executor for its current
/// plan. Workload/route updates go through the maintainer's incremental
/// re-optimization (Corollary 1); the driver then recompiles **only** if
/// the update changed the plan structure — any re-solved, added, or
/// removed edge, or any change to the `(source, destination)` pair set or
/// an aggregate kind (which can change the schedule without touching an
/// edge problem, e.g. a destination adding itself as a local source).
/// Pure re-weights — the common steady-state tuning case — just re-bake
/// the `α` weights into the existing ops.
#[derive(Clone, Debug)]
pub struct EpochDriver {
    maintainer: PlanMaintainer,
    compiled: CompiledSchedule,
    recompiles: usize,
    refreshes: usize,
}

/// Structure-relevant view of a workload: per destination, its kind and
/// sorted source set (weights excluded on purpose).
fn spec_shape(spec: &AggregationSpec) -> Vec<(NodeId, AggregateKind, Vec<NodeId>)> {
    spec.functions()
        .map(|(d, f)| (d, f.kind(), f.sources().collect()))
        .collect()
}

impl EpochDriver {
    /// Builds the initial plan and compiles it.
    ///
    /// # Panics
    /// Panics if the initial plan is unschedulable.
    pub fn new(
        network: impl Into<std::sync::Arc<Network>>,
        spec: AggregationSpec,
        mode: RoutingMode,
    ) -> Self {
        Self::from_maintainer(PlanMaintainer::new(network, spec, mode))
    }

    /// Wraps an existing maintainer, compiling its current plan.
    ///
    /// # Panics
    /// Panics if the maintained plan is unschedulable.
    pub fn from_maintainer(maintainer: PlanMaintainer) -> Self {
        let compiled =
            CompiledSchedule::compile(maintainer.network(), maintainer.spec(), maintainer.plan())
                .expect("maintained plan must be schedulable");
        EpochDriver {
            maintainer,
            compiled,
            recompiles: 0,
            refreshes: 0,
        }
    }

    /// The compiled executor for the current plan.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }

    /// The underlying maintainer (plan, spec, routing).
    #[inline]
    pub fn maintainer(&self) -> &PlanMaintainer {
        &self.maintainer
    }

    /// How many updates forced a full recompile.
    #[inline]
    pub fn recompiles(&self) -> usize {
        self.recompiles
    }

    /// How many updates were absorbed as in-place weight refreshes.
    #[inline]
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Applies one workload update and resynchronizes the compiled
    /// executor (recompile or weight refresh, as the update demands).
    pub fn apply(&mut self, update: WorkloadUpdate) -> UpdateStats {
        let shape_before = spec_shape(self.maintainer.spec());
        let stats = self.maintainer.apply(update);
        self.resync(stats, &shape_before);
        stats
    }

    /// Installs new routing tables (see
    /// [`PlanMaintainer::apply_route_change`]) and resynchronizes.
    pub fn apply_route_change(&mut self, new_routing: RoutingTables) -> UpdateStats {
        let shape_before = spec_shape(self.maintainer.spec());
        let stats = self.maintainer.apply_route_change(new_routing);
        self.resync(stats, &shape_before);
        stats
    }

    fn resync(
        &mut self,
        stats: UpdateStats,
        shape_before: &[(NodeId, AggregateKind, Vec<NodeId>)],
    ) {
        let structural = stats.edges_reoptimized > 0
            || stats.edges_added_or_removed > 0
            || spec_shape(self.maintainer.spec()) != shape_before;
        if structural {
            self.compiled = CompiledSchedule::compile(
                self.maintainer.network(),
                self.maintainer.spec(),
                self.maintainer.plan(),
            )
            .expect("maintained plan must be schedulable");
            self.recompiles += 1;
            crate::telemetry::counter(crate::telemetry::names::EXEC_RECOMPILES, 1);
        } else {
            self.compiled.refresh_weights(self.maintainer.spec());
            self.refreshes += 1;
            crate::telemetry::counter(crate::telemetry::names::EXEC_REFRESHES, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateKind;
    use crate::baselines::{plan_for_algorithm, Algorithm};
    use crate::runtime::execute_round;
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 1.25 - 3.0))
            .collect()
    }

    fn spec(kind: AggregateKind) -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::new(
                kind,
                [
                    (NodeId(0), 1.0),
                    (NodeId(1), 2.0),
                    (NodeId(3), 0.5),
                    (NodeId(6), 1.5),
                ],
            ),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::new(kind, [(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s.add_function(
            NodeId(3),
            AggregateFunction::new(kind, [(NodeId(0), 2.0), (NodeId(12), 1.0)]),
        );
        s
    }

    #[test]
    fn compiled_is_bit_identical_to_reference() {
        let net = network();
        let vals = readings(&net);
        for kind in [
            AggregateKind::WeightedSum,
            AggregateKind::WeightedAverage,
            AggregateKind::WeightedVariance,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Count,
        ] {
            let spec = spec(kind);
            for mode in [
                RoutingMode::ShortestPathTrees,
                RoutingMode::SharedSpanningTree,
            ] {
                let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
                for alg in Algorithm::PLANNED {
                    let plan = plan_for_algorithm(&net, &spec, &routing, alg);
                    let reference = execute_round(&net, &spec, &plan, &vals);
                    let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
                    let mut state = ExecState::for_schedule(&compiled);
                    let cost = compiled.run_round_on(&vals, &mut state);
                    assert_eq!(cost, reference.cost, "{kind:?}/{mode:?}");
                    assert_eq!(
                        state.result_map(&compiled),
                        reference.results,
                        "{kind:?}/{mode:?}: results must be bit-identical"
                    );
                    assert_eq!(
                        compiled.schedule().messages_per_edge(),
                        reference.schedule.messages_per_edge()
                    );
                }
            }
        }
    }

    #[test]
    fn run_epochs_matches_serial_at_any_thread_count() {
        let net = network();
        let spec = spec(AggregateKind::WeightedAverage);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
        let slots = compiled.sources().len();
        let rounds: Vec<Vec<f64>> = (0..17)
            .map(|r| {
                (0..slots)
                    .map(|s| (r * 31 + s) as f64 * 0.5 - 4.0)
                    .collect()
            })
            .collect();
        let serial = run_epochs(&compiled, &rounds, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_epochs(&compiled, &rounds, threads),
                serial,
                "threads={threads}"
            );
        }
        // And each epoch equals a standalone run_round.
        let mut state = ExecState::for_schedule(&compiled);
        for (round, outcome) in rounds.iter().zip(&serial) {
            state.readings_mut().copy_from_slice(round);
            let cost = compiled.run_round(&mut state);
            assert_eq!(state.results(), outcome.results.as_slice());
            assert_eq!(cost, outcome.cost);
        }
    }

    #[test]
    fn reweight_refreshes_without_recompile() {
        let net = network();
        let vals = readings(&net);
        let mut driver = EpochDriver::new(
            net.clone(),
            spec(AggregateKind::WeightedSum),
            RoutingMode::ShortestPathTrees,
        );
        // Re-weight an existing pair: no edge problem changes, so the
        // driver must absorb it as a weight refresh.
        let stats = driver.apply(WorkloadUpdate::AddSource {
            destination: NodeId(12),
            source: NodeId(1),
            weight: 7.5,
        });
        assert_eq!(
            stats.edges_reoptimized, 0,
            "pure re-weight must reuse every edge"
        );
        assert_eq!(driver.refreshes(), 1);
        assert_eq!(driver.recompiles(), 0);
        let reference = execute_round(
            driver.maintainer().network(),
            driver.maintainer().spec(),
            driver.maintainer().plan(),
            &vals,
        );
        let mut state = ExecState::for_schedule(driver.compiled());
        let cost = driver.compiled().run_round_on(&vals, &mut state);
        assert_eq!(state.result_map(driver.compiled()), reference.results);
        assert_eq!(cost, reference.cost);
    }

    #[test]
    fn structural_updates_recompile_and_stay_correct() {
        let net = network();
        let vals = readings(&net);
        let mut driver = EpochDriver::new(
            net.clone(),
            spec(AggregateKind::WeightedSum),
            RoutingMode::ShortestPathTrees,
        );
        let check = |driver: &EpochDriver| {
            let reference = execute_round(
                driver.maintainer().network(),
                driver.maintainer().spec(),
                driver.maintainer().plan(),
                &vals,
            );
            let mut state = ExecState::for_schedule(driver.compiled());
            driver.compiled().run_round_on(&vals, &mut state);
            assert_eq!(state.result_map(driver.compiled()), reference.results);
        };
        // New destination: edges change, recompile.
        driver.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(5),
            function: AggregateFunction::weighted_sum([(NodeId(10), 1.0), (NodeId(14), 2.0)]),
        });
        assert_eq!(driver.recompiles(), 1);
        check(&driver);
        // A destination adding *itself* as a source touches no edge
        // problem (the path has length one) but changes the schedule's
        // final inputs — the shape diff must force a recompile.
        let stats = driver.apply(WorkloadUpdate::AddSource {
            destination: NodeId(5),
            source: NodeId(5),
            weight: 3.0,
        });
        assert_eq!(stats.edges_reoptimized, 0, "local source touches no edge");
        assert_eq!(driver.recompiles(), 2, "shape change must recompile");
        check(&driver);
        // Source removal: edges shrink, recompile.
        driver.apply(WorkloadUpdate::RemoveSource {
            destination: NodeId(12),
            source: NodeId(6),
        });
        assert_eq!(driver.recompiles(), 3);
        check(&driver);
    }
}
