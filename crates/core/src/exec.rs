//! Compiled round execution: build the schedule once, run epochs
//! allocation-free.
//!
//! The paper's steady-state model (§2) runs one plan unchanged for
//! thousands of epochs between workload updates, yet the reference
//! executor ([`crate::runtime::execute_round`]) rebuilds the full
//! [`Schedule`] — including the greedy message merger and its per-edge
//! acyclicity checks — on every round. [`CompiledSchedule`] lowers the
//! schedule **once** into flat dense-index arrays:
//!
//! * source node ids are interned to dense `u32` slots by a [`NodeIndex`];
//! * record units are listed in topological (wait-for) order, so every
//!   dependency is computed before its consumer, exactly as the reference
//!   path walks `Schedule::topo_order`;
//! * each unit's contributions become a contiguous run of [`Op`]s —
//!   `Pre { slot, alpha }` with the pre-aggregation weight baked in, or
//!   `FromUnit { unit }` pointing at an already-computed record;
//! * per-destination final evaluations are laid out in ascending
//!   destination order (the `BTreeMap` iteration order of the reference);
//! * the round's [`RoundCost`] is precomputed (it only depends on the
//!   message structure, not the readings).
//!
//! [`CompiledSchedule::run_round`] then executes one epoch against an
//! [`ExecState`] scratch arena with **zero heap allocation** and no map
//! lookups: every access is an index into a flat array. Because the ops
//! preserve the reference path's contribution order and use the same
//! kind-level arithmetic ([`AggregateKind::pre_aggregate_weighted`],
//! [`AggregateKind::merge_records`], [`AggregateKind::evaluate_record`]),
//! the results are **bit-identical** to `execute_round` — the same float
//! associativity order, asserted by `tests/exec_equivalence.rs`.
//!
//! [`run_epochs`] fans independent rounds (distinct reading vectors)
//! across the [`crate::parallel`] worker pool with deterministic in-order
//! collection, and [`EpochDriver`] pairs a compiled schedule with a
//! [`PlanMaintainer`] so a long-running campaign recompiles only when an
//! update actually changed the plan's structure (Corollary 1) and merely
//! refreshes baked-in weights otherwise.

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::{EnergyModel, Network, RoutingMode, RoutingTables};

use crate::agg::{AggregateFunction, AggregateKind, PartialRecord};
use crate::dynamics::{PlanMaintainer, UpdateStats, WorkloadUpdate};
use crate::metrics::RoundCost;
use crate::parallel;
use crate::plan::GlobalPlan;
use crate::schedule::{build_schedule, Contribution, Schedule, UnitContent};
use crate::spec::AggregationSpec;

/// Dense interning of node ids: the sorted set of ids is the slot space,
/// so `slot` is a binary search (compile/load time only — the hot path
/// works purely in slots).
#[derive(Clone, Debug)]
pub struct NodeIndex {
    ids: Vec<NodeId>,
}

impl NodeIndex {
    fn from_ids(mut ids: Vec<NodeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        NodeIndex { ids }
    }

    /// The dense slot of `id`, if interned.
    #[inline]
    pub fn slot(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The node id at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn id(&self, slot: usize) -> NodeId {
        self.ids[slot]
    }

    /// All interned ids in slot order (ascending).
    #[inline]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of interned ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no ids are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One lowered contribution. Mirrors [`Contribution`] with all lookups
/// (weight, reading slot) resolved at compile time. Crate-visible so the
/// fault-tolerant executor ([`crate::faults`]) can replay the same op
/// stream under degraded delivery.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// Pre-aggregate the reading in `slot` with weight `alpha`.
    Pre { slot: u32, alpha: f64 },
    /// Merge the record computed for unit `unit`.
    FromUnit { unit: u32 },
}

/// One record unit to compute, in topological order. The ops in
/// `first_op .. first_op + op_count` are folded left-to-right in the
/// reference path's contribution order.
#[derive(Clone, Debug)]
pub(crate) struct RecordStep {
    /// Index into [`ExecState::records`] (== the unit's schedule index).
    pub(crate) unit: u32,
    /// The destination whose merging function applies.
    pub(crate) dest: NodeId,
    pub(crate) kind: AggregateKind,
    pub(crate) first_op: u32,
    pub(crate) op_count: u32,
}

/// One destination's final evaluation, in ascending destination order.
#[derive(Clone, Debug)]
pub(crate) struct DestStep {
    pub(crate) dest: NodeId,
    pub(crate) kind: AggregateKind,
    pub(crate) first_op: u32,
    pub(crate) op_count: u32,
}

/// A schedule lowered to flat dense-index arrays, executable with zero
/// heap allocation per round. Built once per plan; see the module docs.
#[derive(Clone, Debug)]
pub struct CompiledSchedule {
    pub(crate) sources: NodeIndex,
    pub(crate) ops: Vec<Op>,
    pub(crate) record_steps: Vec<RecordStep>,
    pub(crate) dest_steps: Vec<DestStep>,
    pub(crate) unit_count: usize,
    round_cost: RoundCost,
    schedule: Arc<Schedule>,
}

impl CompiledSchedule {
    /// Builds the schedule for `plan` and lowers it. Errors if the plan
    /// is unschedulable (wait-for cycle, Theorem 2).
    ///
    /// Source interning reuses the plan's [`crate::topo::Topology`]
    /// snapshot: every demanded `(s, d)` pair produces exactly one `Pre(s)`
    /// contribution somewhere in the schedule (at the raw→record
    /// transition, or as a destination input when the pair stays raw or is
    /// local), so the topology's source set equals the set of `Pre`
    /// sources and no scan over the contributions is needed.
    pub fn compile(
        network: &Network,
        spec: &AggregationSpec,
        plan: &GlobalPlan,
    ) -> Result<Self, String> {
        let _span = crate::telemetry::span(crate::telemetry::names::EXEC_COMPILE_NS);
        crate::telemetry::counter(crate::telemetry::names::EXEC_COMPILES, 1);
        let schedule = build_schedule(spec, plan)?;
        let sources = NodeIndex::from_ids(plan.topology().sources().to_vec());
        Ok(Self::from_schedule_with_sources(
            network.energy(),
            spec,
            schedule,
            sources,
        ))
    }

    /// Lowers an already-built schedule, deriving the source set by
    /// scanning its `Pre` contributions.
    pub fn from_schedule(energy: &EnergyModel, spec: &AggregationSpec, schedule: Schedule) -> Self {
        let sources = NodeIndex::from_ids(pre_sources(&schedule));
        Self::from_schedule_with_sources(energy, spec, schedule, sources)
    }

    fn from_schedule_with_sources(
        energy: &EnergyModel,
        spec: &AggregationSpec,
        schedule: Schedule,
        sources: NodeIndex,
    ) -> Self {
        debug_assert_eq!(
            sources.ids(),
            NodeIndex::from_ids(pre_sources(&schedule)).ids(),
            "interned sources must equal the schedule's Pre sources"
        );
        let function = |d: NodeId| -> &AggregateFunction {
            spec.function(d).expect("destination has a function")
        };
        let mut ops: Vec<Op> = Vec::new();
        let mut lower_run = |f: &AggregateFunction, contribs: &[Contribution]| -> (u32, u32) {
            let first_op = ops.len() as u32;
            for c in contribs {
                ops.push(match *c {
                    Contribution::Pre(s) => Op::Pre {
                        slot: sources.slot(s).expect("source interned above") as u32,
                        alpha: f
                            .weight(s)
                            .unwrap_or_else(|| panic!("{s} is not a source of this function")),
                    },
                    Contribution::FromUnit(u) => Op::FromUnit { unit: u as u32 },
                });
            }
            (first_op, ops.len() as u32 - first_op)
        };

        // Record units in topological order — dependencies first, exactly
        // like the reference walk over `topo_order`.
        let mut record_steps: Vec<RecordStep> = Vec::new();
        for &u in &schedule.topo_order {
            let UnitContent::Record(ref group) = schedule.units[u].content else {
                continue;
            };
            let f = function(group.destination);
            let (first_op, op_count) = lower_run(f, &schedule.contributions[u]);
            record_steps.push(RecordStep {
                unit: u as u32,
                dest: group.destination,
                kind: f.kind(),
                first_op,
                op_count,
            });
        }

        // Destination evaluations in ascending id order (BTreeMap order).
        let mut dest_steps: Vec<DestStep> = Vec::new();
        for (&d, inputs) in &schedule.destination_inputs {
            let f = function(d);
            let (first_op, op_count) = lower_run(f, inputs);
            dest_steps.push(DestStep {
                dest: d,
                kind: f.kind(),
                first_op,
                op_count,
            });
        }

        let round_cost = schedule.round_cost(energy);
        CompiledSchedule {
            sources,
            ops,
            record_steps,
            dest_steps,
            unit_count: schedule.units.len(),
            round_cost,
            schedule: Arc::new(schedule),
        }
    }

    /// The interned source ids (slot order defines the layout of
    /// [`ExecState::readings_mut`] and of each row passed to
    /// [`run_epochs`]).
    #[inline]
    pub fn sources(&self) -> &NodeIndex {
        &self.sources
    }

    /// Destinations in result order (ascending id).
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dest_steps.iter().map(|s| s.dest)
    }

    /// Number of destinations (length of [`ExecState::results`]).
    #[inline]
    pub fn destination_count(&self) -> usize {
        self.dest_steps.len()
    }

    /// The underlying schedule (message structure, per-edge counts).
    #[inline]
    pub fn schedule(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The precomputed per-round cost (independent of readings).
    #[inline]
    pub fn round_cost(&self) -> RoundCost {
        self.round_cost
    }

    /// Executes one round against the readings already loaded in `state`
    /// (see [`ExecState::load_readings`] / [`ExecState::readings_mut`]),
    /// leaving per-destination results in [`ExecState::results`].
    ///
    /// This is the hot path: no heap allocation, no map lookups.
    ///
    /// # Panics
    /// Panics if `state` was sized for a different compiled schedule.
    pub fn run_round(&self, state: &mut ExecState) -> RoundCost {
        // One relaxed load when tracing is off — the documented cost of
        // instrumenting the hot path.
        crate::telemetry::counter(crate::telemetry::names::EXEC_ROUNDS, 1);
        assert_eq!(
            state.records.len(),
            self.unit_count,
            "state/schedule mismatch"
        );
        assert_eq!(
            state.readings.len(),
            self.sources.len(),
            "state/schedule mismatch"
        );
        assert_eq!(
            state.results.len(),
            self.dest_steps.len(),
            "state/schedule mismatch"
        );
        for step in &self.record_steps {
            let ops = &self.ops[step.first_op as usize..(step.first_op + step.op_count) as usize];
            let acc = fold_ops(step.kind, ops, &state.readings, &state.records);
            state.records[step.unit as usize] = Some(acc.unwrap_or_else(|| {
                panic!(
                    "record unit {} for {} has no contributions",
                    step.unit, step.dest
                )
            }));
        }
        for (i, step) in self.dest_steps.iter().enumerate() {
            let ops = &self.ops[step.first_op as usize..(step.first_op + step.op_count) as usize];
            let acc = fold_ops(step.kind, ops, &state.readings, &state.records);
            let record =
                acc.unwrap_or_else(|| panic!("destination {} received no inputs", step.dest));
            state.results[i] = step.kind.evaluate_record(record);
        }
        self.round_cost
    }

    /// Convenience wrapper: loads `readings` (keyed by node id, as the
    /// reference path takes them) into `state` and runs one round.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_round_on(
        &self,
        readings: &BTreeMap<NodeId, f64>,
        state: &mut ExecState,
    ) -> RoundCost {
        state.load_readings(self, readings);
        self.run_round(state)
    }

    /// Re-bakes the pre-aggregation weights `α_{d,s}` from `spec` into the
    /// compiled ops, in place. Sound only for pure re-weight updates —
    /// ones that change no `(source, destination)` pair, no aggregate
    /// kind, and no routing — because those leave every per-edge problem
    /// (and hence the schedule structure) unchanged while still changing
    /// the arithmetic. [`EpochDriver`] decides refresh-vs-recompile.
    ///
    /// # Panics
    /// Panics if a destination or source disappeared from `spec`, or if a
    /// destination's aggregate kind changed (both require a recompile).
    pub fn refresh_weights(&mut self, spec: &AggregationSpec) {
        let runs: Vec<(NodeId, AggregateKind, u32, u32)> = self
            .record_steps
            .iter()
            .map(|s| (s.dest, s.kind, s.first_op, s.op_count))
            .chain(
                self.dest_steps
                    .iter()
                    .map(|s| (s.dest, s.kind, s.first_op, s.op_count)),
            )
            .collect();
        for (dest, kind, first_op, op_count) in runs {
            let f = spec
                .function(dest)
                .unwrap_or_else(|| panic!("no function at {dest}; recompile instead"));
            assert_eq!(
                f.kind(),
                kind,
                "aggregate kind changed at {dest}; recompile instead"
            );
            for op in &mut self.ops[first_op as usize..(first_op + op_count) as usize] {
                if let Op::Pre { slot, alpha } = op {
                    let s = self.sources.ids[*slot as usize];
                    *alpha = f
                        .weight(s)
                        .unwrap_or_else(|| panic!("{s} no longer a source of {dest}; recompile"));
                }
            }
        }
    }
}

/// Every source that appears as a `Pre` contribution in `schedule`
/// (duplicates included; callers dedup via [`NodeIndex::from_ids`]).
fn pre_sources(schedule: &Schedule) -> Vec<NodeId> {
    let mut source_ids: Vec<NodeId> = Vec::new();
    let pres = schedule
        .contributions
        .iter()
        .chain(schedule.destination_inputs.values());
    for contribs in pres {
        for c in contribs {
            if let Contribution::Pre(s) = c {
                source_ids.push(*s);
            }
        }
    }
    source_ids
}

/// Left fold of a contiguous op run, in the reference path's contribution
/// order — the float associativity is identical by construction.
#[inline]
pub(crate) fn fold_ops(
    kind: AggregateKind,
    ops: &[Op],
    readings: &[f64],
    records: &[Option<PartialRecord>],
) -> Option<PartialRecord> {
    let mut acc: Option<PartialRecord> = None;
    for op in ops {
        let part = match *op {
            Op::Pre { slot, alpha } => kind.pre_aggregate_weighted(alpha, readings[slot as usize]),
            Op::FromUnit { unit } => {
                records[unit as usize].expect("topological order computes dependencies first")
            }
        };
        acc = Some(match acc {
            None => part,
            Some(prev) => kind.merge_records(prev, part),
        });
    }
    acc
}

/// Reusable scratch arena for [`CompiledSchedule::run_round`]. Allocate
/// once (per worker), run any number of rounds.
#[derive(Clone, Debug)]
pub struct ExecState {
    /// One reading per interned source, in slot order.
    readings: Vec<f64>,
    /// One record slot per schedule unit (raw units stay `None`).
    records: Vec<Option<PartialRecord>>,
    /// One result per destination, in ascending destination order.
    results: Vec<f64>,
}

impl ExecState {
    /// Allocates scratch sized for `compiled`.
    pub fn for_schedule(compiled: &CompiledSchedule) -> Self {
        ExecState {
            readings: vec![0.0; compiled.sources.len()],
            records: vec![None; compiled.unit_count],
            results: vec![0.0; compiled.dest_steps.len()],
        }
    }

    /// Copies the readings of every interned source out of a per-node map
    /// (the reference path's input shape).
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn load_readings(&mut self, compiled: &CompiledSchedule, readings: &BTreeMap<NodeId, f64>) {
        for (slot, &s) in compiled.sources.ids().iter().enumerate() {
            self.readings[slot] = *readings
                .get(&s)
                .unwrap_or_else(|| panic!("no reading for source {s}"));
        }
    }

    /// Mutable access to the reading slots (slot order =
    /// [`CompiledSchedule::sources`] order), for callers that already
    /// keep readings dense.
    #[inline]
    pub fn readings_mut(&mut self) -> &mut [f64] {
        &mut self.readings
    }

    /// Per-destination results of the last round, in ascending
    /// destination order ([`CompiledSchedule::destinations`]).
    #[inline]
    pub fn results(&self) -> &[f64] {
        &self.results
    }

    /// The last round's results keyed by destination id (allocates — use
    /// [`ExecState::results`] on the hot path).
    pub fn result_map(&self, compiled: &CompiledSchedule) -> BTreeMap<NodeId, f64> {
        compiled
            .dest_steps
            .iter()
            .zip(&self.results)
            .map(|(s, &r)| (s.dest, r))
            .collect()
    }
}

/// One epoch's outcome from [`run_epochs`].
#[derive(Clone, Debug, PartialEq)]
pub struct EpochOutcome {
    /// Per-destination results in ascending destination order.
    pub results: Vec<f64>,
    /// The (readings-independent) round cost.
    pub cost: RoundCost,
}

/// Runs one round per entry of `rounds` — each a dense reading vector in
/// [`CompiledSchedule::sources`] slot order — fanned across up to
/// `threads` workers from the [`crate::parallel`] pool. Each worker owns
/// one [`ExecState`]; results come back in input order regardless of
/// scheduling, so the output is identical at any thread count.
///
/// # Panics
/// Panics if any reading vector has the wrong length.
pub fn run_epochs(
    compiled: &CompiledSchedule,
    rounds: &[Vec<f64>],
    threads: usize,
) -> Vec<EpochOutcome> {
    let _span = crate::telemetry::span(crate::telemetry::names::EXEC_RUN_EPOCHS_NS);
    parallel::parallel_map_with(
        rounds,
        threads,
        || ExecState::for_schedule(compiled),
        |state, readings| {
            assert_eq!(
                readings.len(),
                compiled.sources.len(),
                "reading vector length must match the interned source count"
            );
            state.readings_mut().copy_from_slice(readings);
            let cost = compiled.run_round(state);
            EpochOutcome {
                results: state.results().to_vec(),
                cost,
            }
        },
    )
}

/// A [`PlanMaintainer`] paired with the compiled executor for its current
/// plan. Workload/route updates go through the maintainer's incremental
/// re-optimization (Corollary 1); the driver then recompiles **only** if
/// the update changed the plan structure — any re-solved, added, or
/// removed edge, or any change to the `(source, destination)` pair set or
/// an aggregate kind (which can change the schedule without touching an
/// edge problem, e.g. a destination adding itself as a local source).
/// Pure re-weights — the common steady-state tuning case — just re-bake
/// the `α` weights into the existing ops.
#[derive(Clone, Debug)]
pub struct EpochDriver {
    maintainer: PlanMaintainer,
    compiled: CompiledSchedule,
    recompiles: usize,
    refreshes: usize,
}

/// Structure-relevant view of a workload: per destination, its kind and
/// sorted source set (weights excluded on purpose).
fn spec_shape(spec: &AggregationSpec) -> Vec<(NodeId, AggregateKind, Vec<NodeId>)> {
    spec.functions()
        .map(|(d, f)| (d, f.kind(), f.sources().collect()))
        .collect()
}

impl EpochDriver {
    /// Builds the initial plan and compiles it.
    ///
    /// # Panics
    /// Panics if the initial plan is unschedulable.
    pub fn new(network: Network, spec: AggregationSpec, mode: RoutingMode) -> Self {
        Self::from_maintainer(PlanMaintainer::new(network, spec, mode))
    }

    /// Wraps an existing maintainer, compiling its current plan.
    ///
    /// # Panics
    /// Panics if the maintained plan is unschedulable.
    pub fn from_maintainer(maintainer: PlanMaintainer) -> Self {
        let compiled =
            CompiledSchedule::compile(maintainer.network(), maintainer.spec(), maintainer.plan())
                .expect("maintained plan must be schedulable");
        EpochDriver {
            maintainer,
            compiled,
            recompiles: 0,
            refreshes: 0,
        }
    }

    /// The compiled executor for the current plan.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }

    /// The underlying maintainer (plan, spec, routing).
    #[inline]
    pub fn maintainer(&self) -> &PlanMaintainer {
        &self.maintainer
    }

    /// How many updates forced a full recompile.
    #[inline]
    pub fn recompiles(&self) -> usize {
        self.recompiles
    }

    /// How many updates were absorbed as in-place weight refreshes.
    #[inline]
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Applies one workload update and resynchronizes the compiled
    /// executor (recompile or weight refresh, as the update demands).
    pub fn apply(&mut self, update: WorkloadUpdate) -> UpdateStats {
        let shape_before = spec_shape(self.maintainer.spec());
        let stats = self.maintainer.apply(update);
        self.resync(stats, &shape_before);
        stats
    }

    /// Installs new routing tables (see
    /// [`PlanMaintainer::apply_route_change`]) and resynchronizes.
    pub fn apply_route_change(&mut self, new_routing: RoutingTables) -> UpdateStats {
        let shape_before = spec_shape(self.maintainer.spec());
        let stats = self.maintainer.apply_route_change(new_routing);
        self.resync(stats, &shape_before);
        stats
    }

    fn resync(
        &mut self,
        stats: UpdateStats,
        shape_before: &[(NodeId, AggregateKind, Vec<NodeId>)],
    ) {
        let structural = stats.edges_reoptimized > 0
            || stats.edges_added_or_removed > 0
            || spec_shape(self.maintainer.spec()) != shape_before;
        if structural {
            self.compiled = CompiledSchedule::compile(
                self.maintainer.network(),
                self.maintainer.spec(),
                self.maintainer.plan(),
            )
            .expect("maintained plan must be schedulable");
            self.recompiles += 1;
            crate::telemetry::counter(crate::telemetry::names::EXEC_RECOMPILES, 1);
        } else {
            self.compiled.refresh_weights(self.maintainer.spec());
            self.refreshes += 1;
            crate::telemetry::counter(crate::telemetry::names::EXEC_REFRESHES, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateKind;
    use crate::baselines::{plan_for_algorithm, Algorithm};
    use crate::runtime::execute_round;
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 1.25 - 3.0))
            .collect()
    }

    fn spec(kind: AggregateKind) -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::new(
                kind,
                [
                    (NodeId(0), 1.0),
                    (NodeId(1), 2.0),
                    (NodeId(3), 0.5),
                    (NodeId(6), 1.5),
                ],
            ),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::new(kind, [(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s.add_function(
            NodeId(3),
            AggregateFunction::new(kind, [(NodeId(0), 2.0), (NodeId(12), 1.0)]),
        );
        s
    }

    #[test]
    fn compiled_is_bit_identical_to_reference() {
        let net = network();
        let vals = readings(&net);
        for kind in [
            AggregateKind::WeightedSum,
            AggregateKind::WeightedAverage,
            AggregateKind::WeightedVariance,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Count,
        ] {
            let spec = spec(kind);
            for mode in [
                RoutingMode::ShortestPathTrees,
                RoutingMode::SharedSpanningTree,
            ] {
                let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
                for alg in Algorithm::PLANNED {
                    let plan = plan_for_algorithm(&net, &spec, &routing, alg);
                    let reference = execute_round(&net, &spec, &plan, &vals);
                    let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
                    let mut state = ExecState::for_schedule(&compiled);
                    let cost = compiled.run_round_on(&vals, &mut state);
                    assert_eq!(cost, reference.cost, "{kind:?}/{mode:?}");
                    assert_eq!(
                        state.result_map(&compiled),
                        reference.results,
                        "{kind:?}/{mode:?}: results must be bit-identical"
                    );
                    assert_eq!(
                        compiled.schedule().messages_per_edge(),
                        reference.schedule.messages_per_edge()
                    );
                }
            }
        }
    }

    #[test]
    fn run_epochs_matches_serial_at_any_thread_count() {
        let net = network();
        let spec = spec(AggregateKind::WeightedAverage);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
        let slots = compiled.sources().len();
        let rounds: Vec<Vec<f64>> = (0..17)
            .map(|r| {
                (0..slots)
                    .map(|s| (r * 31 + s) as f64 * 0.5 - 4.0)
                    .collect()
            })
            .collect();
        let serial = run_epochs(&compiled, &rounds, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_epochs(&compiled, &rounds, threads),
                serial,
                "threads={threads}"
            );
        }
        // And each epoch equals a standalone run_round.
        let mut state = ExecState::for_schedule(&compiled);
        for (round, outcome) in rounds.iter().zip(&serial) {
            state.readings_mut().copy_from_slice(round);
            let cost = compiled.run_round(&mut state);
            assert_eq!(state.results(), outcome.results.as_slice());
            assert_eq!(cost, outcome.cost);
        }
    }

    #[test]
    fn reweight_refreshes_without_recompile() {
        let net = network();
        let vals = readings(&net);
        let mut driver = EpochDriver::new(
            net.clone(),
            spec(AggregateKind::WeightedSum),
            RoutingMode::ShortestPathTrees,
        );
        // Re-weight an existing pair: no edge problem changes, so the
        // driver must absorb it as a weight refresh.
        let stats = driver.apply(WorkloadUpdate::AddSource {
            destination: NodeId(12),
            source: NodeId(1),
            weight: 7.5,
        });
        assert_eq!(
            stats.edges_reoptimized, 0,
            "pure re-weight must reuse every edge"
        );
        assert_eq!(driver.refreshes(), 1);
        assert_eq!(driver.recompiles(), 0);
        let reference = execute_round(
            driver.maintainer().network(),
            driver.maintainer().spec(),
            driver.maintainer().plan(),
            &vals,
        );
        let mut state = ExecState::for_schedule(driver.compiled());
        let cost = driver.compiled().run_round_on(&vals, &mut state);
        assert_eq!(state.result_map(driver.compiled()), reference.results);
        assert_eq!(cost, reference.cost);
    }

    #[test]
    fn structural_updates_recompile_and_stay_correct() {
        let net = network();
        let vals = readings(&net);
        let mut driver = EpochDriver::new(
            net.clone(),
            spec(AggregateKind::WeightedSum),
            RoutingMode::ShortestPathTrees,
        );
        let check = |driver: &EpochDriver| {
            let reference = execute_round(
                driver.maintainer().network(),
                driver.maintainer().spec(),
                driver.maintainer().plan(),
                &vals,
            );
            let mut state = ExecState::for_schedule(driver.compiled());
            driver.compiled().run_round_on(&vals, &mut state);
            assert_eq!(state.result_map(driver.compiled()), reference.results);
        };
        // New destination: edges change, recompile.
        driver.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(5),
            function: AggregateFunction::weighted_sum([(NodeId(10), 1.0), (NodeId(14), 2.0)]),
        });
        assert_eq!(driver.recompiles(), 1);
        check(&driver);
        // A destination adding *itself* as a source touches no edge
        // problem (the path has length one) but changes the schedule's
        // final inputs — the shape diff must force a recompile.
        let stats = driver.apply(WorkloadUpdate::AddSource {
            destination: NodeId(5),
            source: NodeId(5),
            weight: 3.0,
        });
        assert_eq!(stats.edges_reoptimized, 0, "local source touches no edge");
        assert_eq!(driver.recompiles(), 2, "shape change must recompile");
        check(&driver);
        // Source removal: edges shrink, recompile.
        driver.apply(WorkloadUpdate::RemoveSource {
            destination: NodeId(12),
            source: NodeId(6),
        });
        assert_eq!(driver.recompiles(), 3);
        check(&driver);
    }
}
