//! The session flight recorder: a bounded per-round time series plus a
//! structured event log for the lossy runtime.
//!
//! The per-node planes ([`m2m_telemetry::timeseries::NodePlanes`]) answer
//! *where* energy and retries went; the [`FlightRecorder`] answers *when*:
//! a round-by-round coverage/energy timeline (sampled every
//! [`crate::config::Config::obs_every`] rounds) and a ring of structured
//! events — link drops, retry exhaustion, coverage loss, staleness
//! transitions, reroutes — each bounded by
//! [`crate::config::Config::obs_cap`], with eviction counted rather than
//! silent. [`crate::session::Session`] owns one when the configuration
//! enables observability and feeds it serially from each
//! [`FaultOutcome`]; [`FlightRecorder::dump`] renders recorder state,
//! running totals, and a snapshot of the global planes into one versioned
//! JSON document (the `m2m_obs` bin's input).
//!
//! Running totals are kept outside the rings, so reconciliation against
//! the global telemetry counters holds even after eviction.

use std::collections::{BTreeMap, VecDeque};

use m2m_graph::NodeId;
use m2m_telemetry::json::JsonValue;
use m2m_telemetry::timeseries::{self, Event, EventKind, EventRing, NO_NODE};

use crate::faults::FaultOutcome;

/// Default battery budget per node for the dump's battery-estimate
/// column: two AA cells at Mica2 draw, ≈ 2.16 × 10¹⁰ µJ.
pub const DEFAULT_BATTERY_UJ: f64 = 2.16e10;

/// One sampled point of the per-round timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundPoint {
    /// The session round this point describes.
    pub round: u64,
    /// Demanded (destination, source) pairs that were covered.
    pub covered: u64,
    /// Demanded (destination, source) pairs in total.
    pub demanded: u64,
    /// Destinations that ended the round with partial coverage.
    pub degraded: u64,
    /// Transmit energy this round (µJ), retransmissions included.
    pub tx_uj: f64,
    /// Receive energy this round (µJ).
    pub rx_uj: f64,
    /// Failed transmission attempts this round.
    pub retransmissions: u64,
    /// Messages abandoned this round.
    pub dropped: u64,
    /// Slots the round consumed.
    pub slots_used: u32,
}

impl RoundPoint {
    /// Covered fraction in `[0, 1]` (1.0 when nothing is demanded).
    pub fn coverage(&self) -> f64 {
        if self.demanded == 0 {
            1.0
        } else {
            self.covered as f64 / self.demanded as f64
        }
    }

    fn to_json(self) -> JsonValue {
        JsonValue::object()
            .with("round", self.round)
            .with("covered", self.covered)
            .with("demanded", self.demanded)
            .with("degraded", self.degraded)
            .with("tx_uj", JsonValue::float(self.tx_uj, 3))
            .with("rx_uj", JsonValue::float(self.rx_uj, 3))
            .with("retransmissions", self.retransmissions)
            .with("dropped", self.dropped)
            .with("slots_used", u64::from(self.slots_used))
    }
}

/// Running totals over every recorded round — ring-independent, so they
/// reconcile against the global telemetry counters even after eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsTotals {
    /// Rounds folded into the recorder.
    pub rounds: u64,
    /// Failed transmission attempts over all rounds.
    pub retransmissions: u64,
    /// Messages abandoned over all rounds.
    pub dropped: u64,
    /// Destination-rounds that ended with partial coverage.
    pub degraded_dest_rounds: u64,
    /// Total transmit energy (µJ).
    pub tx_uj: f64,
    /// Total receive energy (µJ).
    pub rx_uj: f64,
}

impl ObsTotals {
    fn to_json(self) -> JsonValue {
        JsonValue::object()
            .with("rounds", self.rounds)
            .with("retransmissions", self.retransmissions)
            .with("dropped", self.dropped)
            .with("degraded_dest_rounds", self.degraded_dest_rounds)
            .with("tx_uj", JsonValue::float(self.tx_uj, 3))
            .with("rx_uj", JsonValue::float(self.rx_uj, 3))
    }
}

/// The session-level flight recorder; see the module docs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    every: u64,
    cap: usize,
    series: VecDeque<RoundPoint>,
    series_evicted: u64,
    events: EventRing,
    /// Per-destination staleness mirror for transition events.
    stale: BTreeMap<NodeId, u64>,
    totals: ObsTotals,
}

impl FlightRecorder {
    /// A recorder sampling every `every`th round into a series ring of
    /// `cap` points, with a `cap`-bounded event ring.
    ///
    /// # Panics
    /// Panics if `every == 0` or `cap == 0`.
    pub fn new(every: u64, cap: usize) -> Self {
        assert!(every > 0, "obs stride must be positive");
        assert!(cap > 0, "obs ring capacity must be positive");
        FlightRecorder {
            every,
            cap,
            series: VecDeque::new(),
            series_evicted: 0,
            events: EventRing::new(cap),
            stale: BTreeMap::new(),
            totals: ObsTotals::default(),
        }
    }

    /// The sampling stride.
    #[inline]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The ring capacity (series points and events each).
    #[inline]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The retained timeline, oldest first.
    pub fn series(&self) -> impl Iterator<Item = &RoundPoint> {
        self.series.iter()
    }

    /// Series points evicted to stay within capacity.
    #[inline]
    pub fn series_evicted(&self) -> u64 {
        self.series_evicted
    }

    /// The retained structured events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Structured events evicted to stay within capacity.
    #[inline]
    pub fn events_evicted(&self) -> u64 {
        self.events.overwritten()
    }

    /// Ring-independent running totals.
    #[inline]
    pub fn totals(&self) -> &ObsTotals {
        &self.totals
    }

    fn push_event(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Folds one lossy round's outcome in: updates totals, emits link /
    /// coverage / staleness-transition events, and (every
    /// [`FlightRecorder::every`]th round) appends a series point.
    pub fn record_round(&mut self, round: u64, out: &FaultOutcome) {
        self.totals.rounds += 1;
        self.totals.retransmissions += out.retransmissions as u64;
        self.totals.dropped += out.dropped_messages as u64;
        self.totals.tx_uj += out.cost.tx_uj;
        self.totals.rx_uj += out.cost.rx_uj;

        for le in &out.link_events {
            self.push_event(Event {
                round,
                kind: if le.dropped {
                    EventKind::RetryExhausted
                } else {
                    EventKind::LinkDrop
                },
                a: u64::from(le.tail.0),
                b: u64::from(le.head.0),
                value: u64::from(le.failures),
            });
        }

        let mut covered = 0u64;
        let mut demanded = 0u64;
        let mut degraded = 0u64;
        for c in &out.coverage {
            covered += c.covered as u64;
            demanded += c.demanded as u64;
            if c.complete() {
                if let Some(age) = self.stale.remove(&c.destination) {
                    self.push_event(Event {
                        round,
                        kind: EventKind::StaleClear,
                        a: u64::from(c.destination.0),
                        b: NO_NODE,
                        value: age,
                    });
                }
            } else {
                degraded += 1;
                self.push_event(Event {
                    round,
                    kind: EventKind::CoverageLoss,
                    a: u64::from(c.destination.0),
                    b: NO_NODE,
                    value: c.missing.len() as u64,
                });
                let age = self.stale.entry(c.destination).or_insert(0);
                *age += 1;
                if *age == 1 {
                    self.push_event(Event {
                        round,
                        kind: EventKind::StaleEnter,
                        a: u64::from(c.destination.0),
                        b: NO_NODE,
                        value: 1,
                    });
                }
            }
        }
        self.totals.degraded_dest_rounds += degraded;

        if round % self.every == 0 {
            if self.series.len() == self.cap {
                self.series.pop_front();
                self.series_evicted += 1;
            }
            self.series.push_back(RoundPoint {
                round,
                covered,
                demanded,
                degraded,
                tx_uj: out.cost.tx_uj,
                rx_uj: out.cost.rx_uj,
                retransmissions: out.retransmissions as u64,
                dropped: out.dropped_messages as u64,
                slots_used: out.slots_used,
            });
        }
    }

    /// Folds one discrete-event round's simulator-specific facts in: a
    /// [`EventKind::SimRound`] event carrying the peak per-link queue
    /// depth, plus one [`EventKind::QueueOverflow`] event per node whose
    /// transmit queue exceeded the configured bound. Call alongside
    /// [`FlightRecorder::record_round`] (which folds the shared
    /// [`FaultOutcome`]) — `m2m_obs` then renders sim runs like any
    /// other lossy timeline, with the queue pressure on top.
    pub fn record_sim_round(&mut self, round: u64, out: &crate::sim::SimOutcome) {
        self.push_event(Event {
            round,
            kind: EventKind::SimRound,
            a: NO_NODE,
            b: NO_NODE,
            value: u64::from(out.peak_queue_depth),
        });
        for &(node, overflows) in &out.overflow_nodes {
            self.push_event(Event {
                round,
                kind: EventKind::QueueOverflow,
                a: u64::from(node.0),
                b: NO_NODE,
                value: u64::from(overflows),
            });
        }
    }

    /// Records a churn-gate decision at `round`: a fired reroute or an
    /// absorbed drift observation.
    pub fn record_churn(&mut self, round: u64, fired: bool) {
        self.push_event(Event {
            round,
            kind: if fired {
                EventKind::Reroute
            } else {
                EventKind::RerouteSuppressed
            },
            a: NO_NODE,
            b: NO_NODE,
            value: 0,
        });
        if fired {
            self.stale.clear();
        }
    }

    /// Records an externally applied route change at `round` (the
    /// staleness mirror resets with the tracker).
    pub fn record_route_change(&mut self, round: u64) {
        self.push_event(Event {
            round,
            kind: EventKind::RouteChange,
            a: NO_NODE,
            b: NO_NODE,
            value: 0,
        });
        self.stale.clear();
    }

    /// Renders the recorder plus a snapshot of the process-wide per-node
    /// planes into one versioned JSON document
    /// ([`timeseries::OBS_SCHEMA_VERSION`]). `battery_budget_uj` seeds
    /// the per-node battery-estimate column (see [`DEFAULT_BATTERY_UJ`]).
    pub fn dump(&self, battery_budget_uj: f64) -> JsonValue {
        let planes = timeseries::planes_snapshot();
        JsonValue::object()
            .with("m2m_obs_schema", timeseries::OBS_SCHEMA_VERSION)
            .with("stride", self.every)
            .with("cap", self.cap as u64)
            .with("totals", self.totals.to_json())
            .with(
                "series",
                JsonValue::Array(self.series.iter().map(|p| p.to_json()).collect()),
            )
            .with("series_evicted", self.series_evicted)
            .with("events", self.events.to_json())
            .with("events_evicted", self.events.overwritten())
            .with("battery_budget_uj", JsonValue::float(battery_budget_uj, 3))
            .with("plane_rounds", planes.rounds())
            .with("nodes", planes.to_json(battery_budget_uj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{DestCoverage, LinkEvent};
    use crate::metrics::RoundCost;

    fn outcome(complete: bool, retrans: usize, dropped: usize) -> FaultOutcome {
        FaultOutcome {
            results: vec![None],
            coverage: vec![DestCoverage {
                destination: NodeId(4),
                covered: usize::from(complete),
                demanded: 1,
                missing: if complete { vec![] } else { vec![NodeId(2)] },
            }],
            cost: RoundCost {
                tx_uj: 10.0,
                rx_uj: 4.0,
                ..RoundCost::default()
            },
            slots_used: 3,
            retransmissions: retrans,
            dropped_messages: dropped,
            delivered: complete,
            link_events: if complete {
                vec![]
            } else {
                vec![LinkEvent {
                    tail: NodeId(1),
                    head: NodeId(2),
                    failures: retrans as u32,
                    dropped: dropped > 0,
                }]
            },
        }
    }

    #[test]
    fn recorder_builds_timeline_and_staleness_transitions() {
        let mut rec = FlightRecorder::new(1, 16);
        rec.record_round(0, &outcome(true, 0, 0));
        rec.record_round(1, &outcome(false, 2, 0));
        rec.record_round(2, &outcome(false, 3, 1));
        rec.record_round(3, &outcome(true, 0, 0));
        assert_eq!(rec.totals().rounds, 4);
        assert_eq!(rec.totals().retransmissions, 5);
        assert_eq!(rec.totals().dropped, 1);
        assert_eq!(rec.totals().degraded_dest_rounds, 2);
        assert_eq!(rec.series().count(), 4);
        let kinds: Vec<EventKind> = rec.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::LinkDrop,
                EventKind::CoverageLoss,
                EventKind::StaleEnter,
                EventKind::RetryExhausted,
                EventKind::CoverageLoss,
                EventKind::StaleClear,
            ]
        );
        // StaleClear carries the outage length.
        let clear = rec
            .events()
            .find(|e| e.kind == EventKind::StaleClear)
            .unwrap();
        assert_eq!(clear.value, 2);
        assert_eq!(clear.round, 3);
    }

    #[test]
    fn stride_samples_series_but_never_events() {
        let mut rec = FlightRecorder::new(2, 16);
        for r in 0..5 {
            rec.record_round(r, &outcome(false, 1, 0));
        }
        let sampled: Vec<u64> = rec.series().map(|p| p.round).collect();
        assert_eq!(sampled, vec![0, 2, 4]);
        assert_eq!(rec.totals().rounds, 5, "totals see every round");
        assert!(
            rec.events()
                .filter(|e| e.kind == EventKind::LinkDrop)
                .count()
                == 5,
            "events are not strided"
        );
    }

    #[test]
    fn rings_evict_oldest_and_count_it() {
        let mut rec = FlightRecorder::new(1, 2);
        for r in 0..5 {
            rec.record_round(r, &outcome(true, 0, 0));
        }
        assert_eq!(rec.series().count(), 2);
        assert_eq!(rec.series_evicted(), 3);
        let retained: Vec<u64> = rec.series().map(|p| p.round).collect();
        assert_eq!(retained, vec![3, 4]);
        assert_eq!(rec.totals().rounds, 5, "totals ignore eviction");
    }

    #[test]
    fn churn_and_route_change_events_reset_the_stale_mirror() {
        let mut rec = FlightRecorder::new(1, 16);
        rec.record_round(0, &outcome(false, 1, 0));
        rec.record_churn(1, true);
        // After the reset the next degraded round re-enters staleness.
        rec.record_round(2, &outcome(false, 1, 0));
        let enters = rec
            .events()
            .filter(|e| e.kind == EventKind::StaleEnter)
            .count();
        assert_eq!(enters, 2);
        rec.record_churn(3, false);
        rec.record_route_change(4);
        let kinds: Vec<EventKind> = rec.events().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Reroute));
        assert!(kinds.contains(&EventKind::RerouteSuppressed));
        assert!(kinds.contains(&EventKind::RouteChange));
    }

    #[test]
    fn dump_is_versioned_and_parses_back() {
        let mut rec = FlightRecorder::new(1, 8);
        rec.record_round(0, &outcome(false, 2, 1));
        let doc = rec.dump(DEFAULT_BATTERY_UJ).render();
        let parsed = JsonValue::parse(&doc).expect("dump must parse");
        assert_eq!(
            parsed.get("m2m_obs_schema").and_then(JsonValue::as_u64),
            Some(timeseries::OBS_SCHEMA_VERSION)
        );
        assert!(parsed.get("series").is_some());
        assert!(parsed.get("events").is_some());
        assert!(parsed.get("nodes").is_some());
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("retransmissions"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
    }
}
