//! The many-to-many aggregation workload specification.
//!
//! §2.1: each node can be the destination of at most one aggregation
//! function (an assumption the paper notes is "simple to lift" — here the
//! map keying enforces it); `S` is the set of all sources, `D` the set of
//! all destinations, and `s ∼ d` the producer–consumer relation. A node
//! may be both a source and a destination.

use std::collections::BTreeMap;

use m2m_graph::NodeId;

use crate::agg::AggregateFunction;

/// The set of aggregation functions running in the network, keyed by
/// destination node.
#[derive(Clone, Debug, Default)]
pub struct AggregationSpec {
    functions: BTreeMap<NodeId, AggregateFunction>,
}

impl AggregationSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the aggregation function for destination `d`, replacing
    /// any previous function at `d`.
    pub fn add_function(&mut self, d: NodeId, f: AggregateFunction) {
        self.functions.insert(d, f);
    }

    /// Removes destination `d`'s function; returns it if present.
    pub fn remove_function(&mut self, d: NodeId) -> Option<AggregateFunction> {
        self.functions.remove(&d)
    }

    /// The function destined for `d`, if any.
    pub fn function(&self, d: NodeId) -> Option<&AggregateFunction> {
        self.functions.get(&d)
    }

    /// Mutable access to `d`'s function (used by dynamic adaptation).
    pub fn function_mut(&mut self, d: NodeId) -> Option<&mut AggregateFunction> {
        self.functions.get_mut(&d)
    }

    /// Iterator over `(destination, function)` in ascending destination id.
    pub fn functions(&self) -> impl Iterator<Item = (NodeId, &AggregateFunction)> {
        self.functions.iter().map(|(&d, f)| (d, f))
    }

    /// Number of aggregation functions (= number of destinations).
    #[inline]
    pub fn destination_count(&self) -> usize {
        self.functions.len()
    }

    /// All destinations `D`, ascending.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.functions.keys().copied()
    }

    /// All sources `S` (union over functions), sorted ascending.
    pub fn all_sources(&self) -> Vec<NodeId> {
        let mut sources: Vec<NodeId> = self.functions.values().flat_map(|f| f.sources()).collect();
        sources.sort_unstable();
        sources.dedup();
        sources
    }

    /// True if `s ∼ d`.
    pub fn is_source_of(&self, s: NodeId, d: NodeId) -> bool {
        self.functions.get(&d).is_some_and(|f| f.has_source(s))
    }

    /// Inverts the relation: for each source, the sorted destinations it
    /// feeds. This is the demand map multicast routing is built from (one
    /// tree per source spanning its destinations).
    pub fn source_to_destinations(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut map: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (&d, f) in &self.functions {
            for s in f.sources() {
                map.entry(s).or_default().push(d);
            }
        }
        for dests in map.values_mut() {
            dests.sort_unstable();
            dests.dedup();
        }
        map
    }

    /// Total number of `(s, d)` pairs in the `∼` relation.
    pub fn pair_count(&self) -> usize {
        self.functions.values().map(|f| f.source_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(10),
            AggregateFunction::weighted_sum([(NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        s.add_function(
            NodeId(11),
            AggregateFunction::weighted_sum([(NodeId(2), 2.0), (NodeId(3), 1.0)]),
        );
        s
    }

    #[test]
    fn relation_queries() {
        let s = spec();
        assert!(s.is_source_of(NodeId(2), NodeId(10)));
        assert!(s.is_source_of(NodeId(2), NodeId(11)));
        assert!(!s.is_source_of(NodeId(1), NodeId(11)));
        assert!(!s.is_source_of(NodeId(1), NodeId(99)));
        assert_eq!(s.pair_count(), 4);
        assert_eq!(s.destination_count(), 2);
        assert_eq!(s.all_sources(), vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn inversion_is_many_to_many() {
        let s = spec();
        let inv = s.source_to_destinations();
        assert_eq!(inv[&NodeId(2)], vec![NodeId(10), NodeId(11)]);
        assert_eq!(inv[&NodeId(1)], vec![NodeId(10)]);
        assert_eq!(inv.len(), 3);
    }

    #[test]
    fn one_function_per_destination() {
        let mut s = spec();
        // Replacing the function at a destination keeps the invariant.
        s.add_function(
            NodeId(10),
            AggregateFunction::weighted_sum([(NodeId(5), 1.0)]),
        );
        assert_eq!(s.destination_count(), 2);
        assert!(s.is_source_of(NodeId(5), NodeId(10)));
        assert!(!s.is_source_of(NodeId(1), NodeId(10)));
    }

    #[test]
    fn node_can_be_source_and_destination() {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(1),
            AggregateFunction::weighted_sum([(NodeId(2), 1.0)]),
        );
        s.add_function(
            NodeId(2),
            AggregateFunction::weighted_sum([(NodeId(1), 1.0)]),
        );
        assert!(s.is_source_of(NodeId(1), NodeId(2)));
        assert!(s.is_source_of(NodeId(2), NodeId(1)));
        assert_eq!(s.all_sources(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn removal() {
        let mut s = spec();
        assert!(s.remove_function(NodeId(10)).is_some());
        assert!(s.remove_function(NodeId(10)).is_none());
        assert_eq!(s.destination_count(), 1);
    }
}
