//! Many-to-many aggregation for sensor networks.
//!
//! This crate implements the optimizer and runtime of *Silberstein & Yang,
//! "Many-to-Many Aggregation for Sensor Networks" (ICDE 2007)*. Each
//! destination node needs an aggregate over readings at a set of source
//! nodes; sources serve many destinations. Given one multicast tree per
//! source (built by [`m2m_netsim::routing`]), the optimizer decides — per
//! directed tree edge, independently — which values cross the edge **raw**
//! (sharable via multicast) and which cross as destination-specific
//! **partial aggregate records** (compressed by in-network aggregation),
//! by solving a minimum-weight bipartite vertex cover (§2.2). Per-edge
//! optima compose into a consistent, globally optimal plan (Theorem 1).
//!
//! Crate map (paper section in parentheses):
//!
//! * [`agg`] — generalized algebraic aggregation functions: per-source
//!   pre-aggregation `w_{d,s}`, merging `m_d`, evaluation `e_d` (§2.1);
//! * [`spec`] — the many-to-many workload: which destination aggregates
//!   which sources, with what function;
//! * [`workload`] — the paper's workload generators (destination fraction,
//!   sources per destination, dispersion factor `d`; §4);
//! * [`edge_opt`] — the single-edge optimization as weighted bipartite
//!   vertex cover (§2.2);
//! * [`plan`] — global plan assembly, consistency verification and repair
//!   (§2.3, Theorem 1), and the §3 node state tables (Theorem 3);
//! * [`schedule`] — message units, wait-for graph (Theorem 2), greedy
//!   cycle-safe message merging (§3);
//! * [`tables`] — the §3 per-node state tables (raw / pre-aggregation /
//!   partial-aggregate / outgoing message, Theorem 3);
//! * [`baselines`] — the paper's comparison algorithms: multicast,
//!   aggregation, flood (§4);
//! * [`basestation`] — the §1 out-of-network control strawman, with
//!   per-node energy accounting;
//! * `runtime` — the interpreted reference executor, kept as a
//!   test-only oracle behind the `test-oracle` feature; the public
//!   execution surface is [`exec`];
//! * [`exec`] — the compiled steady-state executor: the schedule lowered
//!   once into flat dense-index arrays, epochs run allocation-free and
//!   bit-identical to the reference oracle, with batch fan-out over
//!   [`parallel`] and recompile-only-on-structure-change driving
//!   ([`dynamics`]);
//! * [`faults`] — the fault-tolerant epoch pipeline: seeded per-edge loss
//!   ([`m2m_netsim::failure::DeliveryModel`]), bounded retransmission
//!   charged through the energy model, per-destination coverage /
//!   staleness accounting, and the ETX-drift churn gate;
//! * [`config`] — the typed configuration surface ([`config::Config`]):
//!   one builder (seeded from the `M2M_*` environment) feeding threads,
//!   tracing, logging, and retry/hysteresis knobs to every layer;
//! * [`session`] — the unified [`session::Session`] facade wiring
//!   routing → plan → compiled executor → fault engine → churn loop,
//!   with one [`session::Session::run`] dispatching on the configured
//!   [`config::Runtime`];
//! * [`service`] — the multi-tenant plan service: many admitted
//!   [`spec::AggregationSpec`]s share one deployment, interned routing
//!   substrates, and a cross-tenant [`memo::SharedSolveCache`], with
//!   checkpoint/restore and the [`sharing`] multi-query index;
//! * [`node_machine`] — the *distributed* counterpart: event-driven node
//!   automata programmed solely by their §3 tables;
//! * [`sim`] — the discrete-event distributed runtime: every node a
//!   component on a shared event clock with bounded per-link queues and
//!   a binary-heap event wheel, drawing losses from the same seeded
//!   [`faults`] streams and bit-identical to the compiled executor when
//!   lossless (100k-node scale);
//! * [`dvc`] — the distributed per-edge vertex-cover solve: demand
//!   climbs the trees hop-by-hop, each edge's tail solves its own cover
//!   locally, and an availability wave repairs raw relays — converging
//!   to the centralized [`plan`] optimum exactly;
//! * [`obs`] — the session flight recorder: bounded per-round
//!   coverage/energy timeline + structured event ring over the lossy
//!   runtime, dumped (with the per-node accumulator planes from
//!   [`m2m_telemetry::timeseries`]) as versioned JSON (`M2M_OBS`);
//! * [`slots`] — collision-free TDMA transmission slots (§3);
//! * [`suppression`] — temporal suppression and the dynamic override
//!   policies (§3, Figure 7);
//! * [`dynamics`] — incremental re-optimization after workload/route
//!   changes (Corollary 1), priced by [`dissemination`];
//! * [`parallel`] — the scoped worker pool fanning per-edge solves across
//!   threads with deterministic, order-preserving collection (Theorem 1
//!   makes the fan-out safe);
//! * [`memo`] — cross-build solve memoization ([`memo::SolveCache`]),
//!   Corollary 1 applied across independent plan builds;
//! * [`milestones`] — milestone routing over virtual edges (§3);
//! * [`resilience`] — slotted execution under transient link failures,
//!   plus critical-link (bridge) analysis (§3);
//! * [`multi`] — the "multiple functions per destination" lift (§2.1);
//! * [`campaign`] — multi-round suppression campaigns with an audited
//!   precision/energy trade-off (§3's "up to desired precision");
//! * [`telemetry`] — the zero-overhead instrumentation facade (counters,
//!   span timers, histograms, `M2M_TRACE` control) plus the per-edge
//!   plan-explainability report;
//! * [`topo`] — the interned topology snapshot: dense [`topo::NodeIdx`] /
//!   [`topo::EdgeIdx`] indices, sorted edge slab with O(1) lookup, and
//!   per-tree CSR adjacency that every planning stage shares;
//! * [`textio`] — plain-text persistence for deployments and workloads.
//!
//! # Quickstart
//!
//! ```
//! use m2m_core::prelude::*;
//! use std::collections::BTreeMap;
//!
//! // A small grid network.
//! let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
//!
//! // Two destinations, each a weighted average over three sources.
//! let mut spec = AggregationSpec::new();
//! spec.add_function(
//!     NodeId(0),
//!     AggregateFunction::weighted_average([(NodeId(5), 1.0), (NodeId(10), 2.0), (NodeId(15), 1.0)]),
//! );
//! spec.add_function(
//!     NodeId(3),
//!     AggregateFunction::weighted_average([(NodeId(5), 1.0), (NodeId(10), 1.0), (NodeId(12), 4.0)]),
//! );
//!
//! // One Session wires routing, planning, and compiled execution.
//! let mut session = Session::builder(net, spec.clone())
//!     .routing_mode(RoutingMode::ShortestPathTrees)
//!     .build();
//!
//! // Execute one round on real readings and check every destination.
//! let readings: BTreeMap<NodeId, f64> =
//!     session.network().nodes().map(|v| (v, f64::from(v.0))).collect();
//! let report = session.run(&readings);
//! for (dest, result) in &report.result_map() {
//!     let expected = spec.function(*dest).unwrap().reference_result(&readings);
//!     assert!((result - expected).abs() < 1e-9);
//! }
//! println!("round energy: {:.3} mJ", report.cost().total_mj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod baselines;
pub mod basestation;
pub mod campaign;
pub mod config;
pub mod dissemination;
pub mod dvc;
pub mod dynamics;
pub mod edge_opt;
pub mod exec;
pub mod faults;
pub mod fxhash;
pub mod memo;
pub mod metrics;
pub mod milestones;
pub mod multi;
pub mod node_machine;
pub mod obs;
pub mod parallel;
pub mod plan;
pub mod redundancy;
pub mod resilience;
#[cfg(any(test, feature = "test-oracle"))]
pub mod runtime;
pub mod schedule;
pub mod service;
pub mod session;
pub mod sharing;
pub mod sim;
pub mod slots;
pub mod spec;
pub mod suppression;
pub mod tables;
pub mod telemetry;
pub mod textio;
pub mod topo;
pub mod workload;

pub use m2m_telemetry::m2m_log;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::agg::{AggregateFunction, AggregateKind, PartialRecord};
    pub use crate::baselines::{plan_for_algorithm, Algorithm};
    pub use crate::config::{Config, Runtime};
    pub use crate::dynamics::{PlanMaintainer, WorkloadUpdate};
    pub use crate::edge_opt::{EdgeProblem, EdgeSolution};
    pub use crate::exec::{
        run_epochs, run_epochs_slab, CompiledSchedule, EpochDriver, EpochSlab, ExecState,
        DEFAULT_LANE_WIDTH, SUPPORTED_LANE_WIDTHS,
    };
    pub use crate::faults::{
        ChurnController, DegradationTracker, DestCoverage, FaultOutcome, FaultyExec, RetryPolicy,
    };
    pub use crate::memo::{SharedSolveCache, SolveCache};
    pub use crate::metrics::RoundCost;
    pub use crate::obs::{FlightRecorder, RoundPoint};
    pub use crate::plan::GlobalPlan;
    pub use crate::service::{Admission, PlanService, TenantId, TenantOptions};
    pub use crate::session::{RoundDetail, RoundReport, Session, SessionBuilder};
    pub use crate::sharing::{
        multi_query_analysis, shared_record_analysis, MultiQueryReport, SharingReport,
    };
    pub use crate::spec::AggregationSpec;
    pub use crate::topo::{EdgeIdx, NodeIdx, Topology};
    pub use crate::workload::{generate_workload, WorkloadConfig};
    pub use m2m_graph::NodeId;
    pub use m2m_netsim::{
        DeliveryModel, Deployment, EnergyModel, FailureTrace, LinkQuality, Network, RoutingMode,
        RoutingTables,
    };
}
