//! Round-based plan execution with end-to-end numeric checking.
//!
//! Executes one time step of a plan on concrete readings: every unit's
//! value is computed in wait-for (topological) order — raw units carry the
//! source reading, record units merge their contributions with the
//! destination's merging function — and each destination's evaluator is
//! applied to its final record. The result must equal the out-of-network
//! reference computation exactly (up to floating-point associativity),
//! which the integration tests assert for every algorithm, routing mode,
//! and workload they touch.

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_graph::NodeId;
use m2m_netsim::Network;

use crate::agg::PartialRecord;
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::schedule::{build_schedule, Contribution, Schedule, UnitContent};
use crate::spec::AggregationSpec;

/// The outcome of executing one round.
#[derive(Clone, Debug)]
pub struct RoundResult {
    /// Final aggregate value delivered at each destination.
    pub results: BTreeMap<NodeId, f64>,
    /// Energy and traffic spent this round.
    pub cost: RoundCost,
    /// The schedule the round ran on (unit and message structure). Shared,
    /// not cloned: per-round results no longer deep-copy the message
    /// structure, so holding many [`RoundResult`]s is cheap.
    pub schedule: Arc<Schedule>,
}

/// Executes one round of `plan` over `readings` (one reading per node; at
/// minimum every source must have a reading).
///
/// # Panics
/// Panics if the plan is unschedulable or a source reading is missing —
/// both indicate a bug upstream, not a runtime condition.
pub fn execute_round(
    network: &Network,
    spec: &AggregationSpec,
    plan: &GlobalPlan,
    readings: &BTreeMap<NodeId, f64>,
) -> RoundResult {
    let schedule = build_schedule(spec, plan).expect("plan must be schedulable");
    let results = evaluate(spec, &schedule, readings);
    let cost = schedule.round_cost(network.energy());
    RoundResult {
        results,
        cost,
        schedule: Arc::new(schedule),
    }
}

/// Computes every unit's value in topological order and evaluates each
/// destination's function.
pub fn evaluate(
    spec: &AggregationSpec,
    schedule: &Schedule,
    readings: &BTreeMap<NodeId, f64>,
) -> BTreeMap<NodeId, f64> {
    let reading = |s: NodeId| -> f64 {
        *readings
            .get(&s)
            .unwrap_or_else(|| panic!("no reading for source {s}"))
    };

    // Record values per unit (None for raw units, whose value is just the
    // source reading).
    let mut records: Vec<Option<PartialRecord>> = vec![None; schedule.units.len()];
    for &u in &schedule.topo_order {
        let unit = &schedule.units[u];
        let UnitContent::Record(ref group) = unit.content else {
            continue;
        };
        let f = spec
            .function(group.destination)
            .expect("destination has a function");
        let mut acc: Option<PartialRecord> = None;
        for c in &schedule.contributions[u] {
            let part = match c {
                Contribution::Pre(s) => f.pre_aggregate(*s, reading(*s)),
                Contribution::FromUnit(v) => {
                    records[*v].expect("topological order computes dependencies first")
                }
            };
            acc = Some(match acc {
                None => part,
                Some(prev) => f.merge(prev, part),
            });
        }
        records[u] = Some(acc.unwrap_or_else(|| {
            panic!(
                "record unit {u} for {} has no contributions",
                group.destination
            )
        }));
    }

    // Final evaluation at each destination.
    let mut results = BTreeMap::new();
    for (d, inputs) in &schedule.destination_inputs {
        let f = spec.function(*d).expect("destination has a function");
        let mut acc: Option<PartialRecord> = None;
        for c in inputs {
            let part = match c {
                Contribution::Pre(s) => f.pre_aggregate(*s, reading(*s)),
                Contribution::FromUnit(u) => {
                    records[*u].expect("record computed before evaluation")
                }
            };
            acc = Some(match acc {
                None => part,
                Some(prev) => f.merge(prev, part),
            });
        }
        let record = acc.unwrap_or_else(|| panic!("destination {d} received no inputs"));
        results.insert(*d, f.evaluate(record));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggregateFunction, AggregateKind};
    use crate::baselines::{plan_for_algorithm, Algorithm};
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 1.25 - 3.0))
            .collect()
    }

    fn spec(kind: AggregateKind) -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::new(
                kind,
                [
                    (NodeId(0), 1.0),
                    (NodeId(1), 2.0),
                    (NodeId(3), 0.5),
                    (NodeId(6), 1.5),
                ],
            ),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::new(kind, [(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s.add_function(
            NodeId(3),
            AggregateFunction::new(kind, [(NodeId(0), 2.0), (NodeId(12), 1.0)]),
        );
        s
    }

    #[test]
    fn every_kind_matches_reference_on_every_algorithm() {
        let net = network();
        let vals = readings(&net);
        for kind in [
            AggregateKind::WeightedSum,
            AggregateKind::WeightedAverage,
            AggregateKind::WeightedVariance,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Count,
        ] {
            let spec = spec(kind);
            for mode in [
                RoutingMode::ShortestPathTrees,
                RoutingMode::SharedSpanningTree,
            ] {
                let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
                for alg in Algorithm::PLANNED {
                    let plan = plan_for_algorithm(&net, &spec, &routing, alg);
                    let round = execute_round(&net, &spec, &plan, &vals);
                    for (d, f) in spec.functions() {
                        let expected = f.reference_result(&vals);
                        let got = round.results[&d];
                        assert!(
                            (got - expected).abs() < 1e-9,
                            "{:?}/{mode:?}/{}: dest {d} got {got}, want {expected}",
                            kind,
                            alg.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn optimal_round_energy_not_above_baselines() {
        let net = network();
        let vals = readings(&net);
        let spec = spec(AggregateKind::WeightedSum);
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cost = |alg| {
            let plan = plan_for_algorithm(&net, &spec, &routing, alg);
            execute_round(&net, &spec, &plan, &vals).cost
        };
        let optimal = cost(Algorithm::Optimal);
        let multicast = cost(Algorithm::Multicast);
        let aggregation = cost(Algorithm::Aggregation);
        assert!(optimal.payload_bytes <= multicast.payload_bytes);
        assert!(optimal.payload_bytes <= aggregation.payload_bytes);
        assert!(optimal.total_uj() <= multicast.total_uj() + 1e-9);
        assert!(optimal.total_uj() <= aggregation.total_uj() + 1e-9);
    }

    #[test]
    fn destination_that_is_its_own_source_works() {
        let net = network();
        let vals = readings(&net);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(5),
            AggregateFunction::weighted_sum([(NodeId(5), 2.0), (NodeId(10), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let round = execute_round(&net, &spec, &plan, &vals);
        let expected = 2.0 * vals[&NodeId(5)] + vals[&NodeId(10)];
        assert!((round.results[&NodeId(5)] - expected).abs() < 1e-9);
    }

    #[test]
    fn adjacent_source_and_destination() {
        let net = network();
        let vals = readings(&net);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(1),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let round = execute_round(&net, &spec, &plan, &vals);
        assert!((round.results[&NodeId(1)] - vals[&NodeId(0)]).abs() < 1e-12);
        // One edge, one unit, one message.
        assert_eq!(round.cost.messages, 1);
        assert_eq!(round.cost.units, 1);
    }
}
