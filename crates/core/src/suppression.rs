//! Temporal suppression and dynamic override (§3, "Continuous Control
//! with Suppression").
//!
//! With temporal suppression a source transmits only the *change* in its
//! value (when it exceeds a threshold); for linear functions such as
//! weighted sums the changes aggregate exactly like the values themselves.
//! The installed ("default") plan is optimized for the all-sources-change
//! case, so on a round where few values changed it can be suboptimal: the
//! paper's example sends two raw deltas in two units where the default
//! plan would send two partial records plus a raw (three units).
//!
//! The **override** mechanism lets a node deviate at runtime: instead of
//! pre-aggregating a raw delta for destinations `d1, d2, …`, it may keep
//! forwarding it raw — with the consequence that the delta stays raw *all
//! the way* to those destinations, because only this node stores the
//! pre-aggregation state. Three policies from the paper's evaluation:
//!
//! * **aggressive** — override whenever locally no worse,
//! * **medium** — override when locally ~25% cheaper,
//! * **conservative** — override only when locally ≥2× cheaper.
//!
//! Figure 7 compares the policies' per-round energy against the default
//! plan applied to the same changed values ("full recomputation", which
//! is optimal when the change probability is 1).
//!
//! Like the compiled executor ([`crate::exec`]), the simulator interns
//! everything — sources, edges, raw units, record groups, transition
//! decisions — into dense `u32` ids at construction, so the per-round
//! cost evaluation runs over flat arrays and a reusable
//! [`SuppressionScratch`] with zero heap allocation. Campaigns
//! ([`crate::campaign`]) call it thousands of times per plan.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{AggGroup, DirectedEdge};
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// Runtime override policy (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OverridePolicy {
    /// Never override: execute the default plan on the changed values.
    None,
    /// Override whenever raw forwarding is locally no more expensive.
    Aggressive,
    /// Override when raw forwarding is locally ≥25% cheaper.
    Medium,
    /// Override only when raw forwarding is locally ≥2× cheaper.
    Conservative,
}

impl OverridePolicy {
    /// `(marginal_aware, factor)`: raw forwarding must satisfy
    /// `raw_cost * factor ≤ agg_cost` to trigger an override, where
    /// `agg_cost` is the *marginal* record cost (shared records are free)
    /// for marginal-aware policies, and the full record cost for the
    /// naive aggressive policy — which is what makes aggressive overrides
    /// backfire when other contributors would have shared the record
    /// (the downstream-opportunity loss the paper describes).
    fn decision(self) -> (bool, f64) {
        match self {
            OverridePolicy::None => (true, f64::INFINITY),
            OverridePolicy::Aggressive => (false, 1.0),
            OverridePolicy::Medium => (true, 1.0),
            OverridePolicy::Conservative => (true, 2.0),
        }
    }

    /// Display name matching the paper's Figure 7 legend.
    pub fn name(self) -> &'static str {
        match self {
            OverridePolicy::None => "Recompute",
            OverridePolicy::Aggressive => "Aggressive",
            OverridePolicy::Medium => "Medium",
            OverridePolicy::Conservative => "Conservative",
        }
    }
}

/// Where the pre-aggregation state for a value lives (§3's trade-off:
/// "A more flexible alternative is to store the pre-aggregation function
/// of a value at every node on the multicast path from the source to the
/// destination, but more state would have to be stored in the network").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatePlacement {
    /// Only the default transition node holds `w_{d,s}` (the paper's
    /// default): an overridden delta travels raw all the way to its
    /// destinations.
    TransitionOnly,
    /// Every node on the path holds `w_{d,s}`: an overridden delta can
    /// rejoin a downstream record, at the cost of more in-network state
    /// (quantified by [`SuppressionSim::state_entries`]).
    EveryNode,
}

/// Sentinel for "no transition" / "no record" in the dense pair layout.
const NONE_ID: u32 = u32::MAX;

/// One `(source, destination)` pair lowered to dense ids. Ranges index
/// the simulator's flat pools.
#[derive(Clone, Debug)]
struct DensePair {
    /// Slot into [`SuppressionSim::sources`].
    source: u32,
    /// Range into `raw_pool`: raw units under the default plan.
    raw_units: (u32, u32),
    /// Transition group id, or [`NONE_ID`] if the pair never transitions.
    group: u32,
    /// Record id of the pair's first (forming) record, or [`NONE_ID`].
    first_rec: u32,
    /// Range into `chain_pool`: the record chain from the transition on.
    chain: (u32, u32),
    /// Range into `override_pool`: raw units of the override route.
    /// Aligned with `chain` — `chain[i]` crosses `override[i]`'s edge.
    overrides: (u32, u32),
}

/// One `(transition node, source)` override decision point. All pairs in
/// a group share the source, so the whole group is active exactly when
/// that source changed — its record set and raw fan-out are fixed at
/// construction.
#[derive(Clone, Debug)]
struct TransitionGroup {
    /// Slot into [`SuppressionSim::sources`].
    source: u32,
    /// Range into `group_rec_pool`: distinct first records the source
    /// feeds here, in ascending `(edge, group)` order.
    records: (u32, u32),
    /// Distinct outgoing edges raw forwarding would use.
    raw_out_count: u32,
}

/// Precomputed suppression executor for one plan. See the module docs
/// for the dense layout; the legacy BTreeMap-per-round evaluation was
/// replaced by flat-array passes over a [`SuppressionScratch`].
#[derive(Clone, Debug)]
pub struct SuppressionSim {
    /// All sources, ascending; defines the changed-mask slot order.
    sources: Vec<NodeId>,
    pairs: Vec<DensePair>,
    /// Transition groups in ascending `(node, source)` order — the
    /// decision iteration order of the reference three-pass model.
    groups: Vec<TransitionGroup>,
    group_rec_pool: Vec<u32>,
    /// Raw unit ids, per pair in path order.
    raw_pool: Vec<u32>,
    /// Record ids, per pair in chain order.
    chain_pool: Vec<u32>,
    /// Raw unit ids of override routes, per pair in path order.
    override_pool: Vec<u32>,
    /// Per raw unit id: its edge id. Raw unit ids ascend in
    /// `(edge, source)` order, deduplicating multicast sharing.
    raw_unit_edge: Vec<u32>,
    /// Per record id: its edge id. Record ids ascend in `(edge, group)`
    /// order.
    rec_edge: Vec<u32>,
    /// Per record id: the partial-record byte size of its destination.
    rec_bytes: Vec<u32>,
    /// All directed edges any unit can cross, ascending; the final cost
    /// accumulation runs in this (the reference `BTreeMap`) order.
    edges: Vec<DirectedEdge>,
    header_bytes: u32,
    tx_fixed_uj: f64,
    rx_fixed_uj: f64,
    tx_per_byte: f64,
    rx_per_byte: f64,
}

/// Reusable per-round scratch for [`SuppressionSim`]: allocate once, run
/// any number of rounds allocation-free.
#[derive(Clone, Debug)]
pub struct SuppressionScratch {
    /// Which sources changed this round, by source slot.
    changed: Vec<bool>,
    /// Active pre-aggregated inputs per forming record.
    forming: Vec<u32>,
    /// Override decision per transition group.
    overridden: Vec<bool>,
    /// Record activity per record id.
    active_rec: Vec<bool>,
    /// Raw activity per raw unit id.
    raw_active: Vec<bool>,
    /// Accumulated body bytes per edge id.
    edge_body: Vec<u32>,
    /// Accumulated unit count per edge id.
    edge_units: Vec<usize>,
}

impl SuppressionScratch {
    /// The changed-source mask, in [`SuppressionSim::sources`] slot
    /// order. Set it, then call
    /// [`SuppressionSim::round_cost_prepared`].
    #[inline]
    pub fn changed_mask_mut(&mut self) -> &mut [bool] {
        &mut self.changed
    }
}

impl SuppressionSim {
    /// Prepares the simulator. The spec's functions must support delta
    /// maintenance (checked).
    ///
    /// # Panics
    /// Panics if any function cannot be maintained from deltas.
    pub fn new(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        plan: &GlobalPlan,
    ) -> Self {
        let mut record_bytes_of: BTreeMap<NodeId, u32> = BTreeMap::new();
        for (d, f) in spec.functions() {
            assert!(
                f.kind().supports_delta_maintenance(),
                "temporal suppression requires delta-maintainable functions; {d} has {:?}",
                f.kind()
            );
            record_bytes_of.insert(d, f.partial_record_bytes());
        }

        // Build-time view of one pair, interned below.
        struct PairPlan {
            source: NodeId,
            raw_edges: Vec<DirectedEdge>,
            transition: Option<(NodeId, (DirectedEdge, AggGroup))>,
            record_chain: Vec<(DirectedEdge, AggGroup)>,
            override_raw_edges: Vec<DirectedEdge>,
        }

        let mut pair_plans = Vec::new();
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut raw_edges = Vec::new();
                let mut transition = None;
                let mut record_chain = Vec::new();
                let mut override_raw_edges = Vec::new();
                let mut raw = true;
                for (idx, hop) in path.windows(2).enumerate() {
                    let edge = (hop[0], hop[1]);
                    let sol = plan.solution(edge).expect("plan covers edge");
                    let group = AggGroup {
                        destination: d,
                        suffix: path[idx + 1..].into(),
                    };
                    if raw && sol.transmits_raw(s) {
                        raw_edges.push(edge);
                    } else {
                        if raw {
                            transition = Some((hop[0], (edge, group.clone())));
                            override_raw_edges =
                                path[idx..].windows(2).map(|w| (w[0], w[1])).collect();
                            raw = false;
                        }
                        record_chain.push((edge, group));
                    }
                }
                pair_plans.push(PairPlan {
                    source: s,
                    raw_edges,
                    transition,
                    record_chain,
                    override_raw_edges,
                });
            }
        }

        // Intern: sources, edges, raw units (edge, source), records
        // (edge, group). All id spaces ascend in their key order, so
        // id-order iteration reproduces the reference BTree orders.
        let sources = spec.all_sources();
        let slot_of = |s: NodeId| -> u32 {
            sources
                .binary_search(&s)
                .expect("pair source is a spec source") as u32
        };

        let mut edge_keys: BTreeSet<DirectedEdge> = BTreeSet::new();
        let mut raw_keys: BTreeSet<(DirectedEdge, NodeId)> = BTreeSet::new();
        let mut rec_keys: BTreeSet<(DirectedEdge, AggGroup)> = BTreeSet::new();
        for p in &pair_plans {
            for &e in &p.raw_edges {
                edge_keys.insert(e);
                raw_keys.insert((e, p.source));
            }
            for &e in &p.override_raw_edges {
                edge_keys.insert(e);
                raw_keys.insert((e, p.source));
            }
            for (e, g) in &p.record_chain {
                edge_keys.insert(*e);
                rec_keys.insert((*e, g.clone()));
            }
        }
        let edges: Vec<DirectedEdge> = edge_keys.into_iter().collect();
        let edge_id =
            |e: DirectedEdge| -> u32 { edges.binary_search(&e).expect("edge interned") as u32 };
        let raw_list: Vec<(DirectedEdge, NodeId)> = raw_keys.into_iter().collect();
        let raw_id = |e: DirectedEdge, s: NodeId| -> u32 {
            raw_list.binary_search(&(e, s)).expect("raw unit interned") as u32
        };
        let rec_list: Vec<(DirectedEdge, AggGroup)> = rec_keys.into_iter().collect();
        let rec_id = |key: &(DirectedEdge, AggGroup)| -> u32 {
            rec_list.binary_search(key).expect("record interned") as u32
        };
        let raw_unit_edge: Vec<u32> = raw_list.iter().map(|&(e, _)| edge_id(e)).collect();
        let rec_edge: Vec<u32> = rec_list.iter().map(|&(e, _)| edge_id(e)).collect();
        let rec_bytes: Vec<u32> = rec_list
            .iter()
            .map(|(_, g)| record_bytes_of[&g.destination])
            .collect();

        // Transition groups per (node, source), ascending.
        let mut group_map: BTreeMap<(NodeId, NodeId), (BTreeSet<u32>, BTreeSet<DirectedEdge>)> =
            BTreeMap::new();
        for p in &pair_plans {
            if let Some((node, ref first)) = p.transition {
                let entry = group_map.entry((node, p.source)).or_default();
                entry.0.insert(rec_id(first));
                if let Some(&edge) = p.override_raw_edges.first() {
                    entry.1.insert(edge);
                }
            }
        }
        let group_ids: BTreeMap<(NodeId, NodeId), u32> = group_map
            .keys()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let mut groups = Vec::with_capacity(group_map.len());
        let mut group_rec_pool: Vec<u32> = Vec::new();
        for (&(_, source), (records, raw_out)) in &group_map {
            let start = group_rec_pool.len() as u32;
            group_rec_pool.extend(records.iter().copied());
            groups.push(TransitionGroup {
                source: slot_of(source),
                records: (start, group_rec_pool.len() as u32),
                raw_out_count: raw_out.len() as u32,
            });
        }

        // Dense pairs over flat pools.
        let mut pairs = Vec::with_capacity(pair_plans.len());
        let mut raw_pool: Vec<u32> = Vec::new();
        let mut chain_pool: Vec<u32> = Vec::new();
        let mut override_pool: Vec<u32> = Vec::new();
        for p in &pair_plans {
            let raw_start = raw_pool.len() as u32;
            raw_pool.extend(p.raw_edges.iter().map(|&e| raw_id(e, p.source)));
            let chain_start = chain_pool.len() as u32;
            chain_pool.extend(p.record_chain.iter().map(&rec_id));
            let override_start = override_pool.len() as u32;
            override_pool.extend(p.override_raw_edges.iter().map(|&e| raw_id(e, p.source)));
            let (group, first_rec) = match &p.transition {
                Some((node, first)) => (group_ids[&(*node, p.source)], rec_id(first)),
                None => (NONE_ID, NONE_ID),
            };
            pairs.push(DensePair {
                source: slot_of(p.source),
                raw_units: (raw_start, raw_pool.len() as u32),
                group,
                first_rec,
                chain: (chain_start, chain_pool.len() as u32),
                overrides: (override_start, override_pool.len() as u32),
            });
        }

        crate::m2m_log!(
            crate::telemetry::Level::Debug,
            "suppression sim compiled: {} pairs, {} edges, {} raw units, {} records, {} transition groups",
            pairs.len(),
            edges.len(),
            raw_list.len(),
            rec_list.len(),
            groups.len()
        );

        let e = network.energy();
        SuppressionSim {
            sources,
            pairs,
            groups,
            group_rec_pool,
            raw_pool,
            chain_pool,
            override_pool,
            raw_unit_edge,
            rec_edge,
            rec_bytes,
            edges,
            header_bytes: e.header_bytes,
            tx_fixed_uj: e.tx_fixed_uj,
            rx_fixed_uj: e.rx_fixed_uj,
            tx_per_byte: e.tx_uj_per_byte,
            rx_per_byte: e.rx_uj_per_byte,
        }
    }

    /// All sources, ascending — the slot order of
    /// [`SuppressionScratch::changed_mask_mut`].
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Allocates a scratch arena sized for this simulator.
    pub fn scratch(&self) -> SuppressionScratch {
        SuppressionScratch {
            changed: vec![false; self.sources.len()],
            forming: vec![0; self.rec_edge.len()],
            overridden: vec![false; self.groups.len()],
            active_rec: vec![false; self.rec_edge.len()],
            raw_active: vec![false; self.raw_unit_edge.len()],
            edge_body: vec![0; self.edges.len()],
            edge_units: vec![0; self.edges.len()],
        }
    }

    /// Cost of one round in which exactly `changed` sources transmit
    /// deltas, under the given override policy with the paper's default
    /// state placement ([`StatePlacement::TransitionOnly`]). Assumes
    /// (like the paper's experiments) that all units on an edge merge
    /// into one message.
    pub fn round_cost(&self, changed: &BTreeSet<NodeId>, policy: OverridePolicy) -> RoundCost {
        self.round_cost_with_placement(changed, policy, StatePlacement::TransitionOnly)
    }

    /// Like [`SuppressionSim::round_cost`] with an explicit state
    /// placement. Under [`StatePlacement::EveryNode`] an overridden delta
    /// rejoins its default record chain at the first point where the
    /// record is active anyway (another contributor changed), recovering
    /// the downstream aggregation opportunities the default placement
    /// loses.
    pub fn round_cost_with_placement(
        &self,
        changed: &BTreeSet<NodeId>,
        policy: OverridePolicy,
        placement: StatePlacement,
    ) -> RoundCost {
        let mut scratch = self.scratch();
        self.round_cost_with(changed, policy, placement, &mut scratch)
    }

    /// Allocation-free variant: reuses `scratch` across rounds.
    pub fn round_cost_with(
        &self,
        changed: &BTreeSet<NodeId>,
        policy: OverridePolicy,
        placement: StatePlacement,
        scratch: &mut SuppressionScratch,
    ) -> RoundCost {
        for (slot, s) in self.sources.iter().enumerate() {
            scratch.changed[slot] = changed.contains(s);
        }
        self.round_cost_prepared(policy, placement, scratch)
    }

    /// Evaluates one round against the changed-source mask already set in
    /// `scratch` (see [`SuppressionScratch::changed_mask_mut`]). This is
    /// the hot path: three passes over flat arrays, no allocation.
    ///
    /// # Panics
    /// Panics if `scratch` was sized for a different simulator.
    pub fn round_cost_prepared(
        &self,
        policy: OverridePolicy,
        placement: StatePlacement,
        scratch: &mut SuppressionScratch,
    ) -> RoundCost {
        assert_eq!(
            scratch.changed.len(),
            self.sources.len(),
            "scratch/sim mismatch"
        );
        let range = |r: (u32, u32)| r.0 as usize..r.1 as usize;

        // Pass A: default-plan activity — how many *active* inputs does
        // each freshly formed record have (pre-aggregated deltas at its
        // forming node)? Chained records inherit activity.
        scratch.forming.fill(0);
        for p in &self.pairs {
            if p.first_rec != NONE_ID && scratch.changed[p.source as usize] {
                scratch.forming[p.first_rec as usize] += 1;
            }
        }

        // Pass B: override decisions, one per (node, source), in
        // ascending (node, source) order.
        let (marginal_aware, factor) = policy.decision();
        for (g, group) in self.groups.iter().enumerate() {
            if !scratch.changed[group.source as usize] {
                scratch.overridden[g] = false;
                continue;
            }
            // Cost of aggregating here. Marginal-aware policies treat
            // records other changed values already activate as free; the
            // naive aggressive policy charges every record in full.
            let agg_cost: f64 = self.group_rec_pool[range(group.records)]
                .iter()
                .map(|&rec| {
                    if marginal_aware && scratch.forming[rec as usize] > 1 {
                        0.0
                    } else {
                        f64::from(self.rec_bytes[rec as usize])
                    }
                })
                .sum();
            let raw_cost = f64::from(RAW_VALUE_BYTES) * f64::from(group.raw_out_count);
            scratch.overridden[g] = raw_cost * factor <= agg_cost;
        }

        // Pass C: final activity. Records first — the chains an
        // EveryNode-placement override may rejoin — then raw units,
        // deduplicated per (edge, source) by the raw-unit interning
        // (multicast sharing).
        scratch.active_rec.fill(false);
        scratch.raw_active.fill(false);
        for p in &self.pairs {
            if !scratch.changed[p.source as usize] {
                continue;
            }
            if p.group != NONE_ID && !scratch.overridden[p.group as usize] {
                for &rec in &self.chain_pool[range(p.chain)] {
                    scratch.active_rec[rec as usize] = true;
                }
            }
        }
        for p in &self.pairs {
            if !scratch.changed[p.source as usize] {
                continue;
            }
            for &ru in &self.raw_pool[range(p.raw_units)] {
                scratch.raw_active[ru as usize] = true;
            }
            if p.group != NONE_ID && scratch.overridden[p.group as usize] {
                // With state only at the transition node, the delta
                // stays raw all the way. With state everywhere it can
                // rejoin the first already-active record of its chain
                // (chain[i] crosses the same hop as overrides[i]).
                let chain = &self.chain_pool[range(p.chain)];
                let overrides = &self.override_pool[range(p.overrides)];
                let rejoin_at = match placement {
                    StatePlacement::TransitionOnly => overrides.len(),
                    StatePlacement::EveryNode => chain
                        .iter()
                        .position(|&rec| scratch.active_rec[rec as usize])
                        .unwrap_or(overrides.len()),
                };
                for &ru in &overrides[..rejoin_at] {
                    scratch.raw_active[ru as usize] = true;
                }
            }
        }

        // Cost: one message per edge with ≥1 active unit, accumulated in
        // ascending edge order (the reference BTreeMap order).
        scratch.edge_body.fill(0);
        scratch.edge_units.fill(0);
        for (ru, &active) in scratch.raw_active.iter().enumerate() {
            if active {
                let e = self.raw_unit_edge[ru] as usize;
                scratch.edge_body[e] += RAW_VALUE_BYTES;
                scratch.edge_units[e] += 1;
            }
        }
        for (rec, &active) in scratch.active_rec.iter().enumerate() {
            if active {
                let e = self.rec_edge[rec] as usize;
                scratch.edge_body[e] += self.rec_bytes[rec];
                scratch.edge_units[e] += 1;
            }
        }
        let mut cost = RoundCost::default();
        for (body, &units) in scratch.edge_body.iter().zip(&scratch.edge_units) {
            if units == 0 {
                continue;
            }
            let on_air = f64::from(self.header_bytes + body);
            cost.tx_uj += self.tx_fixed_uj + on_air * self.tx_per_byte;
            cost.rx_uj += self.rx_fixed_uj + on_air * self.rx_per_byte;
            cost.messages += 1;
            cost.units += units;
            cost.payload_bytes += u64::from(*body);
        }
        cost
    }

    /// Number of pre-aggregation state entries the network must store
    /// under a placement — the "more state" side of the §3 trade-off.
    pub fn state_entries(&self, placement: StatePlacement) -> usize {
        self.pairs
            .iter()
            .map(|p| match (p.group, placement) {
                (NONE_ID, _) => 0,
                (_, StatePlacement::TransitionOnly) => 1,
                // One entry per node from the transition to (but not
                // including) the destination.
                (_, StatePlacement::EveryNode) => (p.overrides.1 - p.overrides.0) as usize,
            })
            .sum()
    }

    /// Average per-round cost over `rounds` rounds in which each source
    /// changes independently with probability `change_probability`.
    pub fn average_cost(
        &self,
        spec: &AggregationSpec,
        change_probability: f64,
        rounds: u32,
        policy: OverridePolicy,
        seed: u64,
    ) -> RoundCost {
        assert!((0.0..=1.0).contains(&change_probability));
        let mut rng = StdRng::seed_from_u64(seed);
        let sources = spec.all_sources();
        let mut scratch = self.scratch();
        let mut changed: BTreeSet<NodeId> = BTreeSet::new();
        let mut total = RoundCost::default();
        for _ in 0..rounds {
            changed.clear();
            changed.extend(
                sources
                    .iter()
                    .copied()
                    .filter(|_| rng.random_range(0.0..1.0) < change_probability),
            );
            total.accumulate(&self.round_cost_with(
                &changed,
                policy,
                StatePlacement::TransitionOnly,
                &mut scratch,
            ));
        }
        RoundCost {
            tx_uj: total.tx_uj / f64::from(rounds),
            rx_uj: total.rx_uj / f64::from(rounds),
            messages: total.messages / rounds as usize,
            units: total.units / rounds as usize,
            payload_bytes: total.payload_bytes / u64::from(rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::schedule::build_schedule;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables, GlobalPlan) {
        let net = Network::with_default_energy(Deployment::great_duck_island(3));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 7));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        (net, spec, routing, plan)
    }

    #[test]
    fn full_change_matches_schedule_cost() {
        // With every source changed and no overrides, the suppression
        // model must reproduce the static schedule's cost (both assume
        // full per-edge merging).
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let all: BTreeSet<NodeId> = spec.all_sources().into_iter().collect();
        let supp = sim.round_cost(&all, OverridePolicy::None);
        let schedule = build_schedule(&spec, &plan).unwrap();
        if schedule.max_messages_on_any_edge() == 1 {
            let sched = schedule.round_cost(net.energy());
            assert_eq!(supp.messages, sched.messages);
            assert_eq!(supp.payload_bytes, sched.payload_bytes);
            assert!((supp.total_uj() - sched.total_uj()).abs() < 1e-6);
        }
    }

    #[test]
    fn no_change_costs_nothing() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let cost = sim.round_cost(&BTreeSet::new(), OverridePolicy::Aggressive);
        assert_eq!(cost, RoundCost::default());
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Interleaving rounds through one scratch must give the same
        // costs as fresh evaluations — the scratch resets fully per call.
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let sources = spec.all_sources();
        let rounds: Vec<BTreeSet<NodeId>> = vec![
            sources.iter().copied().take(5).collect(),
            BTreeSet::new(),
            sources.iter().copied().collect(),
            sources.iter().copied().step_by(3).collect(),
        ];
        let mut scratch = sim.scratch();
        for changed in &rounds {
            for policy in [
                OverridePolicy::None,
                OverridePolicy::Aggressive,
                OverridePolicy::Medium,
            ] {
                for placement in [StatePlacement::TransitionOnly, StatePlacement::EveryNode] {
                    let fresh = sim.round_cost_with_placement(changed, policy, placement);
                    let reused = sim.round_cost_with(changed, policy, placement, &mut scratch);
                    assert_eq!(fresh, reused, "{policy:?}/{placement:?}");
                }
            }
        }
    }

    #[test]
    fn fewer_changes_cost_less() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let low = sim.average_cost(&spec, 0.05, 20, OverridePolicy::None, 1);
        let high = sim.average_cost(&spec, 0.8, 20, OverridePolicy::None, 1);
        assert!(low.total_uj() < high.total_uj());
    }

    #[test]
    fn override_helps_at_low_change_probability() {
        // The paper: "When change probability is low, override policies
        // earn savings of 10–15%".
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let base = sim.average_cost(&spec, 0.05, 50, OverridePolicy::None, 2);
        let aggressive = sim.average_cost(&spec, 0.05, 50, OverridePolicy::Aggressive, 2);
        assert!(
            aggressive.total_uj() <= base.total_uj(),
            "aggressive {:.1} should not exceed base {:.1} at p=0.05",
            aggressive.total_uj(),
            base.total_uj()
        );
    }

    #[test]
    fn policies_are_ordered_by_eagerness() {
        // Aggressive overrides at least as often as medium, medium at
        // least as often as conservative — measured indirectly: at a low
        // change probability their unit counts are weakly decreasing in
        // caution... we assert only the well-defined relation: None never
        // overrides, so any policy's message count is ≤ None's.
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let changed: BTreeSet<NodeId> = spec.all_sources().into_iter().take(3).collect();
        let base = sim.round_cost(&changed, OverridePolicy::None);
        for p in [
            OverridePolicy::Aggressive,
            OverridePolicy::Medium,
            OverridePolicy::Conservative,
        ] {
            let c = sim.round_cost(&changed, p);
            assert!(c.messages <= base.messages + 3, "{}", p.name());
        }
    }

    #[test]
    fn every_node_state_never_costs_more() {
        // With pre-aggregation state everywhere, an overridden delta
        // rejoins active record chains downstream — cost can only drop.
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let sources = spec.all_sources();
        for take in [3usize, 8, 20] {
            let changed: BTreeSet<NodeId> = sources.iter().copied().take(take).collect();
            let transition_only = sim.round_cost_with_placement(
                &changed,
                OverridePolicy::Aggressive,
                StatePlacement::TransitionOnly,
            );
            let everywhere = sim.round_cost_with_placement(
                &changed,
                OverridePolicy::Aggressive,
                StatePlacement::EveryNode,
            );
            assert!(
                everywhere.total_uj() <= transition_only.total_uj() + 1e-9,
                "take={take}: everywhere {:.1} > transition-only {:.1}",
                everywhere.total_uj(),
                transition_only.total_uj()
            );
        }
    }

    #[test]
    fn every_node_placement_needs_more_state() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let lean = sim.state_entries(StatePlacement::TransitionOnly);
        let fat = sim.state_entries(StatePlacement::EveryNode);
        assert!(
            fat >= lean,
            "every-node state ({fat}) must be at least transition-only ({lean})"
        );
    }

    #[test]
    #[should_panic(expected = "delta-maintainable")]
    fn non_linear_functions_rejected() {
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(0),
            AggregateFunction::new(crate::agg::AggregateKind::Min, [(NodeId(8), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let _ = SuppressionSim::new(&net, &spec, &routing, &plan);
    }
}
