//! Temporal suppression and dynamic override (§3, "Continuous Control
//! with Suppression").
//!
//! With temporal suppression a source transmits only the *change* in its
//! value (when it exceeds a threshold); for linear functions such as
//! weighted sums the changes aggregate exactly like the values themselves.
//! The installed ("default") plan is optimized for the all-sources-change
//! case, so on a round where few values changed it can be suboptimal: the
//! paper's example sends two raw deltas in two units where the default
//! plan would send two partial records plus a raw (three units).
//!
//! The **override** mechanism lets a node deviate at runtime: instead of
//! pre-aggregating a raw delta for destinations `d1, d2, …`, it may keep
//! forwarding it raw — with the consequence that the delta stays raw *all
//! the way* to those destinations, because only this node stores the
//! pre-aggregation state. Three policies from the paper's evaluation:
//!
//! * **aggressive** — override whenever locally no worse,
//! * **medium** — override when locally ~25% cheaper,
//! * **conservative** — override only when locally ≥2× cheaper.
//!
//! Figure 7 compares the policies' per-round energy against the default
//! plan applied to the same changed values ("full recomputation", which
//! is optimal when the change probability is 1).

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{AggGroup, DirectedEdge};
use crate::metrics::RoundCost;
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// Runtime override policy (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OverridePolicy {
    /// Never override: execute the default plan on the changed values.
    None,
    /// Override whenever raw forwarding is locally no more expensive.
    Aggressive,
    /// Override when raw forwarding is locally ≥25% cheaper.
    Medium,
    /// Override only when raw forwarding is locally ≥2× cheaper.
    Conservative,
}

impl OverridePolicy {
    /// `(marginal_aware, factor)`: raw forwarding must satisfy
    /// `raw_cost * factor ≤ agg_cost` to trigger an override, where
    /// `agg_cost` is the *marginal* record cost (shared records are free)
    /// for marginal-aware policies, and the full record cost for the
    /// naive aggressive policy — which is what makes aggressive overrides
    /// backfire when other contributors would have shared the record
    /// (the downstream-opportunity loss the paper describes).
    fn decision(self) -> (bool, f64) {
        match self {
            OverridePolicy::None => (true, f64::INFINITY),
            OverridePolicy::Aggressive => (false, 1.0),
            OverridePolicy::Medium => (true, 1.0),
            OverridePolicy::Conservative => (true, 2.0),
        }
    }

    /// Display name matching the paper's Figure 7 legend.
    pub fn name(self) -> &'static str {
        match self {
            OverridePolicy::None => "Recompute",
            OverridePolicy::Aggressive => "Aggressive",
            OverridePolicy::Medium => "Medium",
            OverridePolicy::Conservative => "Conservative",
        }
    }
}

/// Where the pre-aggregation state for a value lives (§3's trade-off:
/// "A more flexible alternative is to store the pre-aggregation function
/// of a value at every node on the multicast path from the source to the
/// destination, but more state would have to be stored in the network").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatePlacement {
    /// Only the default transition node holds `w_{d,s}` (the paper's
    /// default): an overridden delta travels raw all the way to its
    /// destinations.
    TransitionOnly,
    /// Every node on the path holds `w_{d,s}`: an overridden delta can
    /// rejoin a downstream record, at the cost of more in-network state
    /// (quantified by [`SuppressionSim::state_entries`]).
    EveryNode,
}

/// Per-pair routing facts extracted from the plan once, then reused every
/// round: where the pair's value transitions from raw to a record, and the
/// unit chain it occupies.
#[derive(Clone, Debug)]
struct PairPlan {
    source: NodeId,
    /// Edges the pair crosses raw under the default plan, in path order.
    raw_edges: Vec<DirectedEdge>,
    /// `Some((node, first_record))` if the pair transitions at `node`.
    transition: Option<(NodeId, (DirectedEdge, AggGroup))>,
    /// The record chain from the transition onward: `(edge, group)` pairs.
    record_chain: Vec<(DirectedEdge, AggGroup)>,
    /// Edges from the transition node to the destination, in path order —
    /// the raw route if the transition is overridden.
    override_raw_edges: Vec<DirectedEdge>,
}

/// Precomputed suppression executor for one plan.
#[derive(Clone, Debug)]
pub struct SuppressionSim {
    pairs: Vec<PairPlan>,
    /// Partial-record byte size per destination.
    record_bytes: BTreeMap<NodeId, u32>,
    header_bytes: u32,
    tx_fixed_uj: f64,
    rx_fixed_uj: f64,
    tx_per_byte: f64,
    rx_per_byte: f64,
}

impl SuppressionSim {
    /// Prepares the simulator. The spec's functions must support delta
    /// maintenance (checked).
    ///
    /// # Panics
    /// Panics if any function cannot be maintained from deltas.
    pub fn new(
        network: &Network,
        spec: &AggregationSpec,
        routing: &RoutingTables,
        plan: &GlobalPlan,
    ) -> Self {
        let mut record_bytes = BTreeMap::new();
        for (d, f) in spec.functions() {
            assert!(
                f.kind().supports_delta_maintenance(),
                "temporal suppression requires delta-maintainable functions; {d} has {:?}",
                f.kind()
            );
            record_bytes.insert(d, f.partial_record_bytes());
        }

        let mut pairs = Vec::new();
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                if !spec.is_source_of(s, d) {
                    continue;
                }
                let path = tree.path_to(d).expect("tree spans destination");
                let mut raw_edges = Vec::new();
                let mut transition = None;
                let mut record_chain = Vec::new();
                let mut override_raw_edges = Vec::new();
                let mut raw = true;
                for (idx, hop) in path.windows(2).enumerate() {
                    let edge = (hop[0], hop[1]);
                    let sol = plan.solution(edge).expect("plan covers edge");
                    let group = AggGroup {
                        destination: d,
                        suffix: path[idx + 1..].into(),
                    };
                    if raw && sol.transmits_raw(s) {
                        raw_edges.push(edge);
                    } else {
                        if raw {
                            transition = Some((hop[0], (edge, group.clone())));
                            override_raw_edges = path[idx..]
                                .windows(2)
                                .map(|w| (w[0], w[1]))
                                .collect();
                            raw = false;
                        }
                        record_chain.push((edge, group));
                    }
                }
                pairs.push(PairPlan {
                    source: s,
                    raw_edges,
                    transition,
                    record_chain,
                    override_raw_edges,
                });
            }
        }

        let e = network.energy();
        SuppressionSim {
            pairs,
            record_bytes,
            header_bytes: e.header_bytes,
            tx_fixed_uj: e.tx_fixed_uj,
            rx_fixed_uj: e.rx_fixed_uj,
            tx_per_byte: e.tx_uj_per_byte,
            rx_per_byte: e.rx_uj_per_byte,
        }
    }

    /// Cost of one round in which exactly `changed` sources transmit
    /// deltas, under the given override policy with the paper's default
    /// state placement ([`StatePlacement::TransitionOnly`]). Assumes
    /// (like the paper's experiments) that all units on an edge merge
    /// into one message.
    pub fn round_cost(&self, changed: &BTreeSet<NodeId>, policy: OverridePolicy) -> RoundCost {
        self.round_cost_with_placement(changed, policy, StatePlacement::TransitionOnly)
    }

    /// Like [`SuppressionSim::round_cost`] with an explicit state
    /// placement. Under [`StatePlacement::EveryNode`] an overridden delta
    /// rejoins its default record chain at the first point where the
    /// record is active anyway (another contributor changed), recovering
    /// the downstream aggregation opportunities the default placement
    /// loses.
    pub fn round_cost_with_placement(
        &self,
        changed: &BTreeSet<NodeId>,
        policy: OverridePolicy,
        placement: StatePlacement,
    ) -> RoundCost {
        // Pass A: default-plan activity — how many *active* inputs does
        // each freshly formed record have (pre-aggregated deltas at its
        // forming node)? Chained records inherit activity.
        let mut forming_inputs: BTreeMap<(DirectedEdge, AggGroup), u32> = BTreeMap::new();
        for p in &self.pairs {
            if !changed.contains(&p.source) {
                continue;
            }
            if let Some((_, ref first)) = p.transition {
                *forming_inputs.entry(first.clone()).or_insert(0) += 1;
            }
        }

        // Pass B: override decisions, one per (node, source).
        // Collect each changed source's transitions per node.
        #[derive(Default)]
        struct Transitions {
            /// Distinct first records the source feeds at this node.
            records: BTreeSet<(DirectedEdge, AggGroup)>,
            /// Distinct outgoing edges raw forwarding would use.
            raw_out_edges: BTreeSet<DirectedEdge>,
        }
        let mut per_node_source: BTreeMap<(NodeId, NodeId), Transitions> = BTreeMap::new();
        for p in &self.pairs {
            if !changed.contains(&p.source) {
                continue;
            }
            if let Some((node, ref first)) = p.transition {
                let t = per_node_source.entry((node, p.source)).or_default();
                t.records.insert(first.clone());
                if let Some(&edge) = p.override_raw_edges.first() {
                    t.raw_out_edges.insert(edge);
                }
            }
        }
        let (marginal_aware, factor) = policy.decision();
        let mut overridden: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for (&(node, source), t) in &per_node_source {
            // Cost of aggregating here. Marginal-aware policies treat
            // records other changed values already activate as free; the
            // naive aggressive policy charges every record in full.
            let agg_cost: f64 = t
                .records
                .iter()
                .map(|key| {
                    if marginal_aware && forming_inputs[key] > 1 {
                        0.0
                    } else {
                        f64::from(self.record_bytes[&key.1.destination])
                    }
                })
                .sum();
            let raw_cost = f64::from(RAW_VALUE_BYTES) * t.raw_out_edges.len() as f64;
            if raw_cost * factor <= agg_cost {
                overridden.insert((node, source));
            }
        }

        // Pass C: final activity. Raw bytes per (edge, source) dedup
        // (multicast sharing); record activity per (edge, group).
        let mut raw_units: BTreeSet<(DirectedEdge, NodeId)> = BTreeSet::new();
        let mut active_records: BTreeSet<(DirectedEdge, AggGroup)> = BTreeSet::new();
        // Records activated by non-overridden pairs — the chains an
        // EveryNode-placement override may rejoin.
        for p in &self.pairs {
            if !changed.contains(&p.source) {
                continue;
            }
            if let Some((node, _)) = &p.transition {
                if !overridden.contains(&(*node, p.source)) {
                    for entry in &p.record_chain {
                        active_records.insert(entry.clone());
                    }
                }
            }
        }
        for p in &self.pairs {
            if !changed.contains(&p.source) {
                continue;
            }
            for &e in &p.raw_edges {
                raw_units.insert((e, p.source));
            }
            match &p.transition {
                None => {}
                Some((node, _)) if overridden.contains(&(*node, p.source)) => {
                    // With state only at the transition node, the delta
                    // stays raw all the way. With state everywhere it can
                    // rejoin the first already-active record of its chain
                    // (record_chain[i] crosses override_raw_edges[i]).
                    let rejoin_at = match placement {
                        StatePlacement::TransitionOnly => p.override_raw_edges.len(),
                        StatePlacement::EveryNode => p
                            .record_chain
                            .iter()
                            .position(|entry| active_records.contains(entry))
                            .unwrap_or(p.override_raw_edges.len()),
                    };
                    for &e in &p.override_raw_edges[..rejoin_at] {
                        raw_units.insert((e, p.source));
                    }
                }
                Some(_) => {}
            }
        }

        // Cost: one message per edge with ≥1 active unit.
        let mut edge_bytes: BTreeMap<DirectedEdge, (u32, usize)> = BTreeMap::new();
        for &(e, _) in &raw_units {
            let slot = edge_bytes.entry(e).or_insert((0, 0));
            slot.0 += RAW_VALUE_BYTES;
            slot.1 += 1;
        }
        for (e, g) in &active_records {
            let slot = edge_bytes.entry(*e).or_insert((0, 0));
            slot.0 += self.record_bytes[&g.destination];
            slot.1 += 1;
        }
        let mut cost = RoundCost::default();
        for &(body, units) in edge_bytes.values() {
            let on_air = f64::from(self.header_bytes + body);
            cost.tx_uj += self.tx_fixed_uj + on_air * self.tx_per_byte;
            cost.rx_uj += self.rx_fixed_uj + on_air * self.rx_per_byte;
            cost.messages += 1;
            cost.units += units;
            cost.payload_bytes += u64::from(body);
        }
        cost
    }

    /// Number of pre-aggregation state entries the network must store
    /// under a placement — the "more state" side of the §3 trade-off.
    pub fn state_entries(&self, placement: StatePlacement) -> usize {
        self.pairs
            .iter()
            .map(|p| match (&p.transition, placement) {
                (None, _) => 0,
                (Some(_), StatePlacement::TransitionOnly) => 1,
                // One entry per node from the transition to (but not
                // including) the destination.
                (Some(_), StatePlacement::EveryNode) => p.override_raw_edges.len(),
            })
            .sum()
    }

    /// Average per-round cost over `rounds` rounds in which each source
    /// changes independently with probability `change_probability`.
    pub fn average_cost(
        &self,
        spec: &AggregationSpec,
        change_probability: f64,
        rounds: u32,
        policy: OverridePolicy,
        seed: u64,
    ) -> RoundCost {
        assert!((0.0..=1.0).contains(&change_probability));
        let mut rng = StdRng::seed_from_u64(seed);
        let sources = spec.all_sources();
        let mut total = RoundCost::default();
        for _ in 0..rounds {
            let changed: BTreeSet<NodeId> = sources
                .iter()
                .copied()
                .filter(|_| rng.random_range(0.0..1.0) < change_probability)
                .collect();
            total.accumulate(&self.round_cost(&changed, policy));
        }
        RoundCost {
            tx_uj: total.tx_uj / f64::from(rounds),
            rx_uj: total.rx_uj / f64::from(rounds),
            messages: total.messages / rounds as usize,
            units: total.units / rounds as usize,
            payload_bytes: total.payload_bytes / u64::from(rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::schedule::build_schedule;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables, GlobalPlan) {
        let net = Network::with_default_energy(Deployment::great_duck_island(3));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 7));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        (net, spec, routing, plan)
    }

    #[test]
    fn full_change_matches_schedule_cost() {
        // With every source changed and no overrides, the suppression
        // model must reproduce the static schedule's cost (both assume
        // full per-edge merging).
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let all: BTreeSet<NodeId> = spec.all_sources().into_iter().collect();
        let supp = sim.round_cost(&all, OverridePolicy::None);
        let schedule = build_schedule(&spec, &routing, &plan).unwrap();
        if schedule.max_messages_on_any_edge() == 1 {
            let sched = schedule.round_cost(net.energy());
            assert_eq!(supp.messages, sched.messages);
            assert_eq!(supp.payload_bytes, sched.payload_bytes);
            assert!((supp.total_uj() - sched.total_uj()).abs() < 1e-6);
        }
    }

    #[test]
    fn no_change_costs_nothing() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let cost = sim.round_cost(&BTreeSet::new(), OverridePolicy::Aggressive);
        assert_eq!(cost, RoundCost::default());
    }

    #[test]
    fn fewer_changes_cost_less() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let low = sim.average_cost(&spec, 0.05, 20, OverridePolicy::None, 1);
        let high = sim.average_cost(&spec, 0.8, 20, OverridePolicy::None, 1);
        assert!(low.total_uj() < high.total_uj());
    }

    #[test]
    fn override_helps_at_low_change_probability() {
        // The paper: "When change probability is low, override policies
        // earn savings of 10–15%".
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let base = sim.average_cost(&spec, 0.05, 50, OverridePolicy::None, 2);
        let aggressive = sim.average_cost(&spec, 0.05, 50, OverridePolicy::Aggressive, 2);
        assert!(
            aggressive.total_uj() <= base.total_uj(),
            "aggressive {:.1} should not exceed base {:.1} at p=0.05",
            aggressive.total_uj(),
            base.total_uj()
        );
    }

    #[test]
    fn policies_are_ordered_by_eagerness() {
        // Aggressive overrides at least as often as medium, medium at
        // least as often as conservative — measured indirectly: at a low
        // change probability their unit counts are weakly decreasing in
        // caution... we assert only the well-defined relation: None never
        // overrides, so any policy's message count is ≤ None's.
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let changed: BTreeSet<NodeId> =
            spec.all_sources().into_iter().take(3).collect();
        let base = sim.round_cost(&changed, OverridePolicy::None);
        for p in [
            OverridePolicy::Aggressive,
            OverridePolicy::Medium,
            OverridePolicy::Conservative,
        ] {
            let c = sim.round_cost(&changed, p);
            assert!(c.messages <= base.messages + 3, "{}", p.name());
        }
    }

    #[test]
    fn every_node_state_never_costs_more() {
        // With pre-aggregation state everywhere, an overridden delta
        // rejoins active record chains downstream — cost can only drop.
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let sources = spec.all_sources();
        for take in [3usize, 8, 20] {
            let changed: BTreeSet<NodeId> = sources.iter().copied().take(take).collect();
            let transition_only = sim.round_cost_with_placement(
                &changed,
                OverridePolicy::Aggressive,
                StatePlacement::TransitionOnly,
            );
            let everywhere = sim.round_cost_with_placement(
                &changed,
                OverridePolicy::Aggressive,
                StatePlacement::EveryNode,
            );
            assert!(
                everywhere.total_uj() <= transition_only.total_uj() + 1e-9,
                "take={take}: everywhere {:.1} > transition-only {:.1}",
                everywhere.total_uj(),
                transition_only.total_uj()
            );
        }
    }

    #[test]
    fn every_node_placement_needs_more_state() {
        let (net, spec, routing, plan) = setup();
        let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
        let lean = sim.state_entries(StatePlacement::TransitionOnly);
        let fat = sim.state_entries(StatePlacement::EveryNode);
        assert!(
            fat >= lean,
            "every-node state ({fat}) must be at least transition-only ({lean})"
        );
    }

    #[test]
    #[should_panic(expected = "delta-maintainable")]
    fn non_linear_functions_rejected() {
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(0),
            AggregateFunction::new(crate::agg::AggregateKind::Min, [(NodeId(8), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let _ = SuppressionSim::new(&net, &spec, &routing, &plan);
    }
}
