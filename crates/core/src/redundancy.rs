//! Node-failure coverage and redundant state (§3, "Handling Failures").
//!
//! "Permanent node failures may additionally necessitate changes in
//! aggregation functions themselves. … In \[16\], we present additional
//! techniques to further alleviate the impact of failures by introducing
//! some redundant state into the network."
//!
//! Before the plan is repaired (Corollary 1 re-optimization takes time to
//! disseminate), what fraction of (source, destination) pairs can the
//! communication layer still deliver around a set of failed nodes? That
//! depends on *where aggregation state lives*:
//!
//! * a pair that travels **raw** end to end can be rerouted along any
//!   surviving path — raw values need no in-network state;
//! * a pair that aggregates needs its pre-aggregation state: with the
//!   default placement only the plan's transition node holds `w_{d,s}`,
//!   so that node and a surviving route through it are required; with
//!   the redundant **every-node** placement
//!   ([`StatePlacement::EveryNode`]) any surviving route suffices.
//!
//! [`delivery_coverage`] quantifies the §3 claim that redundant state
//! buys failure tolerance (at the state cost measured by
//! [`SuppressionSim::state_entries`](crate::suppression::SuppressionSim::state_entries)).

use std::collections::{BTreeSet, VecDeque};

use m2m_graph::NodeId;
use m2m_netsim::{Network, RoutingTables};

use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;
use crate::suppression::StatePlacement;

/// Fraction of (source, destination) pairs still deliverable by runtime
/// rerouting when `failed` nodes are down, before any plan repair.
///
/// Failed sources and failed destinations make their own pairs
/// undeliverable. Failed relays can be routed around subject to the
/// state-placement rules above.
pub fn delivery_coverage(
    network: &Network,
    spec: &AggregationSpec,
    routing: &RoutingTables,
    plan: &GlobalPlan,
    failed: &BTreeSet<NodeId>,
    placement: StatePlacement,
) -> f64 {
    let reachable =
        |from: NodeId, to: NodeId| -> bool { surviving_path_exists(network, failed, from, to) };

    let mut pairs = 0usize;
    let mut delivered = 0usize;
    for (s, tree) in routing.trees() {
        for &d in tree.destinations() {
            if !spec.is_source_of(s, d) {
                continue;
            }
            pairs += 1;
            if failed.contains(&s) || failed.contains(&d) {
                continue;
            }
            let path = tree.path_to(d).expect("tree spans destination");
            // Where does the pair transition from raw to a record under
            // the installed plan?
            let mut transition: Option<NodeId> = None;
            for hop in path.windows(2) {
                let sol = plan.solution((hop[0], hop[1])).expect("plan covers edge");
                if !sol.transmits_raw(s) {
                    transition = Some(hop[0]);
                    break;
                }
            }
            let ok = match (transition, placement) {
                // Raw end to end: any surviving path will do.
                (None, _) => reachable(s, d),
                // Redundant state everywhere: any surviving path still
                // lets some node pre-aggregate.
                (Some(_), StatePlacement::EveryNode) => reachable(s, d),
                // Default placement: must pass the single node holding
                // the pre-aggregation state.
                (Some(t), StatePlacement::TransitionOnly) => {
                    !failed.contains(&t) && reachable(s, t) && reachable(t, d)
                }
            };
            if ok {
                delivered += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        delivered as f64 / pairs as f64
    }
}

/// BFS over the radio graph avoiding failed nodes (endpoints must also
/// survive — callers check that first).
fn surviving_path_exists(
    network: &Network,
    failed: &BTreeSet<NodeId>,
    from: NodeId,
    to: NodeId,
) -> bool {
    if failed.contains(&from) || failed.contains(&to) {
        return false;
    }
    if from == to {
        return true;
    }
    let n = network.node_count();
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in network.neighbors(u) {
            if v == to {
                return true;
            }
            if !seen[v.index()] && !failed.contains(&v) {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode};

    fn setup() -> (Network, AggregationSpec, RoutingTables, GlobalPlan) {
        let net = Network::with_default_energy(Deployment::great_duck_island(25));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 12, 7));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        (net, spec, routing, plan)
    }

    #[test]
    fn no_failures_means_full_coverage() {
        let (net, spec, routing, plan) = setup();
        for placement in [StatePlacement::TransitionOnly, StatePlacement::EveryNode] {
            let c = delivery_coverage(&net, &spec, &routing, &plan, &BTreeSet::new(), placement);
            assert_eq!(c, 1.0);
        }
    }

    #[test]
    fn redundant_state_never_covers_less() {
        let (net, spec, routing, plan) = setup();
        // Kill a few relays (not sources/destinations) deterministically.
        let participants: BTreeSet<NodeId> = spec
            .all_sources()
            .into_iter()
            .chain(spec.destinations())
            .collect();
        let failed: BTreeSet<NodeId> = net
            .nodes()
            .filter(|v| !participants.contains(v))
            .take(5)
            .collect();
        let lean = delivery_coverage(
            &net,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::TransitionOnly,
        );
        let fat = delivery_coverage(
            &net,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::EveryNode,
        );
        assert!(
            fat >= lean,
            "redundant state must not reduce coverage ({fat} < {lean})"
        );
        assert!(fat > 0.0);
    }

    #[test]
    fn failed_transition_node_breaks_default_but_not_redundant() {
        // Line: source 0 → 1 → 2 → 3 → dest 4, with a parallel detour via
        // the second row. Aggregation state sits at the transition node.
        use crate::agg::AggregateFunction;
        let net = Network::with_default_energy(Deployment::grid(5, 2, 10.0, 15.0));
        let mut spec = AggregationSpec::new();
        // Two sources so the plan aggregates somewhere.
        spec.add_function(
            NodeId(4),
            AggregateFunction::weighted_average([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        // Find a transition node (if the plan aggregated at all).
        let mut transition = None;
        for (s, tree) in routing.trees() {
            for &d in tree.destinations() {
                let path = tree.path_to(d).unwrap();
                for hop in path.windows(2) {
                    let sol = plan.solution((hop[0], hop[1])).unwrap();
                    if !sol.transmits_raw(s) {
                        transition = Some(hop[0]);
                        break;
                    }
                }
            }
        }
        let Some(t) = transition else {
            return; // plan kept everything raw; nothing to test
        };
        if spec.function(t).is_some() || spec.all_sources().contains(&t) {
            return; // transition coincides with an endpoint on this layout
        }
        let failed: BTreeSet<NodeId> = [t].into_iter().collect();
        let lean = delivery_coverage(
            &net,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::TransitionOnly,
        );
        let fat = delivery_coverage(
            &net,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::EveryNode,
        );
        assert!(lean < 1.0, "losing the state holder must cost coverage");
        assert_eq!(fat, 1.0, "redundant state reroutes around the failure");
    }

    #[test]
    fn dead_source_is_never_deliverable() {
        let (net, spec, routing, plan) = setup();
        let s = spec.all_sources()[0];
        let failed: BTreeSet<NodeId> = [s].into_iter().collect();
        let c = delivery_coverage(
            &net,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::EveryNode,
        );
        assert!(c < 1.0);
    }
}
