//! The unified Session API: one object that owns the whole pipeline —
//! plan maintenance, compiled execution, fault-tolerant rounds, and the
//! quality-drift churn loop — configured through one typed
//! [`Config`].
//!
//! Before this module, a full deployment required wiring five layers by
//! hand: build routing tables, assemble a [`crate::plan::GlobalPlan`],
//! compile it, keep a [`crate::dynamics::PlanMaintainer`] in sync, and
//! (for lossy links) drive [`FaultyExec`] with fresh salts. [`Session`]
//! packages that wiring behind a builder:
//!
//! ```
//! use m2m_core::prelude::*;
//!
//! let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
//! let mut spec = AggregationSpec::new();
//! spec.add_function(
//!     NodeId(12),
//!     AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(5), 2.0)]),
//! );
//! let mut session = Session::builder(net, spec)
//!     .routing_mode(RoutingMode::ShortestPathTrees)
//!     .build();
//! let readings: std::collections::BTreeMap<NodeId, f64> =
//!     session.network().nodes().map(|v| (v, 1.0)).collect();
//! let report = session.run(&readings);
//! assert!((report.result(NodeId(12)).unwrap() - 3.0).abs() < 1e-9);
//! assert!(report.cost().total_uj() > 0.0);
//! ```
//!
//! # One `run`, three runtimes
//!
//! [`Session::run`] and [`Session::run_rounds`] dispatch on the
//! session's [`Runtime`] — [`Runtime::Compiled`] (the lock-step fast
//! path), [`Runtime::Lossy`] (per-link loss with retries, salts drawn
//! from the replayable stream), or [`Runtime::Sim`] (the discrete-event
//! runtime with queue/latency modeling). Choose it with
//! [`SessionBuilder::runtime`] or process-wide with
//! [`crate::config::ConfigBuilder::runtime`] / `M2M_RUNTIME`. Every
//! round comes back as one [`RoundReport`]; runtime-specific detail
//! stays reachable through [`RoundReport::fault`] and
//! [`RoundReport::sim`]. The per-runtime method families
//! (`run_round`, `run_round_lossy`, `run_round_sim` and their batch
//! twins) survive as thin deprecated wrappers.
//!
//! The fault-tolerant loop adds a [`DeliveryModel`] and, optionally, a
//! tracked [`LinkQuality`]: lossy rounds execute under the configured
//! [`RetryPolicy`], feeding a [`DegradationTracker`];
//! [`Session::observe_quality`] closes the churn loop — ETX drift past
//! the configured hysteresis rebuilds the routing tables
//! ([`m2m_netsim::quality::weighted_routing`]), pushes them through the
//! incremental maintainer, and recompiles only what changed.
//!
//! # Shared substrates
//!
//! A session holds its deployment as `Arc<Network>` and accepts one by
//! value or shared ([`Session::builder`] takes `impl Into<Arc<Network>>`),
//! so many sessions — the tenants of a [`crate::service::PlanService`] —
//! can plan over one network without cloning it. A caller that already
//! holds interned routing tables and a topology snapshot for the same
//! `(spec, mode)` hands them in with [`SessionBuilder::substrate`], and
//! a cross-tenant [`SharedSolveCache`] with
//! [`SessionBuilder::solve_cache`]; both paths produce plans
//! bit-identical to planning from scratch (pure solves, unique minima).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use m2m_graph::NodeId;
use m2m_netsim::quality::{weighted_routing, LinkQuality};
use m2m_netsim::{DeliveryModel, Network, RoutingMode, RoutingTables};

use crate::config::{Config, Runtime};
use crate::dynamics::{PlanMaintainer, UpdateStats, WorkloadUpdate};
use crate::edge_opt::{build_edge_problems, solve_edge_slab};
use crate::exec::{
    run_epochs_slab, CompiledSchedule, EpochDriver, EpochOutcome, EpochSlab, ExecState,
};
use crate::faults::{
    ChurnController, DegradationTracker, FaultOutcome, FaultyExec, RetryPolicy, SALT_STRIDE,
};
use crate::memo::SharedSolveCache;
use crate::metrics::RoundCost;
use crate::obs::{FlightRecorder, DEFAULT_BATTERY_UJ};
use crate::sim::{SimExec, SimOutcome, SimState};
use crate::spec::AggregationSpec;
use crate::topo::Topology;

/// The default base salt for lossy rounds; chosen arbitrarily, fixed for
/// replayability. Override with [`SessionBuilder::base_salt`].
pub(crate) const DEFAULT_BASE_SALT: u64 = 0x6d32_6d5f_7365_6564; // "m2m_seed"

/// Builder for [`Session`] — see the module docs for the full tour.
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    network: Arc<Network>,
    spec: AggregationSpec,
    mode: RoutingMode,
    config: Config,
    delivery: DeliveryModel,
    quality: Option<LinkQuality>,
    base_salt: u64,
    runtime: Option<Runtime>,
    substrate: Option<(Arc<RoutingTables>, Arc<Topology>)>,
    solve_cache: Option<Arc<Mutex<SharedSolveCache>>>,
    rounds_cursor: u64,
}

impl SessionBuilder {
    /// Routing-tree construction mode (default:
    /// [`RoutingMode::ShortestPathTrees`], the paper's standard
    /// algorithm). Ignored for the *initial* routes when a tracked
    /// quality is set (they are then ETX-weighted), but still used by
    /// the maintainer for workload-driven re-routes.
    #[must_use]
    pub fn routing_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the configuration (default: [`Config::from_env`]).
    #[must_use]
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// The runtime [`Session::run`] / [`Session::run_rounds`] dispatch
    /// to. Overrides the configuration's [`Config::runtime`] (which is
    /// the default when this is not set).
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The delivery model lossy rounds run under (default: reliable).
    #[must_use]
    pub fn delivery(mut self, model: DeliveryModel) -> Self {
        self.delivery = model;
        self
    }

    /// Tracks link quality: initial routes become ETX-weighted for this
    /// baseline, and [`Session::observe_quality`] arms the churn loop
    /// with the configured hysteresis.
    #[must_use]
    pub fn quality(mut self, quality: LinkQuality) -> Self {
        self.quality = Some(quality);
        self
    }

    /// Base salt for the lossy-round failure stream (fixed default, so
    /// sessions are replayable; change it to decorrelate experiments).
    #[must_use]
    pub fn base_salt(mut self, salt: u64) -> Self {
        self.base_salt = salt;
        self
    }

    /// Starts the replayable salt stream at round `rounds` instead of 0,
    /// as if that many lossy/sim rounds had already run — the
    /// checkpoint-restore path uses this to resume a tenant's failure
    /// history exactly where the persisted session left off.
    #[must_use]
    pub fn rounds_cursor(mut self, rounds: u64) -> Self {
        self.rounds_cursor = rounds;
        self
    }

    /// Reuses an already-built substrate — interned routing tables and
    /// the matching topology snapshot — instead of routing and snapping
    /// from scratch. The resulting plan is bit-identical to a cold
    /// build: the snapshot fixes the edge slab, per-edge solves are pure,
    /// and assembly is deterministic.
    ///
    /// [`Session::build`] panics if `routing`'s mode disagrees with the
    /// builder's [`SessionBuilder::routing_mode`] or if `topo`'s demanded
    /// pairs are not exactly the spec's ([`Topology::demanded_pairs`]).
    #[must_use]
    pub fn substrate(mut self, routing: Arc<RoutingTables>, topo: Arc<Topology>) -> Self {
        self.substrate = Some((routing, topo));
        self
    }

    /// Routes per-edge solves through a cross-tenant [`SharedSolveCache`]
    /// so content-equal problems solved by earlier sessions are served
    /// cached (bit-identical to fresh solves).
    #[must_use]
    pub fn solve_cache(mut self, cache: Arc<Mutex<SharedSolveCache>>) -> Self {
        self.solve_cache = Some(cache);
        self
    }

    /// Builds the session: routes, plans, compiles.
    ///
    /// # Panics
    /// Panics if the initial plan is unschedulable (Theorem 2 cycle), or
    /// if a supplied [`SessionBuilder::substrate`] does not match the
    /// builder's routing mode and spec.
    pub fn build(self) -> Session {
        let SessionBuilder {
            network,
            spec,
            mode,
            config,
            delivery,
            quality,
            base_salt,
            runtime,
            substrate,
            solve_cache,
            rounds_cursor,
        } = self;
        config.apply();
        let churn = quality
            .as_ref()
            .map(|q| ChurnController::new(q.clone(), config.hysteresis()));
        let runtime = runtime.unwrap_or_else(|| config.runtime());
        // A shared solve cache without a substrate still takes the
        // parts-based path: route + snapshot here, solve through the
        // cache, assemble identically.
        let substrate = match (substrate, &solve_cache) {
            (Some(pair), _) => Some(pair),
            (None, Some(_)) => {
                let routing = RoutingTables::build(&network, &spec.source_to_destinations(), mode);
                let topo = Arc::new(Topology::snapshot(&spec, &routing));
                Some((Arc::new(routing), topo))
            }
            (None, None) => None,
        };
        let mut driver = match substrate {
            Some((routing, topo)) => {
                assert_eq!(
                    routing.mode(),
                    mode,
                    "substrate routing mode must match the builder's routing mode"
                );
                let mut demanded: Vec<(NodeId, NodeId)> = spec
                    .source_to_destinations()
                    .into_iter()
                    .flat_map(|(s, ds)| ds.into_iter().map(move |d| (s, d)))
                    .collect();
                demanded.sort_unstable();
                assert_eq!(
                    topo.demanded_pairs(),
                    demanded,
                    "substrate topology must cover exactly the spec's demanded pairs"
                );
                let problems = build_edge_problems(&topo);
                let threads = config.resolved_threads();
                let solutions = match &solve_cache {
                    Some(cache) => cache
                        .lock()
                        .expect("shared solve cache poisoned")
                        .solve_all(&problems, &spec, threads),
                    None => solve_edge_slab(&problems, &spec, threads),
                };
                EpochDriver::from_maintainer(PlanMaintainer::from_parts(
                    network, spec, mode, routing, topo, problems, solutions,
                ))
            }
            None => EpochDriver::new(network, spec, mode),
        };
        if let Some(quality) = &quality {
            let demands = driver.maintainer().spec().source_to_destinations();
            let routing = weighted_routing(driver.maintainer().network(), &demands, quality);
            driver.apply_route_change(routing);
        }
        let recorder = config
            .obs()
            .then(|| FlightRecorder::new(config.obs_every(), config.obs_cap()));
        Session {
            config,
            runtime,
            driver,
            delivery,
            faults: None,
            sim: None,
            churn,
            tracker: DegradationTracker::new(),
            recorder,
            base_salt,
            rounds_run: rounds_cursor,
        }
    }
}

/// Runtime-specific detail carried by a [`RoundReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum RoundDetail {
    /// The compiled fast path: reliable links, every result present.
    Compiled,
    /// The lossy runtime's full outcome (coverage, retransmissions,
    /// link events).
    Lossy(FaultOutcome),
    /// The discrete-event runtime's full outcome (plus queue pressure).
    Sim(SimOutcome),
}

/// One round's outcome, uniform across runtimes: per-destination results
/// in [`CompiledSchedule::destinations`] order, the round's energy cost,
/// and whether every demanded value was delivered. Runtime-specific
/// detail stays reachable through [`RoundReport::detail`] (or the
/// [`RoundReport::fault`] / [`RoundReport::sim`] shortcuts).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundReport {
    destinations: Vec<NodeId>,
    results: Vec<Option<f64>>,
    cost: RoundCost,
    delivered: bool,
    detail: RoundDetail,
}

impl RoundReport {
    fn compiled(destinations: Vec<NodeId>, results: &[f64], cost: RoundCost) -> Self {
        RoundReport {
            destinations,
            results: results.iter().copied().map(Some).collect(),
            cost,
            delivered: true,
            detail: RoundDetail::Compiled,
        }
    }

    fn from_fault(destinations: Vec<NodeId>, out: FaultOutcome) -> Self {
        RoundReport {
            destinations,
            results: out.results.clone(),
            cost: out.cost,
            delivered: out.delivered,
            detail: RoundDetail::Lossy(out),
        }
    }

    fn from_sim(destinations: Vec<NodeId>, out: SimOutcome) -> Self {
        RoundReport {
            destinations,
            results: out.outcome.results.clone(),
            cost: out.outcome.cost,
            delivered: out.outcome.delivered,
            detail: RoundDetail::Sim(out),
        }
    }

    /// The destinations, in result order.
    #[inline]
    pub fn destinations(&self) -> &[NodeId] {
        &self.destinations
    }

    /// Per-destination results; `None` marks a destination whose value
    /// was lost this round (never on the compiled runtime).
    #[inline]
    pub fn results(&self) -> &[Option<f64>] {
        &self.results
    }

    /// The result delivered to `destination`, if any.
    pub fn result(&self, destination: NodeId) -> Option<f64> {
        self.destinations
            .iter()
            .position(|&d| d == destination)
            .and_then(|i| self.results[i])
    }

    /// The delivered results as a map (lost destinations are absent).
    pub fn result_map(&self) -> BTreeMap<NodeId, f64> {
        self.destinations
            .iter()
            .zip(&self.results)
            .filter_map(|(&d, r)| r.map(|v| (d, v)))
            .collect()
    }

    /// The round's energy cost.
    #[inline]
    pub fn cost(&self) -> RoundCost {
        self.cost
    }

    /// True when every demanded value reached its destination.
    #[inline]
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// The runtime this round executed under.
    pub fn runtime(&self) -> Runtime {
        match self.detail {
            RoundDetail::Compiled => Runtime::Compiled,
            RoundDetail::Lossy(_) => Runtime::Lossy,
            RoundDetail::Sim(_) => Runtime::Sim,
        }
    }

    /// Runtime-specific detail.
    #[inline]
    pub fn detail(&self) -> &RoundDetail {
        &self.detail
    }

    /// The lossy runtime's full outcome, when this round ran under
    /// [`Runtime::Lossy`] or [`Runtime::Sim`] (a sim round wraps one).
    pub fn fault(&self) -> Option<&FaultOutcome> {
        match &self.detail {
            RoundDetail::Compiled => None,
            RoundDetail::Lossy(out) => Some(out),
            RoundDetail::Sim(out) => Some(&out.outcome),
        }
    }

    /// The discrete-event runtime's full outcome, when this round ran
    /// under [`Runtime::Sim`].
    pub fn sim(&self) -> Option<&SimOutcome> {
        match &self.detail {
            RoundDetail::Sim(out) => Some(out),
            _ => None,
        }
    }
}

/// One live aggregation deployment: plan, compiled executor, fault
/// engine, and churn loop behind a single facade. Construct with
/// [`Session::builder`].
#[derive(Debug)]
pub struct Session {
    config: Config,
    /// The runtime [`Session::run`] dispatches to.
    runtime: Runtime,
    driver: EpochDriver,
    delivery: DeliveryModel,
    /// Lazily built, invalidated whenever the compiled schedule moves.
    faults: Option<FaultyExec>,
    /// The discrete-event runtime and its warm state, lazily built and
    /// invalidated alongside `faults`.
    sim: Option<(SimExec, SimState)>,
    churn: Option<ChurnController>,
    tracker: DegradationTracker,
    /// Present when the configuration enables observability
    /// ([`Config::obs`]); fed serially from every lossy round.
    recorder: Option<FlightRecorder>,
    base_salt: u64,
    /// Lossy rounds executed so far — advances the per-round salt.
    rounds_run: u64,
}

impl Session {
    /// Starts building a session for `spec` over `network` (owned or
    /// shared — service tenants pass the deployment's `Arc`).
    pub fn builder(network: impl Into<Arc<Network>>, spec: AggregationSpec) -> SessionBuilder {
        SessionBuilder {
            network: network.into(),
            spec,
            mode: RoutingMode::ShortestPathTrees,
            config: Config::default(),
            delivery: DeliveryModel::reliable(),
            quality: None,
            base_salt: DEFAULT_BASE_SALT,
            runtime: None,
            substrate: None,
            solve_cache: None,
            rounds_cursor: 0,
        }
    }

    /// The session's configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The runtime [`Session::run`] / [`Session::run_rounds`] execute
    /// under.
    #[inline]
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The network the plan is maintained for.
    #[inline]
    pub fn network(&self) -> &Network {
        self.driver.maintainer().network()
    }

    /// A shared handle to the deployment this session plans over.
    #[inline]
    pub fn network_arc(&self) -> Arc<Network> {
        self.driver.maintainer().network_arc()
    }

    /// The current workload.
    #[inline]
    pub fn spec(&self) -> &AggregationSpec {
        self.driver.maintainer().spec()
    }

    /// The compiled executor for the current plan.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        self.driver.compiled()
    }

    /// The underlying epoch driver (maintainer, recompile counters).
    #[inline]
    pub fn driver(&self) -> &EpochDriver {
        &self.driver
    }

    /// The delivery model lossy rounds run under.
    #[inline]
    pub fn delivery(&self) -> &DeliveryModel {
        &self.delivery
    }

    /// Swaps the delivery model (takes effect from the next lossy round).
    pub fn set_delivery(&mut self, model: DeliveryModel) {
        self.delivery = model;
    }

    /// The base salt the replayable failure stream draws from.
    #[inline]
    pub fn base_salt(&self) -> u64 {
        self.base_salt
    }

    /// Lossy/sim rounds executed so far — the salt-stream cursor.
    /// Restore it across restarts with [`SessionBuilder::rounds_cursor`].
    #[inline]
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Per-destination staleness accumulated over lossy rounds.
    #[inline]
    pub fn degradation(&self) -> &DegradationTracker {
        &self.tracker
    }

    /// The churn controller, if a tracked quality was configured.
    #[inline]
    pub fn churn(&self) -> Option<&ChurnController> {
        self.churn.as_ref()
    }

    /// The flight recorder, if observability is configured on.
    #[inline]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Renders the flight recorder (plus the process-wide per-node
    /// planes) as the versioned observability dump, or `None` when
    /// observability is off. See [`FlightRecorder::dump`].
    pub fn obs_dump(&self) -> Option<m2m_telemetry::json::JsonValue> {
        self.recorder.as_ref().map(|r| r.dump(DEFAULT_BATTERY_UJ))
    }

    /// Executes one round under the session's [`Runtime`] and returns
    /// the unified [`RoundReport`]. Lossy and sim rounds advance the
    /// replayable salt stream and feed the degradation tracker; compiled
    /// rounds are pure and leave the cursor untouched.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run(&mut self, readings: &BTreeMap<NodeId, f64>) -> RoundReport {
        let destinations: Vec<NodeId> = self.driver.compiled().destinations().collect();
        match self.runtime {
            Runtime::Compiled => {
                let compiled = self.driver.compiled();
                let mut state = ExecState::for_schedule(compiled);
                let cost = compiled.run_round_on(readings, &mut state);
                RoundReport::compiled(destinations, state.results(), cost)
            }
            Runtime::Lossy => RoundReport::from_fault(destinations, self.lossy_round(readings)),
            Runtime::Sim => RoundReport::from_sim(destinations, self.sim_round(readings)),
        }
    }

    /// Runs one round per dense reading row (in
    /// [`CompiledSchedule::sources`] slot order) under the session's
    /// [`Runtime`], returning one [`RoundReport`] per row. Batches are
    /// bit-identical to running the rows one at a time with
    /// [`Session::run`] at any configured thread count or lane width.
    pub fn run_rounds(&mut self, rounds: &[Vec<f64>]) -> Vec<RoundReport> {
        let destinations: Vec<NodeId> = self.driver.compiled().destinations().collect();
        match self.runtime {
            Runtime::Compiled => {
                let slab = self.epochs_slab(rounds);
                (0..slab.rounds())
                    .map(|r| {
                        RoundReport::compiled(destinations.clone(), slab.round(r), slab.cost())
                    })
                    .collect()
            }
            Runtime::Lossy => self
                .lossy_rounds(rounds)
                .into_iter()
                .map(|out| RoundReport::from_fault(destinations.clone(), out))
                .collect(),
            Runtime::Sim => self
                .sim_rounds(rounds)
                .into_iter()
                .map(|out| RoundReport::from_sim(destinations.clone(), out))
                .collect(),
        }
    }

    /// Executes one reliable round and returns `(results, cost)` — the
    /// compiled fast path, numerically identical to the reference
    /// executor.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    #[deprecated(note = "use Session::run with Runtime::Compiled (the default runtime)")]
    pub fn run_round(
        &self,
        readings: &BTreeMap<NodeId, f64>,
    ) -> (BTreeMap<NodeId, f64>, RoundCost) {
        let compiled = self.driver.compiled();
        let mut state = ExecState::for_schedule(compiled);
        let cost = compiled.run_round_on(readings, &mut state);
        (state.result_map(compiled), cost)
    }

    /// Runs one reliable round per dense reading row (in
    /// [`CompiledSchedule::sources`] slot order) through the lane-batched
    /// executor at the configured lane width and thread count, returning
    /// the flat result slab — the allocation-free shape.
    #[deprecated(
        note = "use Session::run_rounds, or crate::exec::run_epochs_slab for the raw slab"
    )]
    pub fn run_epochs_slab(&self, rounds: &[Vec<f64>]) -> EpochSlab {
        self.epochs_slab(rounds)
    }

    /// Like the epoch slab, expanded into per-round [`EpochOutcome`]s
    /// (compatibility shape; identical bits).
    #[deprecated(note = "use Session::run_rounds")]
    pub fn run_epochs(&self, rounds: &[Vec<f64>]) -> Vec<EpochOutcome> {
        self.epochs_slab(rounds).into_outcomes()
    }

    /// The retry policy lossy rounds run under (from the configuration).
    #[inline]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.config.retry_policy()
    }

    /// Executes one round under the session's delivery model and retry
    /// policy, advancing the replayable salt stream and feeding the
    /// degradation tracker.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    #[deprecated(note = "use SessionBuilder::runtime(Runtime::Lossy) and Session::run")]
    pub fn run_round_lossy(&mut self, readings: &BTreeMap<NodeId, f64>) -> FaultOutcome {
        self.lossy_round(readings)
    }

    /// Runs one lossy round per dense reading row across the configured
    /// thread count. Outcomes are in input order and identical at any
    /// thread count; each round draws its own salt from the session's
    /// stream, and every outcome feeds the degradation tracker.
    #[deprecated(note = "use SessionBuilder::runtime(Runtime::Lossy) and Session::run_rounds")]
    pub fn run_rounds_lossy(&mut self, rounds: &[Vec<f64>]) -> Vec<FaultOutcome> {
        self.lossy_rounds(rounds)
    }

    /// Executes one round through the discrete-event simulator
    /// ([`crate::sim`]) under the session's delivery model, retry policy,
    /// and configured queue/latency parameters ([`Config::sim_params`]).
    /// Shares the replayable salt stream with the lossy runtime (each
    /// consumed round advances the same cursor) and feeds the same
    /// degradation tracker and flight recorder.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    #[deprecated(note = "use SessionBuilder::runtime(Runtime::Sim) and Session::run")]
    pub fn run_round_sim(&mut self, readings: &BTreeMap<NodeId, f64>) -> SimOutcome {
        self.sim_round(readings)
    }

    /// Runs one simulated round per dense reading row (in
    /// [`CompiledSchedule::sources`] slot order), drawing one salt per
    /// round from the session's stream — the same salts the lossy
    /// runtime would draw, so either runtime can replay the other's
    /// failure history.
    #[deprecated(note = "use SessionBuilder::runtime(Runtime::Sim) and Session::run_rounds")]
    pub fn run_rounds_sim(&mut self, rounds: &[Vec<f64>]) -> Vec<SimOutcome> {
        self.sim_rounds(rounds)
    }

    fn epochs_slab(&self, rounds: &[Vec<f64>]) -> EpochSlab {
        run_epochs_slab(
            self.driver.compiled(),
            rounds,
            self.config.lanes(),
            self.config.resolved_threads(),
        )
    }

    fn lossy_round(&mut self, readings: &BTreeMap<NodeId, f64>) -> FaultOutcome {
        self.ensure_faults();
        let policy = self.config.retry_policy();
        let round = self.rounds_run;
        let salt = self.base_salt.wrapping_add(round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += 1;
        let faults = self.faults.as_ref().expect("ensured above");
        let mut scratch = faults.scratch();
        let out = faults.run_on(readings, &self.delivery, &policy, salt, &mut scratch);
        self.tracker.observe(&out);
        if let Some(rec) = &mut self.recorder {
            rec.record_round(round, &out);
        }
        out
    }

    fn lossy_rounds(&mut self, rounds: &[Vec<f64>]) -> Vec<FaultOutcome> {
        self.ensure_faults();
        let policy = self.config.retry_policy();
        let first_round = self.rounds_run;
        let salt = self
            .base_salt
            .wrapping_add(first_round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += rounds.len() as u64;
        let faults = self.faults.as_ref().expect("ensured above");
        let outcomes = faults.run_rounds(
            rounds,
            &self.delivery,
            &policy,
            salt,
            self.config.resolved_threads(),
        );
        for (i, out) in outcomes.iter().enumerate() {
            self.tracker.observe(out);
            if let Some(rec) = &mut self.recorder {
                rec.record_round(first_round + i as u64, out);
            }
        }
        outcomes
    }

    fn sim_round(&mut self, readings: &BTreeMap<NodeId, f64>) -> SimOutcome {
        self.ensure_sim();
        let policy = self.config.retry_policy();
        let round = self.rounds_run;
        let salt = self.base_salt.wrapping_add(round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += 1;
        let delivery = &self.delivery;
        let (sim, st) = self.sim.as_mut().expect("ensured above");
        let out = sim.run_on(readings, delivery, &policy, salt, st);
        self.tracker.observe(&out.outcome);
        if let Some(rec) = &mut self.recorder {
            rec.record_round(round, &out.outcome);
            rec.record_sim_round(round, &out);
        }
        out
    }

    fn sim_rounds(&mut self, rounds: &[Vec<f64>]) -> Vec<SimOutcome> {
        self.ensure_sim();
        let policy = self.config.retry_policy();
        let first = self.rounds_run;
        self.rounds_run += rounds.len() as u64;
        let base_salt = self.base_salt;
        let delivery = &self.delivery;
        let (sim, st) = self.sim.as_mut().expect("ensured above");
        let outcomes: Vec<SimOutcome> = rounds
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let salt = base_salt.wrapping_add((first + i as u64).wrapping_mul(SALT_STRIDE));
                sim.run(row, delivery, &policy, salt, st)
            })
            .collect();
        for (i, out) in outcomes.iter().enumerate() {
            self.tracker.observe(&out.outcome);
            if let Some(rec) = &mut self.recorder {
                rec.record_round(first + i as u64, &out.outcome);
                rec.record_sim_round(first + i as u64, out);
            }
        }
        outcomes
    }

    /// Applies one workload update through the incremental maintainer;
    /// the compiled executor (and the fault engine, lazily) resync.
    pub fn apply(&mut self, update: WorkloadUpdate) -> UpdateStats {
        let stats = self.driver.apply(update);
        self.faults = None;
        self.sim = None;
        stats
    }

    /// Installs externally built routing tables and resyncs. Staleness
    /// measured the old paths, so it resets with them.
    pub fn apply_route_change(&mut self, routing: RoutingTables) -> UpdateStats {
        let stats = self.driver.apply_route_change(routing);
        self.faults = None;
        self.sim = None;
        self.tracker.reset_staleness();
        if let Some(rec) = &mut self.recorder {
            rec.record_route_change(self.rounds_run);
        }
        stats
    }

    /// The churn loop: compares `current` quality against the tracked
    /// baseline; if the worst relative ETX drift exceeds the configured
    /// hysteresis, rebuilds ETX-weighted routes, pushes them through the
    /// maintainer (incremental re-optimization + recompile), and adopts
    /// `current` as the new baseline. Returns the update stats when a
    /// reroute fired, `None` when the drift was absorbed (or no quality
    /// is tracked).
    pub fn observe_quality(&mut self, current: &LinkQuality) -> Option<UpdateStats> {
        let churn = self.churn.as_mut()?;
        let fired = churn.should_reroute(current);
        if let Some(rec) = &mut self.recorder {
            rec.record_churn(self.rounds_run, fired);
        }
        if !fired {
            return None;
        }
        churn.rebase(current.clone());
        let demands = self.driver.maintainer().spec().source_to_destinations();
        let routing = weighted_routing(self.driver.maintainer().network(), &demands, current);
        let stats = self.driver.apply_route_change(routing);
        self.faults = None;
        self.sim = None;
        // The new routes owe nothing for the old paths' outages.
        self.tracker.reset_staleness();
        Some(stats)
    }

    /// Writes the telemetry snapshot to the configured trace output, if
    /// any, returning the path written (see [`Config::export_telemetry`]).
    pub fn export_telemetry(&self) -> Option<String> {
        self.config.export_telemetry()
    }

    fn ensure_faults(&mut self) {
        if self.faults.is_none() {
            self.faults = Some(FaultyExec::new(
                self.driver.maintainer().network(),
                self.driver.compiled(),
            ));
        }
    }

    fn ensure_sim(&mut self) {
        if self.sim.is_none() {
            let sim = SimExec::with_params(
                self.driver.maintainer().network(),
                self.driver.compiled(),
                self.config.sim_params(),
            );
            let st = sim.state();
            self.sim = Some((sim, st));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::weighted_average([
                (NodeId(0), 1.0),
                (NodeId(1), 2.0),
                (NodeId(6), 1.5),
            ]),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(2), 3.0)]),
        );
        s
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 0.5 + 1.0))
            .collect()
    }

    #[test]
    fn session_round_matches_the_reference_results() {
        let net = network();
        let spec = spec();
        let mut session = Session::builder(net, spec.clone()).build();
        assert_eq!(session.runtime(), Runtime::Compiled);
        let vals = readings(session.network());
        let report = session.run(&vals);
        assert!(report.cost().total_uj() > 0.0);
        assert!(report.delivered());
        assert_eq!(report.detail(), &RoundDetail::Compiled);
        for (d, f) in spec.functions() {
            let expected = f.reference_result(&vals);
            assert!(
                (report.result(d).unwrap() - expected).abs() < 1e-9,
                "destination {d}"
            );
        }
        let map = report.result_map();
        assert_eq!(map.len(), spec.destination_count());
    }

    #[test]
    fn reliable_lossy_rounds_agree_with_the_plain_path() {
        let net = Arc::new(network());
        let mut plain = Session::builder(Arc::clone(&net), spec()).build();
        let mut lossy = Session::builder(net, spec())
            .runtime(Runtime::Lossy)
            .config(Config::builder().retries(4).build())
            .build();
        let vals = readings(plain.network());
        let plain_report = plain.run(&vals);
        let report = lossy.run(&vals);
        assert!(report.delivered());
        assert!(report.fault().is_some(), "lossy detail rides along");
        assert_eq!(report.runtime(), Runtime::Lossy);
        for (&d, &r) in report.destinations().iter().zip(report.results()) {
            assert_eq!(r, plain_report.result(d), "destination {d}");
        }
        assert_eq!(lossy.degradation().rounds(), 1);
        assert_eq!(lossy.degradation().max_staleness(), 0);
        assert_eq!(lossy.rounds_run(), 1, "lossy rounds advance the cursor");
        assert_eq!(plain.rounds_run(), 0, "compiled rounds do not");
    }

    #[test]
    fn lossy_batches_are_replayable_and_feed_the_tracker() {
        let build = || {
            Session::builder(network(), spec())
                .runtime(Runtime::Lossy)
                .delivery(DeliveryModel::uniform(0.3, 9))
                .build()
        };
        let slots = build().compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..slots).map(|s| (r + s) as f64).collect())
            .collect();
        let mut a = build();
        let mut b = build();
        let batch = a.run_rounds(&rounds);
        assert_eq!(batch, b.run_rounds(&rounds));
        assert_eq!(a.degradation().rounds(), 6);
        // Sequential singles draw the same salts as the batch.
        let mut c = build();
        let dense_maps: Vec<BTreeMap<NodeId, f64>> = rounds
            .iter()
            .map(|row| {
                c.compiled()
                    .sources()
                    .ids()
                    .iter()
                    .zip(row)
                    .map(|(&s, &v)| (s, v))
                    .collect()
            })
            .collect();
        let singles: Vec<RoundReport> = dense_maps.iter().map(|m| c.run(m)).collect();
        assert_eq!(singles, batch);
    }

    #[test]
    fn route_change_resets_staleness_and_is_recorded() {
        use m2m_telemetry::timeseries::{self, EventKind};
        // Near-total loss with a single attempt: every round degrades.
        let mut session = Session::builder(network(), spec())
            .runtime(Runtime::Lossy)
            .delivery(DeliveryModel::uniform(0.95, 5))
            .config(Config::builder().retries(1).obs(true).obs_cap(64).build())
            .build();
        let slots = session.compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..slots).map(|s| (r + s) as f64).collect())
            .collect();
        session.run_rounds(&rounds);
        assert!(
            session.degradation().max_staleness() > 0,
            "p=0.95 with one attempt must degrade coverage"
        );
        let routing = RoutingTables::build(
            session.network(),
            &session.spec().source_to_destinations(),
            RoutingMode::SharedSpanningTree,
        );
        session.apply_route_change(routing);
        assert_eq!(
            session.degradation().max_staleness(),
            0,
            "new routes must not inherit the old paths' staleness debt"
        );
        let rec = session.recorder().expect("obs session records");
        assert!(
            rec.events().any(|e| e.kind == EventKind::RouteChange),
            "the recorder must log the route change"
        );
        assert!(
            rec.events().any(|e| e.kind == EventKind::StaleEnter),
            "degraded rounds must log staleness transitions"
        );
        timeseries::set_obs_enabled(false);
        timeseries::reset_planes();
    }

    #[test]
    fn quality_drift_past_hysteresis_reroutes_once() {
        let net = network();
        let base = LinkQuality::distance_based(&net, 0.15, 3);
        let mut session = Session::builder(net, spec())
            .quality(base.clone())
            .config(Config::builder().hysteresis(0.3).build())
            .build();
        // In-threshold drift: absorbed.
        assert!(session.observe_quality(&base.with_drift(0.02, 5)).is_none());
        assert_eq!(session.churn().unwrap().suppressed(), 1);
        let recompiles_before = session.driver().recompiles();
        // Collapse one link the plan uses: drift blows past 30%.
        let mut bad = base.clone();
        let ((a, b), _) = base.links().next().unwrap();
        bad.set_loss(a, b, 0.9);
        let stats = session.observe_quality(&bad);
        assert!(stats.is_some(), "reroute must fire");
        assert_eq!(session.churn().unwrap().reroutes(), 1);
        assert!(session.driver().recompiles() >= recompiles_before);
        // Rebased: the same quality no longer trips the gate.
        assert!(session.observe_quality(&bad).is_none());
        // The session still answers correctly after the reroute.
        let vals = readings(session.network());
        let report = session.run(&vals);
        let expected = session
            .spec()
            .function(NodeId(15))
            .unwrap()
            .reference_result(&vals);
        assert!((report.result(NodeId(15)).unwrap() - expected).abs() < 1e-9);
    }

    /// The old per-runtime families are wrappers over the same
    /// internals; pin the equivalence so the deprecation is safe.
    #[test]
    #[allow(deprecated)]
    fn unified_batches_match_the_deprecated_wrappers() {
        let slots = Session::builder(network(), spec())
            .build()
            .compiled()
            .sources()
            .len();
        let rounds: Vec<Vec<f64>> = (0..11)
            .map(|r| (0..slots).map(|s| (r * 7 + s) as f64 * 0.3 - 2.0).collect())
            .collect();
        // Compiled: reports vs the epoch slab, at every lane width.
        let mut session = Session::builder(network(), spec()).build();
        let slab = session.run_epochs_slab(&rounds);
        let outcomes = session.run_epochs(&rounds);
        assert_eq!(slab.rounds(), rounds.len());
        assert_eq!(slab.destination_count(), 2);
        for (r, out) in outcomes.iter().enumerate() {
            assert_eq!(slab.round(r), out.results.as_slice());
            assert_eq!(slab.cost(), out.cost);
        }
        let reports = session.run_rounds(&rounds);
        for (r, report) in reports.iter().enumerate() {
            let row: Vec<Option<f64>> = slab.round(r).iter().copied().map(Some).collect();
            assert_eq!(report.results(), row.as_slice());
            assert_eq!(report.cost(), slab.cost());
        }
        // Lane width is a pure throughput knob: identical bits at every
        // width and thread count.
        for w in crate::exec::SUPPORTED_LANE_WIDTHS {
            let s = Session::builder(network(), spec())
                .config(Config::builder().lanes(w).threads(2).build())
                .build();
            assert_eq!(s.run_epochs_slab(&rounds), slab, "width {w}");
        }
        // Lossy: wrapper outcomes are the reports' details.
        let lossy_build = || {
            Session::builder(network(), spec())
                .delivery(DeliveryModel::uniform(0.3, 9))
                .build()
        };
        let wrapped = lossy_build().run_rounds_lossy(&rounds);
        let reports = {
            let mut s = lossy_build();
            s.runtime = Runtime::Lossy;
            s.run_rounds(&rounds)
        };
        assert_eq!(
            wrapped,
            reports
                .iter()
                .map(|r| r.fault().unwrap().clone())
                .collect::<Vec<_>>()
        );
        // Sim: same, with the sim detail.
        let wrapped = lossy_build().run_rounds_sim(&rounds);
        let reports = {
            let mut s = lossy_build();
            s.runtime = Runtime::Sim;
            s.run_rounds(&rounds)
        };
        assert_eq!(
            wrapped,
            reports
                .iter()
                .map(|r| r.sim().unwrap().clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sim_rounds_match_the_plain_path_and_record_queue_pressure() {
        use m2m_telemetry::timeseries::{self, EventKind};
        let net = Arc::new(network());
        let mut plain = Session::builder(Arc::clone(&net), spec()).build();
        let mut session = Session::builder(net, spec())
            .runtime(Runtime::Sim)
            .config(Config::builder().obs(true).obs_cap(64).build())
            .build();
        let vals = readings(session.network());
        let plain_report = plain.run(&vals);
        let report = session.run(&vals);
        assert!(report.delivered());
        let sim = report.sim().expect("sim detail rides along");
        assert!(sim.events > 0 && sim.ticks > 0);
        for (&d, &r) in report.destinations().iter().zip(report.results()) {
            assert_eq!(r, plain_report.result(d), "destination {d}");
        }
        assert_eq!(session.degradation().rounds(), 1);
        let rec = session.recorder().expect("obs session records");
        assert!(
            rec.events().any(|e| e.kind == EventKind::SimRound),
            "sim rounds must land in the event ring"
        );
        // Workload updates rebuild the simulator on next use.
        session.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(9),
            function: AggregateFunction::weighted_sum([(NodeId(4), 1.0), (NodeId(8), 1.0)]),
        });
        let report = session.run(&vals);
        assert_eq!(report.results().len(), 3, "new destination joins");
        timeseries::set_obs_enabled(false);
        timeseries::reset_planes();
    }

    #[test]
    fn workload_updates_invalidate_the_fault_engine() {
        let mut session = Session::builder(network(), spec())
            .runtime(Runtime::Lossy)
            .build();
        let vals = readings(session.network());
        let report = session.run(&vals);
        assert_eq!(report.results().len(), 2);
        session.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(9),
            function: AggregateFunction::weighted_sum([(NodeId(4), 1.0), (NodeId(8), 1.0)]),
        });
        let report = session.run(&vals);
        assert_eq!(
            report.results().len(),
            3,
            "new destination joins the results"
        );
        assert!(report.delivered());
    }

    #[test]
    fn substrate_reuse_is_bit_identical_to_a_cold_build() {
        let net = Arc::new(network());
        let cold = Session::builder(Arc::clone(&net), spec()).build();
        let routing = cold.driver().maintainer().routing_arc();
        let topo = Arc::clone(cold.driver().maintainer().topology());
        let mut warm = Session::builder(Arc::clone(&net), spec())
            .substrate(routing, topo)
            .build();
        assert_eq!(
            cold.driver().maintainer().plan().solutions(),
            warm.driver().maintainer().plan().solutions(),
            "substrate reuse must reproduce the cold plan bit-for-bit"
        );
        let vals = readings(warm.network());
        let mut cold = cold;
        assert_eq!(cold.run(&vals), warm.run(&vals));
    }

    #[test]
    fn shared_solve_cache_serves_a_twin_session_entirely_from_cache() {
        let net = Arc::new(network());
        let cache = Arc::new(Mutex::new(SharedSolveCache::new()));
        let mut first = Session::builder(Arc::clone(&net), spec())
            .solve_cache(Arc::clone(&cache))
            .build();
        let misses = cache.lock().unwrap().misses();
        assert!(misses > 0, "the first session solves fresh");
        assert_eq!(cache.lock().unwrap().hits(), 0);
        let mut twin = Session::builder(Arc::clone(&net), spec())
            .solve_cache(Arc::clone(&cache))
            .build();
        let c = cache.lock().unwrap();
        assert_eq!(c.misses(), misses, "the twin adds no fresh solves");
        assert_eq!(c.hits(), misses, "every twin edge is served cached");
        drop(c);
        let vals = readings(first.network());
        assert_eq!(first.run(&vals), twin.run(&vals));
        // And against a cache-free build: bit-identical plans.
        let plain = Session::builder(net, spec()).build();
        assert_eq!(
            plain.driver().maintainer().plan().solutions(),
            twin.driver().maintainer().plan().solutions()
        );
    }

    #[test]
    #[should_panic(expected = "substrate routing mode")]
    fn mismatched_substrate_mode_is_rejected() {
        let net = Arc::new(network());
        let cold = Session::builder(Arc::clone(&net), spec()).build();
        let routing = cold.driver().maintainer().routing_arc();
        let topo = Arc::clone(cold.driver().maintainer().topology());
        let _ = Session::builder(net, spec())
            .routing_mode(RoutingMode::SharedSpanningTree)
            .substrate(routing, topo)
            .build();
    }

    #[test]
    #[should_panic(expected = "demanded pairs")]
    fn mismatched_substrate_spec_is_rejected() {
        let net = Arc::new(network());
        let cold = Session::builder(Arc::clone(&net), spec()).build();
        let routing = cold.driver().maintainer().routing_arc();
        let topo = Arc::clone(cold.driver().maintainer().topology());
        let mut other = spec();
        other.add_function(
            NodeId(9),
            AggregateFunction::weighted_sum([(NodeId(4), 1.0)]),
        );
        let _ = Session::builder(net, other)
            .substrate(routing, topo)
            .build();
    }

    #[test]
    fn rounds_cursor_resumes_the_salt_stream() {
        let build = || {
            Session::builder(network(), spec())
                .runtime(Runtime::Lossy)
                .delivery(DeliveryModel::uniform(0.3, 9))
                .build()
        };
        let slots = build().compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..slots).map(|s| (r + s) as f64).collect())
            .collect();
        let mut full = build();
        let all = full.run_rounds(&rounds);
        // Run the first half, "restart" with the cursor, run the rest.
        let mut before = build();
        before.run_rounds(&rounds[..3]);
        let mut resumed = Session::builder(network(), spec())
            .runtime(Runtime::Lossy)
            .delivery(DeliveryModel::uniform(0.3, 9))
            .rounds_cursor(before.rounds_run())
            .build();
        assert_eq!(resumed.rounds_run(), 3);
        let tail = resumed.run_rounds(&rounds[3..]);
        assert_eq!(tail, all[3..], "the resumed stream replays the original");
    }
}
