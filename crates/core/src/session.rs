//! The unified Session API: one object that owns the whole pipeline —
//! plan maintenance, compiled execution, fault-tolerant rounds, and the
//! quality-drift churn loop — configured through one typed
//! [`Config`].
//!
//! Before this module, a full deployment required wiring five layers by
//! hand: build routing tables, assemble a [`crate::plan::GlobalPlan`],
//! compile it, keep a [`crate::dynamics::PlanMaintainer`] in sync, and
//! (for lossy links) drive [`FaultyExec`] with fresh salts. [`Session`]
//! packages that wiring behind a builder:
//!
//! ```
//! use m2m_core::prelude::*;
//!
//! let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
//! let mut spec = AggregationSpec::new();
//! spec.add_function(
//!     NodeId(12),
//!     AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(5), 2.0)]),
//! );
//! let session = Session::builder(net, spec)
//!     .routing_mode(RoutingMode::ShortestPathTrees)
//!     .build();
//! let readings: std::collections::BTreeMap<NodeId, f64> =
//!     session.network().nodes().map(|v| (v, 1.0)).collect();
//! let (results, cost) = session.run_round(&readings);
//! assert!((results[&NodeId(12)] - 3.0).abs() < 1e-9);
//! assert!(cost.total_uj() > 0.0);
//! ```
//!
//! The fault-tolerant loop adds a [`DeliveryModel`] and, optionally, a
//! tracked [`LinkQuality`]: [`Session::run_round_lossy`] executes rounds
//! under loss with the configured [`RetryPolicy`], feeding a
//! [`DegradationTracker`]; [`Session::observe_quality`] closes the churn
//! loop — ETX drift past the configured hysteresis rebuilds the routing
//! tables ([`m2m_netsim::quality::weighted_routing`]), pushes them through
//! the incremental maintainer, and recompiles only what changed.

use std::collections::BTreeMap;

use m2m_graph::NodeId;
use m2m_netsim::quality::{weighted_routing, LinkQuality};
use m2m_netsim::{DeliveryModel, Network, RoutingMode, RoutingTables};

use crate::config::Config;
use crate::dynamics::{UpdateStats, WorkloadUpdate};
use crate::exec::{
    run_epochs_slab, CompiledSchedule, EpochDriver, EpochOutcome, EpochSlab, ExecState,
};
use crate::faults::{
    ChurnController, DegradationTracker, FaultOutcome, FaultyExec, RetryPolicy, SALT_STRIDE,
};
use crate::metrics::RoundCost;
use crate::obs::{FlightRecorder, DEFAULT_BATTERY_UJ};
use crate::sim::{SimExec, SimOutcome, SimState};
use crate::spec::AggregationSpec;

/// The default base salt for lossy rounds; chosen arbitrarily, fixed for
/// replayability. Override with [`SessionBuilder::base_salt`].
const DEFAULT_BASE_SALT: u64 = 0x6d32_6d5f_7365_6564; // "m2m_seed"

/// Builder for [`Session`] — see the module docs for the full tour.
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    network: Network,
    spec: AggregationSpec,
    mode: RoutingMode,
    config: Config,
    delivery: DeliveryModel,
    quality: Option<LinkQuality>,
    base_salt: u64,
}

impl SessionBuilder {
    /// Routing-tree construction mode (default:
    /// [`RoutingMode::ShortestPathTrees`], the paper's standard
    /// algorithm). Ignored for the *initial* routes when a tracked
    /// quality is set (they are then ETX-weighted), but still used by
    /// the maintainer for workload-driven re-routes.
    #[must_use]
    pub fn routing_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the configuration (default: [`Config::from_env`]).
    #[must_use]
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// The delivery model lossy rounds run under (default: reliable).
    #[must_use]
    pub fn delivery(mut self, model: DeliveryModel) -> Self {
        self.delivery = model;
        self
    }

    /// Tracks link quality: initial routes become ETX-weighted for this
    /// baseline, and [`Session::observe_quality`] arms the churn loop
    /// with the configured hysteresis.
    #[must_use]
    pub fn quality(mut self, quality: LinkQuality) -> Self {
        self.quality = Some(quality);
        self
    }

    /// Base salt for the lossy-round failure stream (fixed default, so
    /// sessions are replayable; change it to decorrelate experiments).
    #[must_use]
    pub fn base_salt(mut self, salt: u64) -> Self {
        self.base_salt = salt;
        self
    }

    /// Builds the session: routes, plans, compiles.
    ///
    /// # Panics
    /// Panics if the initial plan is unschedulable (Theorem 2 cycle).
    pub fn build(self) -> Session {
        self.config.apply();
        let churn = self
            .quality
            .as_ref()
            .map(|q| ChurnController::new(q.clone(), self.config.hysteresis()));
        let mut driver = EpochDriver::new(self.network, self.spec, self.mode);
        if let Some(quality) = &self.quality {
            let demands = driver.maintainer().spec().source_to_destinations();
            let routing = weighted_routing(driver.maintainer().network(), &demands, quality);
            driver.apply_route_change(routing);
        }
        let recorder = self
            .config
            .obs()
            .then(|| FlightRecorder::new(self.config.obs_every(), self.config.obs_cap()));
        Session {
            config: self.config,
            driver,
            delivery: self.delivery,
            faults: None,
            sim: None,
            churn,
            tracker: DegradationTracker::new(),
            recorder,
            base_salt: self.base_salt,
            rounds_run: 0,
        }
    }
}

/// One live aggregation deployment: plan, compiled executor, fault
/// engine, and churn loop behind a single facade. Construct with
/// [`Session::builder`].
#[derive(Debug)]
pub struct Session {
    config: Config,
    driver: EpochDriver,
    delivery: DeliveryModel,
    /// Lazily built, invalidated whenever the compiled schedule moves.
    faults: Option<FaultyExec>,
    /// The discrete-event runtime and its warm state, lazily built and
    /// invalidated alongside `faults`.
    sim: Option<(SimExec, SimState)>,
    churn: Option<ChurnController>,
    tracker: DegradationTracker,
    /// Present when the configuration enables observability
    /// ([`Config::obs`]); fed serially from every lossy round.
    recorder: Option<FlightRecorder>,
    base_salt: u64,
    /// Lossy rounds executed so far — advances the per-round salt.
    rounds_run: u64,
}

impl Session {
    /// Starts building a session for `spec` over `network`.
    pub fn builder(network: Network, spec: AggregationSpec) -> SessionBuilder {
        SessionBuilder {
            network,
            spec,
            mode: RoutingMode::ShortestPathTrees,
            config: Config::default(),
            delivery: DeliveryModel::reliable(),
            quality: None,
            base_salt: DEFAULT_BASE_SALT,
        }
    }

    /// The session's configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The network the plan is maintained for.
    #[inline]
    pub fn network(&self) -> &Network {
        self.driver.maintainer().network()
    }

    /// The current workload.
    #[inline]
    pub fn spec(&self) -> &AggregationSpec {
        self.driver.maintainer().spec()
    }

    /// The compiled executor for the current plan.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        self.driver.compiled()
    }

    /// The underlying epoch driver (maintainer, recompile counters).
    #[inline]
    pub fn driver(&self) -> &EpochDriver {
        &self.driver
    }

    /// The delivery model lossy rounds run under.
    #[inline]
    pub fn delivery(&self) -> &DeliveryModel {
        &self.delivery
    }

    /// Swaps the delivery model (takes effect from the next lossy round).
    pub fn set_delivery(&mut self, model: DeliveryModel) {
        self.delivery = model;
    }

    /// Per-destination staleness accumulated over lossy rounds.
    #[inline]
    pub fn degradation(&self) -> &DegradationTracker {
        &self.tracker
    }

    /// The churn controller, if a tracked quality was configured.
    #[inline]
    pub fn churn(&self) -> Option<&ChurnController> {
        self.churn.as_ref()
    }

    /// The flight recorder, if observability is configured on.
    #[inline]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Renders the flight recorder (plus the process-wide per-node
    /// planes) as the versioned observability dump, or `None` when
    /// observability is off. See [`FlightRecorder::dump`].
    pub fn obs_dump(&self) -> Option<m2m_telemetry::json::JsonValue> {
        self.recorder.as_ref().map(|r| r.dump(DEFAULT_BATTERY_UJ))
    }

    /// Executes one reliable round and returns `(results, cost)` — the
    /// compiled fast path, numerically identical to the reference
    /// executor.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_round(
        &self,
        readings: &BTreeMap<NodeId, f64>,
    ) -> (BTreeMap<NodeId, f64>, RoundCost) {
        let compiled = self.driver.compiled();
        let mut state = ExecState::for_schedule(compiled);
        let cost = compiled.run_round_on(readings, &mut state);
        (state.result_map(compiled), cost)
    }

    /// Runs one reliable round per dense reading row (in
    /// [`CompiledSchedule::sources`] slot order) through the lane-batched
    /// executor at the configured lane width and thread count, returning
    /// the flat result slab — the allocation-free shape.
    pub fn run_epochs_slab(&self, rounds: &[Vec<f64>]) -> EpochSlab {
        run_epochs_slab(
            self.driver.compiled(),
            rounds,
            self.config.lanes(),
            self.config.resolved_threads(),
        )
    }

    /// Like [`Session::run_epochs_slab`], expanded into per-round
    /// [`EpochOutcome`]s (compatibility shape; identical bits).
    pub fn run_epochs(&self, rounds: &[Vec<f64>]) -> Vec<EpochOutcome> {
        self.run_epochs_slab(rounds).into_outcomes()
    }

    /// The retry policy lossy rounds run under (from the configuration).
    #[inline]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.config.retry_policy()
    }

    /// Executes one round under the session's delivery model and retry
    /// policy, advancing the replayable salt stream and feeding the
    /// degradation tracker.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_round_lossy(&mut self, readings: &BTreeMap<NodeId, f64>) -> FaultOutcome {
        self.ensure_faults();
        let policy = self.config.retry_policy();
        let round = self.rounds_run;
        let salt = self.base_salt.wrapping_add(round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += 1;
        let faults = self.faults.as_ref().expect("ensured above");
        let mut scratch = faults.scratch();
        let out = faults.run_on(readings, &self.delivery, &policy, salt, &mut scratch);
        self.tracker.observe(&out);
        if let Some(rec) = &mut self.recorder {
            rec.record_round(round, &out);
        }
        out
    }

    /// Runs one lossy round per dense reading row across the configured
    /// thread count. Outcomes are in input order and identical at any
    /// thread count; each round draws its own salt from the session's
    /// stream, and every outcome feeds the degradation tracker.
    pub fn run_rounds_lossy(&mut self, rounds: &[Vec<f64>]) -> Vec<FaultOutcome> {
        self.ensure_faults();
        let policy = self.config.retry_policy();
        let first_round = self.rounds_run;
        let salt = self
            .base_salt
            .wrapping_add(first_round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += rounds.len() as u64;
        let faults = self.faults.as_ref().expect("ensured above");
        let outcomes = faults.run_rounds(
            rounds,
            &self.delivery,
            &policy,
            salt,
            self.config.resolved_threads(),
        );
        for (i, out) in outcomes.iter().enumerate() {
            self.tracker.observe(out);
            if let Some(rec) = &mut self.recorder {
                rec.record_round(first_round + i as u64, out);
            }
        }
        outcomes
    }

    /// Executes one round through the discrete-event simulator
    /// ([`crate::sim`]) under the session's delivery model, retry policy,
    /// and configured queue/latency parameters ([`Config::sim_params`]).
    /// Shares the replayable salt stream with [`Session::run_round_lossy`]
    /// (each consumed round advances the same cursor) and feeds the same
    /// degradation tracker and flight recorder.
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_round_sim(&mut self, readings: &BTreeMap<NodeId, f64>) -> SimOutcome {
        self.ensure_sim();
        let policy = self.config.retry_policy();
        let round = self.rounds_run;
        let salt = self.base_salt.wrapping_add(round.wrapping_mul(SALT_STRIDE));
        self.rounds_run += 1;
        let delivery = &self.delivery;
        let (sim, st) = self.sim.as_mut().expect("ensured above");
        let out = sim.run_on(readings, delivery, &policy, salt, st);
        self.tracker.observe(&out.outcome);
        if let Some(rec) = &mut self.recorder {
            rec.record_round(round, &out.outcome);
            rec.record_sim_round(round, &out);
        }
        out
    }

    /// Runs one simulated round per dense reading row (in
    /// [`CompiledSchedule::sources`] slot order), drawing one salt per
    /// round from the session's stream — the same salts
    /// [`Session::run_rounds_lossy`] would draw, so either runtime can
    /// replay the other's failure history.
    pub fn run_rounds_sim(&mut self, rounds: &[Vec<f64>]) -> Vec<SimOutcome> {
        self.ensure_sim();
        let policy = self.config.retry_policy();
        let first = self.rounds_run;
        self.rounds_run += rounds.len() as u64;
        let base_salt = self.base_salt;
        let delivery = &self.delivery;
        let (sim, st) = self.sim.as_mut().expect("ensured above");
        let outcomes: Vec<SimOutcome> = rounds
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let salt = base_salt.wrapping_add((first + i as u64).wrapping_mul(SALT_STRIDE));
                sim.run(row, delivery, &policy, salt, st)
            })
            .collect();
        for (i, out) in outcomes.iter().enumerate() {
            self.tracker.observe(&out.outcome);
            if let Some(rec) = &mut self.recorder {
                rec.record_round(first + i as u64, &out.outcome);
                rec.record_sim_round(first + i as u64, out);
            }
        }
        outcomes
    }

    /// Applies one workload update through the incremental maintainer;
    /// the compiled executor (and the fault engine, lazily) resync.
    pub fn apply(&mut self, update: WorkloadUpdate) -> UpdateStats {
        let stats = self.driver.apply(update);
        self.faults = None;
        self.sim = None;
        stats
    }

    /// Installs externally built routing tables and resyncs. Staleness
    /// measured the old paths, so it resets with them.
    pub fn apply_route_change(&mut self, routing: RoutingTables) -> UpdateStats {
        let stats = self.driver.apply_route_change(routing);
        self.faults = None;
        self.sim = None;
        self.tracker.reset_staleness();
        if let Some(rec) = &mut self.recorder {
            rec.record_route_change(self.rounds_run);
        }
        stats
    }

    /// The churn loop: compares `current` quality against the tracked
    /// baseline; if the worst relative ETX drift exceeds the configured
    /// hysteresis, rebuilds ETX-weighted routes, pushes them through the
    /// maintainer (incremental re-optimization + recompile), and adopts
    /// `current` as the new baseline. Returns the update stats when a
    /// reroute fired, `None` when the drift was absorbed (or no quality
    /// is tracked).
    pub fn observe_quality(&mut self, current: &LinkQuality) -> Option<UpdateStats> {
        let churn = self.churn.as_mut()?;
        let fired = churn.should_reroute(current);
        if let Some(rec) = &mut self.recorder {
            rec.record_churn(self.rounds_run, fired);
        }
        if !fired {
            return None;
        }
        churn.rebase(current.clone());
        let demands = self.driver.maintainer().spec().source_to_destinations();
        let routing = weighted_routing(self.driver.maintainer().network(), &demands, current);
        let stats = self.driver.apply_route_change(routing);
        self.faults = None;
        self.sim = None;
        // The new routes owe nothing for the old paths' outages.
        self.tracker.reset_staleness();
        Some(stats)
    }

    /// Writes the telemetry snapshot to the configured trace output, if
    /// any, returning the path written (see [`Config::export_telemetry`]).
    pub fn export_telemetry(&self) -> Option<String> {
        self.config.export_telemetry()
    }

    fn ensure_faults(&mut self) {
        if self.faults.is_none() {
            self.faults = Some(FaultyExec::new(
                self.driver.maintainer().network(),
                self.driver.compiled(),
            ));
        }
    }

    fn ensure_sim(&mut self) {
        if self.sim.is_none() {
            let sim = SimExec::with_params(
                self.driver.maintainer().network(),
                self.driver.compiled(),
                self.config.sim_params(),
            );
            let st = sim.state();
            self.sim = Some((sim, st));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use m2m_netsim::Deployment;

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::weighted_average([
                (NodeId(0), 1.0),
                (NodeId(1), 2.0),
                (NodeId(6), 1.5),
            ]),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(2), 3.0)]),
        );
        s
    }

    fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
        net.nodes()
            .map(|v| (v, f64::from(v.0) * 0.5 + 1.0))
            .collect()
    }

    #[test]
    fn session_round_matches_the_reference_results() {
        let net = network();
        let spec = spec();
        let session = Session::builder(net, spec.clone()).build();
        let vals = readings(session.network());
        let (results, cost) = session.run_round(&vals);
        assert!(cost.total_uj() > 0.0);
        for (d, f) in spec.functions() {
            let expected = f.reference_result(&vals);
            assert!((results[&d] - expected).abs() < 1e-9, "destination {d}");
        }
    }

    #[test]
    fn reliable_lossy_rounds_agree_with_the_plain_path() {
        let net = network();
        let mut session = Session::builder(net, spec())
            .config(Config::builder().retries(4).build())
            .build();
        let vals = readings(session.network());
        let (plain, _) = session.run_round(&vals);
        let out = session.run_round_lossy(&vals);
        assert!(out.delivered);
        let dests: Vec<NodeId> = session.compiled().destinations().collect();
        for (i, d) in dests.iter().enumerate() {
            assert_eq!(out.results[i], Some(plain[d]), "destination {d}");
        }
        assert_eq!(session.degradation().rounds(), 1);
        assert_eq!(session.degradation().max_staleness(), 0);
    }

    #[test]
    fn lossy_batches_are_replayable_and_feed_the_tracker() {
        let net = network();
        let build = || {
            Session::builder(network(), spec())
                .delivery(DeliveryModel::uniform(0.3, 9))
                .build()
        };
        let slots = build().compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..slots).map(|s| (r + s) as f64).collect())
            .collect();
        let _ = net;
        let mut a = build();
        let mut b = build();
        let batch = a.run_rounds_lossy(&rounds);
        assert_eq!(batch, b.run_rounds_lossy(&rounds));
        assert_eq!(a.degradation().rounds(), 6);
        // Sequential singles draw the same salts as the batch.
        let mut c = build();
        let dense_maps: Vec<BTreeMap<NodeId, f64>> = rounds
            .iter()
            .map(|row| {
                c.compiled()
                    .sources()
                    .ids()
                    .iter()
                    .zip(row)
                    .map(|(&s, &v)| (s, v))
                    .collect()
            })
            .collect();
        let singles: Vec<FaultOutcome> = dense_maps.iter().map(|m| c.run_round_lossy(m)).collect();
        assert_eq!(singles, batch);
    }

    #[test]
    fn route_change_resets_staleness_and_is_recorded() {
        use m2m_telemetry::timeseries::{self, EventKind};
        // Near-total loss with a single attempt: every round degrades.
        let mut session = Session::builder(network(), spec())
            .delivery(DeliveryModel::uniform(0.95, 5))
            .config(Config::builder().retries(1).obs(true).obs_cap(64).build())
            .build();
        let slots = session.compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..slots).map(|s| (r + s) as f64).collect())
            .collect();
        session.run_rounds_lossy(&rounds);
        assert!(
            session.degradation().max_staleness() > 0,
            "p=0.95 with one attempt must degrade coverage"
        );
        let routing = RoutingTables::build(
            session.network(),
            &session.spec().source_to_destinations(),
            RoutingMode::SharedSpanningTree,
        );
        session.apply_route_change(routing);
        assert_eq!(
            session.degradation().max_staleness(),
            0,
            "new routes must not inherit the old paths' staleness debt"
        );
        let rec = session.recorder().expect("obs session records");
        assert!(
            rec.events().any(|e| e.kind == EventKind::RouteChange),
            "the recorder must log the route change"
        );
        assert!(
            rec.events().any(|e| e.kind == EventKind::StaleEnter),
            "degraded rounds must log staleness transitions"
        );
        timeseries::set_obs_enabled(false);
        timeseries::reset_planes();
    }

    #[test]
    fn quality_drift_past_hysteresis_reroutes_once() {
        let net = network();
        let base = LinkQuality::distance_based(&net, 0.15, 3);
        let mut session = Session::builder(net, spec())
            .quality(base.clone())
            .config(Config::builder().hysteresis(0.3).build())
            .build();
        // In-threshold drift: absorbed.
        assert!(session.observe_quality(&base.with_drift(0.02, 5)).is_none());
        assert_eq!(session.churn().unwrap().suppressed(), 1);
        let recompiles_before = session.driver().recompiles();
        // Collapse one link the plan uses: drift blows past 30%.
        let mut bad = base.clone();
        let ((a, b), _) = base.links().next().unwrap();
        bad.set_loss(a, b, 0.9);
        let stats = session.observe_quality(&bad);
        assert!(stats.is_some(), "reroute must fire");
        assert_eq!(session.churn().unwrap().reroutes(), 1);
        assert!(session.driver().recompiles() >= recompiles_before);
        // Rebased: the same quality no longer trips the gate.
        assert!(session.observe_quality(&bad).is_none());
        // The session still answers correctly after the reroute.
        let vals = readings(session.network());
        let (results, _) = session.run_round(&vals);
        let expected = session
            .spec()
            .function(NodeId(15))
            .unwrap()
            .reference_result(&vals);
        assert!((results[&NodeId(15)] - expected).abs() < 1e-9);
    }

    #[test]
    fn epoch_slab_matches_outcomes_at_every_lane_width() {
        let session = Session::builder(network(), spec()).build();
        let slots = session.compiled().sources().len();
        let rounds: Vec<Vec<f64>> = (0..11)
            .map(|r| (0..slots).map(|s| (r * 7 + s) as f64 * 0.3 - 2.0).collect())
            .collect();
        let outcomes = session.run_epochs(&rounds);
        let slab = session.run_epochs_slab(&rounds);
        assert_eq!(slab.rounds(), rounds.len());
        assert_eq!(slab.destination_count(), 2);
        for (r, out) in outcomes.iter().enumerate() {
            assert_eq!(slab.round(r), out.results.as_slice());
            assert_eq!(slab.cost(), out.cost);
        }
        // Lane width is a pure throughput knob: identical bits at every
        // width and thread count.
        for w in crate::exec::SUPPORTED_LANE_WIDTHS {
            let s = Session::builder(network(), spec())
                .config(Config::builder().lanes(w).threads(2).build())
                .build();
            assert_eq!(s.run_epochs_slab(&rounds), slab, "width {w}");
        }
    }

    #[test]
    fn sim_rounds_match_the_plain_path_and_record_queue_pressure() {
        use m2m_telemetry::timeseries::{self, EventKind};
        let mut session = Session::builder(network(), spec())
            .config(Config::builder().obs(true).obs_cap(64).build())
            .build();
        let vals = readings(session.network());
        let (plain, _) = session.run_round(&vals);
        let out = session.run_round_sim(&vals);
        assert!(out.outcome.delivered);
        assert!(out.events > 0 && out.ticks > 0);
        let dests: Vec<NodeId> = session.compiled().destinations().collect();
        for (i, d) in dests.iter().enumerate() {
            assert_eq!(out.outcome.results[i], Some(plain[d]), "destination {d}");
        }
        assert_eq!(session.degradation().rounds(), 1);
        let rec = session.recorder().expect("obs session records");
        assert!(
            rec.events().any(|e| e.kind == EventKind::SimRound),
            "sim rounds must land in the event ring"
        );
        // Workload updates rebuild the simulator on next use.
        session.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(9),
            function: AggregateFunction::weighted_sum([(NodeId(4), 1.0), (NodeId(8), 1.0)]),
        });
        let out = session.run_round_sim(&vals);
        assert_eq!(out.outcome.results.len(), 3, "new destination joins");
        timeseries::set_obs_enabled(false);
        timeseries::reset_planes();
    }

    #[test]
    fn workload_updates_invalidate_the_fault_engine() {
        let mut session = Session::builder(network(), spec()).build();
        let vals = readings(session.network());
        let out = session.run_round_lossy(&vals);
        assert_eq!(out.results.len(), 2);
        session.apply(WorkloadUpdate::AddDestination {
            destination: NodeId(9),
            function: AggregateFunction::weighted_sum([(NodeId(4), 1.0), (NodeId(8), 1.0)]),
        });
        let out = session.run_round_lossy(&vals);
        assert_eq!(out.results.len(), 3, "new destination joins the results");
        assert!(out.delivered);
    }
}
