//! Telemetry for the optimizer and executor: the shared instrumentation
//! facade plus the plan-explainability report.
//!
//! The facade itself lives in the dependency-free `m2m-telemetry` crate
//! (re-exported here wholesale), so `m2m-netsim` can emit events without
//! depending on this crate. This module adds what is core-specific:
//!
//! * [`names`] — the registry of counter/span names every instrumentation
//!   site in the workspace uses, so consumers (benchmarks, the verify
//!   gate) can read snapshots without grepping for string literals;
//! * [`explain`](fn@explain) / [`PlanExplain`] — a deterministic report
//!   that walks a [`GlobalPlan`] and states, per directed edge, which
//!   values cross raw and which as partial records, with the cover-side
//!   rationale and byte costs (§2.2's decision, made legible). Rendered
//!   as stable text (golden-tested) and JSON (consumed by the `explain`
//!   bench bin).
//!
//! Instrumentation is atomic-flag-gated ([`enabled`]): when tracing is
//! off — the default — every site costs one relaxed load. `M2M_TRACE=1`
//! turns it on; [`snapshot`] aggregates the per-thread shards. The
//! property test `tests/telemetry_equivalence.rs` pins the contract that
//! none of this ever changes a plan, a round result, or a cost.

pub use m2m_telemetry::*;

use std::collections::BTreeMap;

use m2m_graph::NodeId;

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{solve_edge, DirectedEdge, EdgeProblem, EdgeSolution};
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// Canonical counter / distribution names used by the instrumentation
/// sites across the workspace. One name, one site meaning — benchmark
/// exporters and the verify gate key on these.
pub mod names {
    /// Single-edge vertex-cover problems solved ([`crate::edge_opt`]).
    pub const EDGE_OPT_SOLVES: &str = "edge_opt.solves";
    /// Sources chosen to cross an edge raw, summed over solves.
    pub const EDGE_OPT_RAW_UNITS: &str = "edge_opt.raw_units";
    /// Continuation groups chosen as partial records, summed over solves.
    pub const EDGE_OPT_RECORD_UNITS: &str = "edge_opt.record_units";
    /// Distribution of cover sizes (units per solved edge).
    pub const EDGE_OPT_COVER_SIZE: &str = "edge_opt.cover_size";
    /// Dinic BFS level-graph phases, summed over solves.
    pub const MAXFLOW_BFS_PHASES: &str = "maxflow.bfs_phases";
    /// Dinic augmenting paths, summed over solves.
    pub const MAXFLOW_AUGMENTING_PATHS: &str = "maxflow.augmenting_paths";

    /// [`crate::memo::SolveCache`] lookups served from the cache.
    pub const MEMO_HITS: &str = "memo.hits";
    /// [`crate::memo::SolveCache`] lookups that required a fresh solve.
    pub const MEMO_MISSES: &str = "memo.misses";
    /// Whole-cache invalidations (a remembered record size changed).
    pub const MEMO_INVALIDATIONS: &str = "memo.invalidations";

    /// Global plan assemblies ([`crate::plan::GlobalPlan`]).
    pub const PLAN_BUILDS: &str = "plan.builds";
    /// Edges patched by the §2.3 availability sweep, summed over builds.
    pub const PLAN_REPAIRS: &str = "plan.repairs";
    /// Distribution of plan-build wall time (solve fan-out latency), ns.
    pub const PLAN_BUILD_NS: &str = "plan.build.ns";

    /// Incremental updates applied by [`crate::dynamics::PlanMaintainer`].
    pub const DYNAMICS_UPDATES: &str = "dynamics.updates";
    /// Edges reused verbatim across updates (Corollary 1).
    pub const DYNAMICS_EDGES_REUSED: &str = "dynamics.edges_reused";
    /// Edges re-solved because their single-edge inputs changed.
    pub const DYNAMICS_EDGES_REOPTIMIZED: &str = "dynamics.edges_reoptimized";
    /// Distribution of incremental-install wall time, ns.
    pub const DYNAMICS_INSTALL_NS: &str = "dynamics.install.ns";

    /// Schedule lowerings ([`crate::exec::CompiledSchedule`]).
    pub const EXEC_COMPILES: &str = "exec.compiles";
    /// Distribution of compile wall time, ns.
    pub const EXEC_COMPILE_NS: &str = "exec.compile.ns";
    /// Rounds executed through the compiled path.
    pub const EXEC_ROUNDS: &str = "exec.rounds";
    /// Distribution of [`crate::exec::run_epochs`] batch wall time, ns.
    pub const EXEC_RUN_EPOCHS_NS: &str = "exec.run_epochs.ns";
    /// Updates that forced a full recompile ([`crate::exec::EpochDriver`]).
    pub const EXEC_RECOMPILES: &str = "exec.recompiles";
    /// Updates absorbed as in-place weight refreshes.
    pub const EXEC_REFRESHES: &str = "exec.refreshes";

    /// Fault-tolerant rounds executed ([`crate::faults::FaultyExec`]).
    pub const FAULTS_ROUNDS: &str = "faults.rounds";
    /// Failed transmission attempts, summed over fault-tolerant rounds.
    pub const FAULTS_RETRANSMISSIONS: &str = "faults.retransmissions";
    /// Messages abandoned after exhausting their retry budget.
    pub const FAULTS_DROPPED_MESSAGES: &str = "faults.dropped_messages";
    /// Destinations that ended a round with partial source coverage.
    pub const FAULTS_DEGRADED_DESTINATIONS: &str = "faults.degraded_destinations";
    /// Fault-executor lowerings ([`crate::faults::FaultyExec::new`]).
    pub const FAULTS_BUILDS: &str = "faults.builds";
    /// Distribution of fault-tolerant round wall time, ns.
    pub const FAULTS_ROUND_NS: &str = "faults.round.ns";
    /// Route recomputations triggered by ETX drift past the hysteresis
    /// threshold ([`crate::faults::ChurnController`]).
    pub const FAULTS_REROUTES: &str = "faults.reroutes";
    /// Drift observations absorbed below the hysteresis threshold.
    pub const FAULTS_REROUTES_SUPPRESSED: &str = "faults.reroutes_suppressed";

    /// Event-driven simulator lowerings ([`crate::sim::SimExec::new`]).
    pub const SIM_BUILDS: &str = "sim.builds";
    /// Rounds executed through the event-driven simulator.
    pub const SIM_ROUNDS: &str = "sim.rounds";
    /// Events processed by the simulator's event wheel, summed.
    pub const SIM_EVENTS: &str = "sim.events";
    /// Distribution of event-driven round wall time, ns.
    pub const SIM_ROUND_NS: &str = "sim.round.ns";
    /// Per-link queue pushes past the configured bound, summed.
    pub const SIM_QUEUE_OVERFLOWS: &str = "sim.queue_overflows";

    /// Distributed cover solves completed ([`crate::dvc`]).
    pub const DVC_SOLVES: &str = "dvc.solves";
    /// Negotiation rounds until the distributed solve converged, summed.
    pub const DVC_ROUNDS: &str = "dvc.rounds";
    /// Negotiation messages exchanged by the distributed solve, summed.
    pub const DVC_MESSAGES: &str = "dvc.messages";

    // Routing-tree construction counters are defined next to their site
    // in `m2m-netsim` (which cannot depend on this crate); re-exported
    // here so consumers have one namespace.
    pub use m2m_netsim::routing::{
        ROUTING_BUILDS, ROUTING_BUILD_NS, ROUTING_TREES, ROUTING_TREE_EDGES,
    };
}

/// Why one transmitted unit is in the minimum-weight cover: a raw value
/// chosen on the source side of the bipartite graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawExplain {
    /// The source whose reading crosses the edge raw.
    pub source: NodeId,
    /// Bytes the raw value occupies.
    pub bytes: u32,
    /// Destinations downstream of this edge that consume the raw value —
    /// the multicast sharing that justifies the source-side choice.
    pub serves: Vec<NodeId>,
}

/// Why one transmitted unit is in the cover: a partial aggregate record
/// chosen on the destination side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordExplain {
    /// The destination the record is for.
    pub destination: NodeId,
    /// Bytes the partial record occupies.
    pub bytes: u32,
    /// Sources whose values the record compresses on this edge — the
    /// fan-in that justifies the destination-side choice.
    pub merges: Vec<NodeId>,
    /// Hops remaining from the edge's head to the destination.
    pub remaining_hops: usize,
}

/// The explainability report for one directed edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeExplain {
    /// The directed edge `tail → head`.
    pub edge: DirectedEdge,
    /// `|S_e|`: sources routed through the edge.
    pub sources: usize,
    /// `|D_e|` refined into continuation groups.
    pub groups: usize,
    /// Raw units in the chosen cover.
    pub raw: Vec<RawExplain>,
    /// Record units in the chosen cover.
    pub records: Vec<RecordExplain>,
    /// Payload bytes of the chosen cover.
    pub cost_bytes: u64,
    /// Cost of the all-raw alternative (pure multicast on this edge).
    pub all_raw_bytes: u64,
    /// Cost of the all-records alternative (pure aggregation).
    pub all_records_bytes: u64,
    /// True if the edge problem matches the paper's exact formulation
    /// (one continuation group per destination, §2.1 sharing).
    pub sharing_coherent: bool,
    /// True if the §2.3 availability sweep patched this edge away from
    /// its single-edge optimum (rare; only under per-source trees).
    pub repaired: bool,
}

impl EdgeExplain {
    /// One-line decision rationale for this edge.
    pub fn rationale(&self) -> String {
        if self.repaired {
            return format!(
                "repaired: upstream aggregation removed raw availability, \
                 forced {} record(s) (cover no longer the single-edge optimum)",
                self.records.len()
            );
        }
        let chosen = self.cost_bytes;
        if self.records.is_empty() {
            format!(
                "all-raw optimal at {chosen} B: every value is shared or \
                 no cheaper record covers it (all-records {} B)",
                self.all_records_bytes
            )
        } else if self.raw.is_empty() {
            format!(
                "all-records optimal at {chosen} B: fan-in compression beats \
                 multicasting raws (all-raw {} B)",
                self.all_raw_bytes
            )
        } else {
            format!(
                "mixed cover optimal at {chosen} B: raws kept where shared, \
                 records where fan-in compresses (all-raw {} B, all-records {} B)",
                self.all_raw_bytes, self.all_records_bytes
            )
        }
    }
}

/// The full plan-explainability report ([`explain`](fn@explain)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanExplain {
    /// Per-edge reports in ascending edge order (deterministic).
    pub edges: Vec<EdgeExplain>,
    /// Total payload bytes per round.
    pub payload_bytes: u64,
    /// Edges patched by the availability sweep.
    pub repairs: usize,
}

/// Walks a [`GlobalPlan`] and explains every per-edge decision. The
/// report is deterministic: edges ascend, and every inner list is sorted.
///
/// `repaired` edges are detected by re-solving each single-edge problem
/// and comparing with the installed solution — the sweep is the only
/// thing that ever moves a solution off its per-edge optimum.
pub fn explain(plan: &GlobalPlan, spec: &AggregationSpec) -> PlanExplain {
    let edges = plan
        .problems()
        .iter()
        .zip(plan.solutions())
        .map(|(problem, solution)| explain_edge(problem, solution, spec))
        .collect();
    PlanExplain {
        edges,
        payload_bytes: plan.total_payload_bytes(),
        repairs: plan.repair_count(),
    }
}

fn explain_edge(
    problem: &EdgeProblem,
    solution: &EdgeSolution,
    spec: &AggregationSpec,
) -> EdgeExplain {
    let record_bytes = |d: NodeId| -> u32 {
        spec.function(d)
            .expect("group destination must have a function")
            .partial_record_bytes()
    };
    let raw = solution
        .raw
        .iter()
        .map(|&s| {
            let si = problem
                .sources
                .binary_search(&s)
                .expect("raw source is in the problem");
            let mut serves: Vec<NodeId> = problem
                .pairs
                .iter()
                .filter(|&&(psi, _)| psi == si)
                .map(|&(_, gi)| problem.groups[gi].destination)
                .collect();
            serves.sort_unstable();
            serves.dedup();
            RawExplain {
                source: s,
                bytes: RAW_VALUE_BYTES,
                serves,
            }
        })
        .collect();
    let records = solution
        .agg
        .iter()
        .map(|group| {
            let gi = problem
                .groups
                .binary_search(group)
                .expect("record group is in the problem");
            RecordExplain {
                destination: group.destination,
                bytes: record_bytes(group.destination),
                merges: problem.group_sources(gi).collect(),
                remaining_hops: group.suffix.len().saturating_sub(1),
            }
        })
        .collect();
    let all_raw_bytes = problem.sources.len() as u64 * u64::from(RAW_VALUE_BYTES);
    let all_records_bytes = problem
        .groups
        .iter()
        .map(|g| u64::from(record_bytes(g.destination)))
        .sum();
    let repaired = &solve_edge(problem, spec) != solution;
    EdgeExplain {
        edge: problem.edge,
        sources: problem.sources.len(),
        groups: problem.groups.len(),
        raw,
        records,
        cost_bytes: solution.cost_bytes,
        all_raw_bytes,
        all_records_bytes,
        sharing_coherent: problem.is_sharing_coherent(),
        repaired,
    }
}

fn node_list(nodes: &[NodeId]) -> String {
    let parts: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    parts.join(", ")
}

impl PlanExplain {
    /// Destinations appearing in the plan, with the payload bytes spent
    /// on records for each (ascending destination order).
    pub fn record_bytes_per_destination(&self) -> BTreeMap<NodeId, u64> {
        let mut per_dest: BTreeMap<NodeId, u64> = BTreeMap::new();
        for edge in &self.edges {
            for rec in &edge.records {
                *per_dest.entry(rec.destination).or_insert(0) += u64::from(rec.bytes);
            }
        }
        per_dest
    }

    /// The deterministic text rendering (golden-tested). Stable across
    /// runs and thread counts because the plan itself is.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let raw_units: usize = self.edges.iter().map(|e| e.raw.len()).sum();
        let record_units: usize = self.edges.iter().map(|e| e.records.len()).sum();
        let _ = writeln!(out, "plan explainability report");
        let _ = writeln!(
            out,
            "{} edges, {} raw + {} record units, {} payload bytes/round, {} repairs",
            self.edges.len(),
            raw_units,
            record_units,
            self.payload_bytes,
            self.repairs
        );
        for e in &self.edges {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "edge {} -> {}: {} source(s), {} group(s){}{}",
                e.edge.0,
                e.edge.1,
                e.sources,
                e.groups,
                if e.sharing_coherent {
                    ", coherent"
                } else {
                    ", incoherent"
                },
                if e.repaired { ", repaired" } else { "" },
            );
            for r in &e.raw {
                let _ = writeln!(
                    out,
                    "  raw {} ({} B) -> serves {}",
                    r.source,
                    r.bytes,
                    node_list(&r.serves)
                );
            }
            for r in &e.records {
                let _ = writeln!(
                    out,
                    "  rec {} ({} B) <- merges {} ({} hop(s) to go)",
                    r.destination,
                    r.bytes,
                    node_list(&r.merges),
                    r.remaining_hops
                );
            }
            let _ = writeln!(out, "  {}", e.rationale());
        }
        out
    }

    /// The JSON rendering, mirroring [`PlanExplain::to_text`] field for
    /// field (consumed by the `explain` bench bin).
    pub fn to_json(&self) -> json::JsonValue {
        use json::JsonValue;
        let edges: Vec<JsonValue> = self
            .edges
            .iter()
            .map(|e| {
                let raw: Vec<JsonValue> = e
                    .raw
                    .iter()
                    .map(|r| {
                        JsonValue::object()
                            .with("source", u64::from(r.source.0))
                            .with("bytes", r.bytes)
                            .with(
                                "serves",
                                JsonValue::Array(
                                    r.serves.iter().map(|d| u64::from(d.0).into()).collect(),
                                ),
                            )
                    })
                    .collect();
                let records: Vec<JsonValue> = e
                    .records
                    .iter()
                    .map(|r| {
                        JsonValue::object()
                            .with("destination", u64::from(r.destination.0))
                            .with("bytes", r.bytes)
                            .with(
                                "merges",
                                JsonValue::Array(
                                    r.merges.iter().map(|s| u64::from(s.0).into()).collect(),
                                ),
                            )
                            .with("remaining_hops", r.remaining_hops)
                    })
                    .collect();
                JsonValue::object()
                    .with("tail", u64::from(e.edge.0 .0))
                    .with("head", u64::from(e.edge.1 .0))
                    .with("sources", e.sources)
                    .with("groups", e.groups)
                    .with("raw", JsonValue::Array(raw))
                    .with("records", JsonValue::Array(records))
                    .with("cost_bytes", e.cost_bytes)
                    .with("all_raw_bytes", e.all_raw_bytes)
                    .with("all_records_bytes", e.all_records_bytes)
                    .with("sharing_coherent", e.sharing_coherent)
                    .with("repaired", e.repaired)
                    .with("rationale", e.rationale())
            })
            .collect();
        JsonValue::object()
            .with("payload_bytes", self.payload_bytes)
            .with("repairs", self.repairs)
            .with("edges", JsonValue::Array(edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn setup() -> (AggregationSpec, RoutingTables, GlobalPlan) {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 2.0), (NodeId(5), 0.5)]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        (spec, routing, plan)
    }

    #[test]
    fn explain_covers_every_edge_and_is_deterministic() {
        let (spec, _routing, plan) = setup();
        let report = explain(&plan, &spec);
        assert_eq!(report.edges.len(), plan.solutions().len());
        assert_eq!(report.payload_bytes, plan.total_payload_bytes());
        assert_eq!(report, explain(&plan, &spec));
        // Edge order ascends.
        for w in report.edges.windows(2) {
            assert!(w[0].edge < w[1].edge);
        }
    }

    #[test]
    fn explain_costs_are_consistent_with_the_cover() {
        let (spec, _routing, plan) = setup();
        let report = explain(&plan, &spec);
        for e in &report.edges {
            let recomputed: u64 = e.raw.iter().map(|r| u64::from(r.bytes)).sum::<u64>()
                + e.records.iter().map(|r| u64::from(r.bytes)).sum::<u64>();
            assert_eq!(recomputed, e.cost_bytes, "edge {:?}", e.edge);
            // The chosen cover can never beat both degenerate covers.
            assert!(e.cost_bytes <= e.all_raw_bytes.max(e.all_records_bytes));
            // Every raw unit serves at least one destination; every record
            // merges at least one source.
            for r in &e.raw {
                assert!(!r.serves.is_empty());
            }
            for r in &e.records {
                assert!(!r.merges.is_empty());
            }
        }
    }

    #[test]
    fn unrepaired_optimal_plan_explains_as_optimal() {
        let (spec, _routing, plan) = setup();
        if plan.repair_count() == 0 {
            let report = explain(&plan, &spec);
            assert!(report.edges.iter().all(|e| !e.repaired));
        }
    }

    #[test]
    fn text_and_json_render_every_edge() {
        let (spec, _routing, plan) = setup();
        let report = explain(&plan, &spec);
        let text = report.to_text();
        assert!(text.starts_with("plan explainability report"));
        for e in &report.edges {
            assert!(text.contains(&format!("edge {} -> {}", e.edge.0, e.edge.1)));
        }
        let json = report.to_json().render();
        assert!(json.contains("\"payload_bytes\""));
        assert!(json.contains("\"rationale\""));
    }

    #[test]
    fn record_bytes_per_destination_sums_to_record_payload() {
        let (spec, _routing, plan) = setup();
        let report = explain(&plan, &spec);
        let per_dest = report.record_bytes_per_destination();
        let total: u64 = per_dest.values().sum();
        let from_edges: u64 = report
            .edges
            .iter()
            .flat_map(|e| e.records.iter().map(|r| u64::from(r.bytes)))
            .sum();
        assert_eq!(total, from_edges);
    }
}
