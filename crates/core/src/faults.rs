//! The fault-tolerant epoch pipeline: loss-aware execution of a compiled
//! schedule, with bounded retransmission, per-destination degradation
//! accounting, and a hysteresis-gated churn driver.
//!
//! The paper's evaluation context — Mica2-class radios — is exactly where
//! an optimal static plan meets lossy links. This module closes that gap
//! in three pieces:
//!
//! * [`FaultyExec`] — a loss-aware mode of [`CompiledSchedule`]: the TDMA
//!   slot schedule is simulated against a seeded
//!   [`DeliveryModel`] (uniform Bernoulli, per-link ETX-derived, or a
//!   scripted [`m2m_netsim::failure::FailureTrace`]), each message retried
//!   under a [`RetryPolicy`] with every attempt charged through the Mica2
//!   energy model; the compiled op stream is then replayed over whatever
//!   actually arrived, producing per-destination results, coverage
//!   fractions, and missing-source sets ([`FaultOutcome`]).
//! * [`DegradationTracker`] — per-destination staleness: how many
//!   consecutive rounds a destination has gone without full coverage.
//! * [`ChurnController`] — the loop closure: when observed link quality
//!   drifts past a relative-ETX hysteresis threshold, it fires a reroute
//!   (the caller rebuilds [`m2m_netsim::quality::weighted_routing`] tables
//!   and pushes them through
//!   [`crate::dynamics::PlanMaintainer::apply_route_change`]); drift below
//!   the threshold is absorbed, so the plan tracks the network without
//!   thrashing.
//!
//! **Equivalence contract**: with a reliable delivery model (or loss
//! probability 0) and any retry policy, every message is delivered on its
//! first attempt, the degraded replay includes every op in the compiled
//! order, and [`FaultOutcome::results`] / [`FaultOutcome::cost`] are
//! **bit-identical** to [`CompiledSchedule::run_round`] — the same float
//! associativity, the same cost accumulation order. The property test
//! `tests/fault_equivalence.rs` pins this across routing modes and thread
//! counts.

use std::collections::BTreeMap;

use m2m_graph::NodeId;
use m2m_netsim::quality::LinkQuality;
use m2m_netsim::{DeliveryModel, Network};

use crate::agg::PartialRecord;
use crate::exec::{fold_ops, CompiledSchedule, Op};
use crate::metrics::RoundCost;
use crate::parallel;
use crate::schedule::{Contribution, UnitContent};
use crate::slots::{assign_slots, SlotSchedule};
use crate::telemetry::names;

/// Per-message retry discipline for one fault-tolerant round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transmission attempts per message; `0` means unlimited
    /// (retry until the slot budget runs out — the §3 "acknowledgments
    /// and retransmissions" discipline).
    pub max_attempts: u32,
    /// Extra slots to wait after a failed attempt before retrying.
    pub backoff_slots: u32,
    /// Slot budget for the whole round.
    pub max_slots: u32,
}

impl RetryPolicy {
    /// Unlimited retries, no backoff — the legacy resilience semantics.
    pub const fn unlimited(max_slots: u32) -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff_slots: 0,
            max_slots,
        }
    }

    /// Bounded retries with backoff.
    pub const fn bounded(max_attempts: u32, backoff_slots: u32, max_slots: u32) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_slots,
            max_slots,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::bounded(8, 0, 10_000)
    }
}

/// One message's precomputed execution facts. Shared with
/// [`crate::sim`], whose event-driven runtime replays the same static
/// message graph under a different clock.
#[derive(Clone, Debug)]
pub(crate) struct MessageFacts {
    pub(crate) edge: (NodeId, NodeId),
    pub(crate) unit_count: usize,
    pub(crate) body: u32,
    /// Energy of one transmission attempt / one successful reception.
    pub(crate) tx_uj: f64,
    pub(crate) rx_uj: f64,
    /// Range into [`FaultyExec::pred_pool`].
    pub(crate) preds: (u32, u32),
    /// Dense slots of `edge.0` / `edge.1` in [`FaultyExec::plane_ids`],
    /// precomputed so the per-node plane update is two array stores.
    pub(crate) tail_slot: u32,
    pub(crate) head_slot: u32,
}

/// One link's failure summary for one round: `failures` transmission
/// attempts on `tail → head` failed; `dropped` marks the message as
/// abandoned (retry budget exhausted) rather than eventually delivered.
/// Always populated (it is empty when nothing failed), so a
/// [`FaultOutcome`] compares equal whether or not observability is on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// Transmitting endpoint.
    pub tail: NodeId,
    /// Receiving endpoint.
    pub head: NodeId,
    /// Failed transmission attempts on this link this round.
    pub failures: u32,
    /// True if the message was abandoned after exhausting its budget.
    pub dropped: bool,
}

/// Per-destination coverage after a degraded round.
#[derive(Clone, Debug, PartialEq)]
pub struct DestCoverage {
    /// The destination.
    pub destination: NodeId,
    /// Sources whose contributions reached the destination this round.
    pub covered: usize,
    /// Sources the destination's function demands.
    pub demanded: usize,
    /// The demanded sources that did **not** arrive (ascending).
    pub missing: Vec<NodeId>,
}

impl DestCoverage {
    /// Covered fraction in `[0, 1]` (1.0 for a zero-source function).
    pub fn fraction(&self) -> f64 {
        if self.demanded == 0 {
            1.0
        } else {
            self.covered as f64 / self.demanded as f64
        }
    }

    /// True if every demanded source arrived.
    pub fn complete(&self) -> bool {
        self.covered == self.demanded
    }
}

/// The outcome of one fault-tolerant round.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultOutcome {
    /// Per-destination results in ascending destination order
    /// ([`CompiledSchedule::destinations`]); `None` when no input at all
    /// survived for that destination.
    pub results: Vec<Option<f64>>,
    /// Per-destination coverage, aligned with `results`.
    pub coverage: Vec<DestCoverage>,
    /// Energy including retransmissions: every attempt pays transmit
    /// energy, reception is paid only on delivery.
    pub cost: RoundCost,
    /// Slots actually used (≥ the failure-free makespan when lossy).
    pub slots_used: u32,
    /// Failed transmission attempts.
    pub retransmissions: usize,
    /// Messages abandoned after exhausting their retry budget.
    pub dropped_messages: usize,
    /// True if every message was delivered within the slot budget.
    pub delivered: bool,
    /// Per-link failure summaries in message order (empty when every
    /// attempt succeeded). The flight recorder's event feed.
    pub link_events: Vec<LinkEvent>,
}

impl FaultOutcome {
    /// Destinations with partial coverage this round.
    pub fn degraded_destinations(&self) -> usize {
        self.coverage.iter().filter(|c| !c.complete()).count()
    }
}

/// Reusable scratch for [`FaultyExec::run`] — allocate once (per worker),
/// run any number of rounds without further allocation (outcomes excepted).
///
/// When observability is on ([`m2m_telemetry::timeseries::obs_enabled`]),
/// `planes` accumulates this worker's per-node counters locally; dropping
/// the scratch — end of a worker's chunk, end of a serial run — flushes
/// them into the process-wide plane registry.
#[derive(Clone, Debug, Default)]
pub struct FaultScratch {
    delivered: Vec<bool>,
    dropped: Vec<bool>,
    attempts: Vec<u32>,
    next_attempt: Vec<u32>,
    readings: Vec<f64>,
    records: Vec<Option<PartialRecord>>,
    gate_ok: Vec<bool>,
    unit_cover: Vec<u64>,
    tmp_cover: Vec<u64>,
    planes: m2m_telemetry::timeseries::NodePlanes,
}

impl Drop for FaultScratch {
    fn drop(&mut self) {
        // No-op when nothing was recorded (observability off).
        m2m_telemetry::timeseries::merge_planes(&mut self.planes);
    }
}

/// The loss-aware executor: a [`CompiledSchedule`] paired with its TDMA
/// slot assignment, message-level dependency graph, and an *op gate*
/// table mapping every compiled op to the message unit whose delivery it
/// depends on. Built once per plan; see the module docs for the two-phase
/// round (delivery simulation, then degraded replay).
#[derive(Clone, Debug)]
pub struct FaultyExec {
    compiled: CompiledSchedule,
    slots: SlotSchedule,
    messages: Vec<MessageFacts>,
    pred_pool: Vec<u32>,
    /// Unit index → message index.
    message_of: Vec<u32>,
    /// Aligned 1:1 with the compiled op stream: the unit that must be
    /// delivered for the op's datum to be present at its consumption
    /// point, or `u32::MAX` for locally available data.
    op_gate: Vec<u32>,
    /// Per unit: the upstream raw unit this unit's datum was relayed
    /// from ([`RAW_ORIGIN`] at the source itself, [`NOT_RAW`] for record
    /// units). A raw datum is present only if *every* hop of its relay
    /// chain was delivered — a node cannot forward a raw value it never
    /// received — whereas a record unit usefully re-forms from whatever
    /// survived, so it gates on its own hop alone.
    raw_parent: Vec<u32>,
    /// Sorted node-id universe of the per-node observability planes:
    /// every message endpoint, as `u64` ids.
    plane_ids: Vec<u64>,
    /// Bitset words per coverage row.
    words: usize,
    /// Per-destination demanded-source bitsets (row-major, `words` each).
    demanded_bits: Vec<u64>,
    /// Per-destination demanded-source counts.
    demanded: Vec<usize>,
}

/// [`FaultyExec::raw_parent`] marker: the unit is not a raw relay (record
/// units gate on their own hop only).
pub(crate) const NOT_RAW: u32 = u32::MAX;
/// [`FaultyExec::raw_parent`] marker: the raw unit leaves the source node
/// itself — the head of its relay chain.
pub(crate) const RAW_ORIGIN: u32 = u32::MAX - 1;

impl FaultyExec {
    /// Lowers `compiled` for fault-tolerant execution: assigns TDMA slots,
    /// derives message dependencies and per-attempt energies, and builds
    /// the op gate table by replaying the compiler's lowering walk against
    /// the schedule's contribution lists.
    ///
    /// # Panics
    /// Panics if the schedule violates the structural invariants the gate
    /// construction relies on (it cannot, for a schedule produced by
    /// [`crate::schedule::build_schedule`]).
    pub fn new(network: &Network, compiled: &CompiledSchedule) -> Self {
        crate::telemetry::counter(names::FAULTS_BUILDS, 1);
        let schedule = compiled.schedule().clone();
        let slots = assign_slots(network, &schedule);
        let energy = network.energy();
        let message_count = schedule.messages.len();

        // Message-level dependency lists (as in the slot assigner).
        let mut message_of = vec![u32::MAX; schedule.units.len()];
        for (m, msg) in schedule.messages.iter().enumerate() {
            for &u in &msg.units {
                message_of[u] = m as u32;
            }
        }
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); message_count];
        for &(u, v) in &schedule.unit_arcs {
            let (a, b) = (message_of[u], message_of[v]);
            if a != b && !preds[b as usize].contains(&a) {
                preds[b as usize].push(a);
            }
        }
        // Plane universe: every message endpoint, sorted, so the hot-loop
        // update is a precomputed slot rather than a lookup.
        let mut plane_ids: Vec<u64> = schedule
            .messages
            .iter()
            .flat_map(|m| [u64::from(m.edge.0 .0), u64::from(m.edge.1 .0)])
            .collect();
        plane_ids.sort_unstable();
        plane_ids.dedup();
        let plane_slot = |n: NodeId| -> u32 {
            plane_ids
                .binary_search(&u64::from(n.0))
                .expect("endpoint in plane universe") as u32
        };

        let mut messages = Vec::with_capacity(message_count);
        let mut pred_pool: Vec<u32> = Vec::new();
        for (m, msg) in schedule.messages.iter().enumerate() {
            let body: u32 = msg
                .units
                .iter()
                .map(|&u| schedule.units[u].size_bytes)
                .sum();
            let start = pred_pool.len() as u32;
            pred_pool.extend(&preds[m]);
            messages.push(MessageFacts {
                edge: msg.edge,
                unit_count: msg.units.len(),
                body,
                tx_uj: energy.tx_cost_uj(body),
                rx_uj: energy.rx_cost_uj(body),
                preds: (start, pred_pool.len() as u32),
                tail_slot: plane_slot(msg.edge.0),
                head_slot: plane_slot(msg.edge.1),
            });
        }

        // The raw unit delivering source `s` into node `v` is unique: a
        // multicast tree has one path from `s` through `v`.
        let mut raw_into: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
        for (i, u) in schedule.units.iter().enumerate() {
            if let UnitContent::Raw(s) = u.content {
                let prev = raw_into.insert((u.edge.1, s), i as u32);
                assert!(
                    prev.is_none(),
                    "source {s} delivered raw into {} twice",
                    u.edge.1
                );
            }
        }
        // Relay chains: a raw unit leaving any node other than the source
        // itself carries a datum that first had to arrive there raw.
        let mut raw_parent = vec![NOT_RAW; schedule.units.len()];
        for (i, u) in schedule.units.iter().enumerate() {
            if let UnitContent::Raw(s) = u.content {
                raw_parent[i] = if u.edge.0 == s {
                    RAW_ORIGIN
                } else {
                    *raw_into.get(&(u.edge.0, s)).unwrap_or_else(|| {
                        panic!(
                            "raw unit {i} relays {s} from {} without an inbound hop",
                            u.edge.0
                        )
                    })
                };
            }
        }
        let gate_for = |c: &Contribution, at: NodeId| -> u32 {
            match *c {
                Contribution::Pre(s) if s == at => u32::MAX,
                Contribution::Pre(s) => *raw_into
                    .get(&(at, s))
                    .unwrap_or_else(|| panic!("no raw unit carries {s} into {at}")),
                Contribution::FromUnit(p) => p as u32,
            }
        };

        // Replay the lowering walk in the compiler's order — record steps
        // in topological order, then destination steps ascending — so the
        // gates align 1:1 with the compiled op stream.
        let mut op_gate: Vec<u32> = Vec::with_capacity(compiled.ops.len());
        for step in &compiled.record_steps {
            let u = step.unit as usize;
            let contribs = &schedule.contributions[u];
            assert_eq!(
                contribs.len(),
                step.op_count as usize,
                "op run of unit {u} diverged from its contribution list"
            );
            let at = schedule.units[u].edge.0; // records form at the tail
            for c in contribs {
                op_gate.push(gate_for(c, at));
            }
        }
        for (i, step) in compiled.dest_steps.iter().enumerate() {
            let (d, inputs) = schedule
                .destination_inputs
                .iter()
                .nth(i)
                .expect("dest step beyond destination_inputs");
            assert_eq!(*d, step.dest, "destination order diverged");
            assert_eq!(inputs.len(), step.op_count as usize);
            for c in inputs {
                op_gate.push(gate_for(c, *d));
            }
        }
        assert_eq!(op_gate.len(), compiled.ops.len(), "op gate misaligned");
        // Each gate must agree with its op's variant: FromUnit gates on
        // the referenced unit itself.
        for (i, &gate) in op_gate.iter().enumerate() {
            if let Op::FromUnit { unit } = compiled.ops.get(i) {
                assert_eq!(gate, unit, "FromUnit op must gate on its own unit");
            }
        }

        let words = compiled.sources.len().div_ceil(64).max(1);
        let mut this = FaultyExec {
            compiled: compiled.clone(),
            slots,
            messages,
            pred_pool,
            message_of,
            op_gate,
            raw_parent,
            plane_ids,
            words,
            demanded_bits: Vec::new(),
            demanded: Vec::new(),
        };
        // Full-delivery replay fixes each destination's demanded set.
        let mut scratch = this.scratch();
        scratch.delivered.resize(this.messages.len(), true);
        scratch.delivered.fill(true);
        scratch.dropped.resize(this.messages.len(), false);
        let mut demanded_bits = vec![0u64; this.compiled.dest_steps.len() * words];
        this.replay_coverage(&mut scratch, &mut demanded_bits);
        this.demanded = demanded_bits
            .chunks(words)
            .map(|row| row.iter().map(|w| w.count_ones() as usize).sum())
            .collect();
        this.demanded_bits = demanded_bits;
        crate::m2m_log!(
            crate::telemetry::Level::Debug,
            "fault exec compiled: {} messages, {} ops gated, {} slot makespan",
            this.messages.len(),
            this.op_gate.len(),
            this.slots.slot_count
        );
        this
    }

    /// The compiled schedule this executor runs.
    #[inline]
    pub fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }

    /// The TDMA slot assignment the delivery simulation follows.
    #[inline]
    pub fn slot_schedule(&self) -> &SlotSchedule {
        &self.slots
    }

    /// Allocates a scratch arena sized for this executor.
    pub fn scratch(&self) -> FaultScratch {
        FaultScratch {
            delivered: vec![false; self.messages.len()],
            dropped: vec![false; self.messages.len()],
            attempts: vec![0; self.messages.len()],
            next_attempt: vec![0; self.messages.len()],
            readings: vec![0.0; self.compiled.sources.len()],
            records: vec![None; self.compiled.unit_count],
            gate_ok: vec![false; self.op_gate.len()],
            unit_cover: vec![0; self.compiled.unit_count * self.words],
            tmp_cover: vec![0; self.words],
            planes: m2m_telemetry::timeseries::NodePlanes::for_ids(self.plane_ids.clone()),
        }
    }

    /// Folds the round in `scratch` into the worker-local per-node
    /// planes: every attempt pays tx at the tail, delivery pays rx at
    /// the head, failures count as retries at the tail, abandonment as
    /// a drop at the tail — the same arithmetic as
    /// [`FaultyExec::accumulate_cost`] and the global counters, so plane
    /// totals reconcile exactly.
    fn update_planes(&self, scratch: &mut FaultScratch) {
        for (m, msg) in self.messages.iter().enumerate() {
            let attempts = u64::from(scratch.attempts[m]);
            if attempts == 0 {
                continue;
            }
            let tail = msg.tail_slot as usize;
            scratch.planes.record_tx(tail, attempts, msg.tx_uj);
            if scratch.delivered[m] {
                scratch.planes.record_rx(msg.head_slot as usize, msg.rx_uj);
                if attempts > 1 {
                    scratch.planes.record_retries(tail, attempts - 1);
                }
            } else {
                scratch.planes.record_retries(tail, attempts);
                if scratch.dropped[m] {
                    scratch.planes.record_drop(tail);
                }
            }
        }
        scratch.planes.add_rounds(1);
    }

    /// Phase A: the slot-by-slot delivery simulation. A message is
    /// attempted once per eligible slot — at or after its assigned slot,
    /// past its backoff, with every predecessor *resolved* (delivered or
    /// dropped) — until it is delivered, exhausts `policy.max_attempts`,
    /// or the slot budget ends. Returns `(slots_used, retransmissions,
    /// dropped)` and fills `scratch.delivered` / `scratch.attempts`.
    fn simulate_delivery(
        &self,
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        scratch: &mut FaultScratch,
    ) -> (u32, usize, usize) {
        let message_count = self.messages.len();
        scratch.delivered.fill(false);
        scratch.dropped.fill(false);
        scratch.attempts.fill(0);
        scratch.next_attempt.fill(0);
        let mut slots_used = 0u32;
        let mut retransmissions = 0usize;
        let mut dropped_count = 0usize;
        let mut remaining = message_count;
        for slot in 0..policy.max_slots {
            if remaining == 0 {
                break;
            }
            let mut progressed = false;
            for m in 0..message_count {
                let msg = &self.messages[m];
                if scratch.delivered[m]
                    || scratch.dropped[m]
                    || self.slots.slots[m] > slot
                    || scratch.next_attempt[m] > slot
                {
                    continue;
                }
                let preds = &self.pred_pool[msg.preds.0 as usize..msg.preds.1 as usize];
                if preds
                    .iter()
                    .any(|&p| !scratch.delivered[p as usize] && !scratch.dropped[p as usize])
                {
                    continue;
                }
                scratch.attempts[m] += 1;
                if model.is_down(
                    msg.edge.0,
                    msg.edge.1,
                    round_salt.wrapping_add(u64::from(slot)),
                ) {
                    retransmissions += 1;
                    if policy.max_attempts > 0 && scratch.attempts[m] >= policy.max_attempts {
                        scratch.dropped[m] = true;
                        dropped_count += 1;
                        remaining -= 1;
                    } else {
                        scratch.next_attempt[m] = slot + 1 + policy.backoff_slots;
                    }
                    continue;
                }
                scratch.delivered[m] = true;
                remaining -= 1;
                slots_used = slots_used.max(slot + 1);
                progressed = true;
            }
            // Even slots with only failed attempts advance the clock.
            if !progressed && remaining > 0 {
                slots_used = slots_used.max(slot + 1);
            }
        }
        (slots_used, retransmissions, dropped_count)
    }

    /// The round's cost, accumulated in message order — the same order
    /// (and hence the same float sum) as [`crate::schedule::Schedule::round_cost`],
    /// so a lossless round's cost is bit-identical to the static one.
    fn accumulate_cost(&self, scratch: &FaultScratch) -> RoundCost {
        let mut cost = RoundCost::default();
        for (m, msg) in self.messages.iter().enumerate() {
            if scratch.attempts[m] > 0 {
                cost.tx_uj += msg.tx_uj * f64::from(scratch.attempts[m]);
            }
            if scratch.delivered[m] {
                cost.rx_uj += msg.rx_uj;
                cost.messages += 1;
                cost.units += msg.unit_count;
                cost.payload_bytes += u64::from(msg.body);
            }
        }
        cost
    }

    /// Phase B (coverage half): replays the op stream over the delivery
    /// outcome in `scratch.delivered`, filling `cover` with one
    /// source-coverage bitset row per destination. Also maintains the
    /// per-unit rows in `scratch.unit_cover`.
    fn replay_coverage(&self, scratch: &mut FaultScratch, cover: &mut [u64]) {
        let words = self.words;
        scratch.unit_cover.fill(0);
        for step in &self.compiled.record_steps {
            scratch.tmp_cover.fill(0);
            let base = step.first_op as usize;
            for k in 0..step.op_count as usize {
                let gate = self.op_gate[base + k];
                match self.compiled.ops.get(base + k) {
                    Op::Pre { slot, .. } => {
                        if self.gate_open(gate, scratch) {
                            scratch.tmp_cover[slot as usize / 64] |= 1 << (slot % 64);
                        }
                    }
                    Op::FromUnit { unit } => {
                        if self.gate_open(gate, scratch) {
                            let src = unit as usize * words;
                            for w in 0..words {
                                scratch.tmp_cover[w] |= scratch.unit_cover[src + w];
                            }
                        }
                    }
                }
            }
            let dst = step.unit as usize * words;
            scratch.unit_cover[dst..dst + words].copy_from_slice(&scratch.tmp_cover);
        }
        for (i, step) in self.compiled.dest_steps.iter().enumerate() {
            scratch.tmp_cover.fill(0);
            let base = step.first_op as usize;
            for k in 0..step.op_count as usize {
                let gate = self.op_gate[base + k];
                match self.compiled.ops.get(base + k) {
                    Op::Pre { slot, .. } => {
                        if self.gate_open(gate, scratch) {
                            scratch.tmp_cover[slot as usize / 64] |= 1 << (slot % 64);
                        }
                    }
                    Op::FromUnit { unit } => {
                        if self.gate_open(gate, scratch) {
                            let src = unit as usize * words;
                            for w in 0..words {
                                scratch.tmp_cover[w] |= scratch.unit_cover[src + w];
                            }
                        }
                    }
                }
            }
            cover[i * words..(i + 1) * words].copy_from_slice(&scratch.tmp_cover);
        }
    }

    /// True if the datum behind `gate` is present: locally available, or
    /// its carrying unit's message was delivered — and, for a raw datum,
    /// every upstream hop of its relay chain too (a node cannot forward a
    /// raw value it never received; record units re-form at each hop, so
    /// they gate on their own hop alone).
    fn gate_open(&self, gate: u32, scratch: &FaultScratch) -> bool {
        if gate == u32::MAX {
            return true;
        }
        let mut unit = gate;
        loop {
            if !scratch.delivered[self.message_of[unit as usize] as usize] {
                return false;
            }
            match self.raw_parent[unit as usize] {
                NOT_RAW | RAW_ORIGIN => return true,
                parent => unit = parent,
            }
        }
    }

    /// Left-folds one op run like [`fold_ops`], but skipping ops whose
    /// gate is closed (see `scratch.gate_ok`) or whose source record came
    /// up empty. Identical to [`fold_ops`] when every gate is open.
    fn fold_degraded(
        &self,
        first_op: u32,
        op_count: u32,
        kind: crate::agg::AggregateKind,
        scratch: &FaultScratch,
    ) -> Option<PartialRecord> {
        let base = first_op as usize;
        let mut acc: Option<PartialRecord> = None;
        for k in base..base + op_count as usize {
            if !scratch.gate_ok[k] {
                continue;
            }
            let part = match self.compiled.ops.get(k) {
                Op::Pre { slot, alpha } => {
                    kind.pre_aggregate_weighted(alpha, scratch.readings[slot as usize])
                }
                Op::FromUnit { unit } => match scratch.records[unit as usize] {
                    Some(r) => r,
                    None => continue, // delivered, but nothing survived upstream
                },
            };
            acc = Some(match acc {
                None => part,
                Some(prev) => kind.merge_records(prev, part),
            });
        }
        acc
    }

    /// Runs one fault-tolerant round: delivery simulation under `model`
    /// and `policy`, then the degraded replay over `readings` (dense, in
    /// [`CompiledSchedule::sources`] slot order). `round_salt`
    /// decorrelates this round's losses from other rounds'.
    ///
    /// # Panics
    /// Panics if `readings` or `scratch` is sized for a different
    /// executor.
    pub fn run(
        &self,
        readings: &[f64],
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        scratch: &mut FaultScratch,
    ) -> FaultOutcome {
        let _span = crate::telemetry::span(names::FAULTS_ROUND_NS);
        crate::telemetry::counter(names::FAULTS_ROUNDS, 1);
        assert_eq!(
            readings.len(),
            self.compiled.sources.len(),
            "reading vector length must match the interned source count"
        );
        assert_eq!(
            scratch.delivered.len(),
            self.messages.len(),
            "scratch/executor mismatch"
        );
        scratch.readings.copy_from_slice(readings);
        let (slots_used, retransmissions, dropped) =
            self.simulate_delivery(model, policy, round_salt, scratch);
        crate::telemetry::counter(names::FAULTS_RETRANSMISSIONS, retransmissions as u64);
        crate::telemetry::counter(names::FAULTS_DROPPED_MESSAGES, dropped as u64);
        if m2m_telemetry::timeseries::obs_enabled() {
            self.update_planes(scratch);
        }
        let cost = self.accumulate_cost(scratch);
        let delivered_all = scratch.delivered.iter().all(|&d| d);

        // Per-link failure summaries (unconditional, so an outcome is
        // identical with observability on or off; empty when lossless).
        let mut link_events: Vec<LinkEvent> = Vec::new();
        if retransmissions > 0 || dropped > 0 {
            for (m, msg) in self.messages.iter().enumerate() {
                let attempts = scratch.attempts[m];
                let failures = attempts - u32::from(scratch.delivered[m]);
                if failures > 0 {
                    link_events.push(LinkEvent {
                        tail: msg.edge.0,
                        head: msg.edge.1,
                        failures,
                        dropped: scratch.dropped[m],
                    });
                }
            }
        }

        // Degraded dataflow: fold each op run in the compiled order,
        // skipping ops whose gate is closed (or whose source record ended
        // up empty). With everything delivered this includes every op and
        // is bit-identical to `CompiledSchedule::run_round`.
        scratch.records.fill(None);
        let mut results: Vec<Option<f64>> = Vec::with_capacity(self.compiled.dest_steps.len());
        if delivered_all {
            // Fast path: nothing lost — the exact compiled fold.
            for step in &self.compiled.record_steps {
                let acc = fold_ops(
                    step.kind,
                    &self.compiled.ops,
                    step.first_op as usize,
                    step.op_count as usize,
                    &scratch.readings,
                    &scratch.records,
                );
                scratch.records[step.unit as usize] = acc;
            }
            for step in &self.compiled.dest_steps {
                let acc = fold_ops(
                    step.kind,
                    &self.compiled.ops,
                    step.first_op as usize,
                    step.op_count as usize,
                    &scratch.readings,
                    &scratch.records,
                );
                results.push(acc.map(|r| step.kind.evaluate_record(r)));
            }
        } else {
            // Resolve every gate once, then fold without re-touching the
            // delivery state (keeps the record-table borrow simple).
            for k in 0..self.op_gate.len() {
                let ok = self.gate_open(self.op_gate[k], scratch);
                scratch.gate_ok[k] = ok;
            }
            for step in &self.compiled.record_steps {
                let acc = self.fold_degraded(step.first_op, step.op_count, step.kind, scratch);
                scratch.records[step.unit as usize] = acc;
            }
            for step in &self.compiled.dest_steps {
                let acc = self.fold_degraded(step.first_op, step.op_count, step.kind, scratch);
                results.push(acc.map(|r| step.kind.evaluate_record(r)));
            }
        }

        // Coverage accounting.
        let words = self.words;
        let mut cover = vec![0u64; self.compiled.dest_steps.len() * words];
        if delivered_all {
            cover.copy_from_slice(&self.demanded_bits);
        } else {
            self.replay_coverage(scratch, &mut cover);
        }
        let coverage: Vec<DestCoverage> = self
            .compiled
            .dest_steps
            .iter()
            .enumerate()
            .map(|(i, step)| {
                let row = &cover[i * words..(i + 1) * words];
                let demanded_row = &self.demanded_bits[i * words..(i + 1) * words];
                let covered: usize = row.iter().map(|w| w.count_ones() as usize).sum();
                let mut missing = Vec::new();
                if covered < self.demanded[i] {
                    for (w, (&have, &want)) in row.iter().zip(demanded_row).enumerate() {
                        let mut lost = want & !have;
                        while lost != 0 {
                            let bit = lost.trailing_zeros() as usize;
                            missing.push(self.compiled.sources.id(w * 64 + bit));
                            lost &= lost - 1;
                        }
                    }
                }
                DestCoverage {
                    destination: step.dest,
                    covered,
                    demanded: self.demanded[i],
                    missing,
                }
            })
            .collect();
        let degraded = coverage.iter().filter(|c| !c.complete()).count();
        crate::telemetry::counter(names::FAULTS_DEGRADED_DESTINATIONS, degraded as u64);

        FaultOutcome {
            results,
            coverage,
            cost,
            slots_used,
            retransmissions,
            dropped_messages: dropped,
            delivered: delivered_all,
            link_events,
        }
    }

    /// Like [`FaultyExec::run`] but taking readings keyed by node id (the
    /// reference input shape).
    ///
    /// # Panics
    /// Panics if a source reading is missing.
    pub fn run_on(
        &self,
        readings: &BTreeMap<NodeId, f64>,
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        scratch: &mut FaultScratch,
    ) -> FaultOutcome {
        let dense: Vec<f64> = self
            .compiled
            .sources
            .ids()
            .iter()
            .map(|s| {
                *readings
                    .get(s)
                    .unwrap_or_else(|| panic!("no reading for source {s}"))
            })
            .collect();
        self.run(&dense, model, policy, round_salt, scratch)
    }

    /// Delivery simulation only — no readings, no dataflow. Returns the
    /// legacy resilience view of the round: makespan, retransmissions,
    /// cost, and whether everything was delivered. This is what
    /// [`crate::resilience`] is built on.
    pub fn run_delivery_only(
        &self,
        model: &DeliveryModel,
        policy: &RetryPolicy,
        round_salt: u64,
        scratch: &mut FaultScratch,
    ) -> (u32, usize, usize, RoundCost, bool) {
        let (slots_used, retransmissions, dropped) =
            self.simulate_delivery(model, policy, round_salt, scratch);
        let cost = self.accumulate_cost(scratch);
        let delivered = scratch.delivered.iter().all(|&d| d);
        (slots_used, retransmissions, dropped, cost, delivered)
    }

    /// Runs one round per entry of `rounds` (dense reading vectors)
    /// across up to `threads` workers, salting round `i` with
    /// `base_salt + i * SALT_STRIDE`. Results come back in input order, so
    /// the output is identical at any thread count.
    pub fn run_rounds(
        &self,
        rounds: &[Vec<f64>],
        model: &DeliveryModel,
        policy: &RetryPolicy,
        base_salt: u64,
        threads: usize,
    ) -> Vec<FaultOutcome> {
        let indexed: Vec<(usize, &Vec<f64>)> = rounds.iter().enumerate().collect();
        parallel::parallel_map_with(
            &indexed,
            threads,
            || self.scratch(),
            |scratch, &(i, readings)| {
                let salt = base_salt.wrapping_add(i as u64 * SALT_STRIDE);
                self.run(readings, model, policy, salt, scratch)
            },
        )
    }

    // ------------------------------------------------------------------
    // Crate-internal views of the compiled static tables, shared with the
    // event-driven runtime in [`crate::sim`]: the message graph, op gates,
    // relay chains, and coverage universe are clock-independent, so the
    // simulator reuses them instead of re-deriving its own.
    // ------------------------------------------------------------------

    /// Per-message execution facts, in schedule message order.
    #[inline]
    pub(crate) fn message_facts(&self) -> &[MessageFacts] {
        &self.messages
    }

    /// Predecessor messages of message `m`.
    #[inline]
    pub(crate) fn preds_of(&self, m: usize) -> &[u32] {
        let (a, b) = self.messages[m].preds;
        &self.pred_pool[a as usize..b as usize]
    }

    /// Unit index → message index table.
    #[inline]
    pub(crate) fn unit_message(&self) -> &[u32] {
        &self.message_of
    }

    /// Op-aligned gate table (see [`FaultyExec::op_gate`]).
    #[inline]
    pub(crate) fn op_gates(&self) -> &[u32] {
        &self.op_gate
    }

    /// Bitset words per coverage row.
    #[inline]
    pub(crate) fn cover_words(&self) -> usize {
        self.words
    }

    /// Per-destination demanded-source bitsets (row-major).
    #[inline]
    pub(crate) fn demanded_rows(&self) -> &[u64] {
        &self.demanded_bits
    }

    /// Per-destination demanded-source counts.
    #[inline]
    pub(crate) fn demanded_counts(&self) -> &[usize] {
        &self.demanded
    }

    /// Sorted per-node plane universe (message endpoints as `u64` ids).
    #[inline]
    pub(crate) fn plane_universe(&self) -> &[u64] {
        &self.plane_ids
    }

    /// [`FaultyExec::gate_open`] against an external delivered table —
    /// the simulator keeps its own delivery state.
    #[inline]
    pub(crate) fn gate_open_in(&self, gate: u32, delivered: &[bool]) -> bool {
        if gate == u32::MAX {
            return true;
        }
        let mut unit = gate;
        loop {
            if !delivered[self.message_of[unit as usize] as usize] {
                return false;
            }
            match self.raw_parent[unit as usize] {
                NOT_RAW | RAW_ORIGIN => return true,
                parent => unit = parent,
            }
        }
    }
}

/// Per-round salt stride: a prime far larger than any slot budget, so no
/// two rounds share a `(link, tick)` coordinate.
pub const SALT_STRIDE: u64 = 1_000_003;

/// Per-destination staleness: how many consecutive rounds each
/// destination has ended with partial coverage. Complements the per-round
/// [`DestCoverage`] with the time dimension — a controller steering an
/// actuator cares whether its signal is one round stale or fifty.
#[derive(Clone, Debug, Default)]
pub struct DegradationTracker {
    staleness: BTreeMap<NodeId, u64>,
    rounds: u64,
}

impl DegradationTracker {
    /// A tracker with no history.
    pub fn new() -> Self {
        DegradationTracker::default()
    }

    /// Folds one round's outcome in: destinations with full coverage
    /// reset to 0, degraded ones age by one round.
    pub fn observe(&mut self, outcome: &FaultOutcome) {
        self.rounds += 1;
        for c in &outcome.coverage {
            if c.complete() {
                self.staleness.insert(c.destination, 0);
            } else {
                *self.staleness.entry(c.destination).or_insert(0) += 1;
            }
        }
    }

    /// Rounds since destination `d` last saw full coverage (0 if it was
    /// complete last round or has never been observed).
    pub fn staleness(&self, d: NodeId) -> u64 {
        self.staleness.get(&d).copied().unwrap_or(0)
    }

    /// The worst staleness over all observed destinations.
    pub fn max_staleness(&self) -> u64 {
        self.staleness.values().copied().max().unwrap_or(0)
    }

    /// Forgets all staleness history (the round count is kept). Called
    /// when routes change: staleness measured a path that no longer
    /// exists, so aging the new path by the old one's debt would report
    /// outages the new routes never caused.
    pub fn reset_staleness(&mut self) {
        self.staleness.clear();
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// The churn driver's gate: compares observed link quality against the
/// baseline the current routes were built for, and fires a reroute only
/// when the worst relative ETX drift exceeds the hysteresis threshold.
/// The caller owns the actual loop closure (recompute
/// [`m2m_netsim::quality::weighted_routing`], push it through
/// [`crate::dynamics::PlanMaintainer::apply_route_change`], then
/// [`ChurnController::rebase`]); [`crate::session::Session`] wires the
/// whole cycle together.
#[derive(Clone, Debug)]
pub struct ChurnController {
    baseline: LinkQuality,
    hysteresis: f64,
    reroutes: usize,
    suppressed: usize,
}

impl ChurnController {
    /// A controller whose current routes were built for `baseline`.
    ///
    /// # Panics
    /// Panics unless `hysteresis` is finite and non-negative.
    pub fn new(baseline: LinkQuality, hysteresis: f64) -> Self {
        assert!(
            hysteresis.is_finite() && hysteresis >= 0.0,
            "hysteresis must be finite and >= 0"
        );
        ChurnController {
            baseline,
            hysteresis,
            reroutes: 0,
            suppressed: 0,
        }
    }

    /// The worst relative ETX drift of any baseline link:
    /// `max |etx_now − etx_base| / etx_base`.
    pub fn drift(&self, current: &LinkQuality) -> f64 {
        self.baseline
            .links()
            .map(|((a, b), _)| {
                let base = self.baseline.etx(a, b);
                let now = current.etx(a, b);
                (now - base).abs() / base
            })
            .fold(0.0, f64::max)
    }

    /// Observes `current` quality: returns true (and counts a reroute) if
    /// drift exceeds the hysteresis threshold, false (and counts a
    /// suppression) otherwise. On true the caller must rebuild routes and
    /// then [`ChurnController::rebase`].
    pub fn should_reroute(&mut self, current: &LinkQuality) -> bool {
        if self.drift(current) > self.hysteresis {
            self.reroutes += 1;
            crate::telemetry::counter(names::FAULTS_REROUTES, 1);
            true
        } else {
            self.suppressed += 1;
            crate::telemetry::counter(names::FAULTS_REROUTES_SUPPRESSED, 1);
            false
        }
    }

    /// Adopts `baseline` as the quality the (just rebuilt) routes match.
    pub fn rebase(&mut self, baseline: LinkQuality) {
        self.baseline = baseline;
    }

    /// Reroutes fired so far.
    pub fn reroutes(&self) -> usize {
        self.reroutes
    }

    /// Observations absorbed below the threshold so far.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggregateFunction, AggregateKind};
    use crate::exec::ExecState;
    use crate::plan::GlobalPlan;
    use crate::spec::AggregationSpec;
    use m2m_netsim::failure::FailureTrace;
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::new(
                AggregateKind::WeightedAverage,
                [
                    (NodeId(0), 1.0),
                    (NodeId(1), 2.0),
                    (NodeId(3), 0.5),
                    (NodeId(6), 1.5),
                ],
            ),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 3.0)]),
        );
        s.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 2.0), (NodeId(3), 1.0)]),
        );
        s
    }

    fn compile(net: &Network, spec: &AggregationSpec, mode: RoutingMode) -> CompiledSchedule {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        CompiledSchedule::compile(net, spec, &plan).unwrap()
    }

    fn dense_readings(compiled: &CompiledSchedule) -> Vec<f64> {
        compiled
            .sources()
            .ids()
            .iter()
            .map(|s| f64::from(s.0) * 1.25 - 3.0)
            .collect()
    }

    #[test]
    fn lossless_round_is_bit_identical_to_compiled() {
        let net = network();
        let spec = spec();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let compiled = compile(&net, &spec, mode);
            let faulty = FaultyExec::new(&net, &compiled);
            let readings = dense_readings(&compiled);
            let mut state = ExecState::for_schedule(&compiled);
            state.readings_mut().copy_from_slice(&readings);
            let plain_cost = compiled.run_round(&mut state);
            let mut scratch = faulty.scratch();
            for policy in [
                RetryPolicy::unlimited(10_000),
                RetryPolicy::bounded(1, 0, 10_000),
                RetryPolicy::bounded(0, 3, 10_000),
            ] {
                let out = faulty.run(
                    &readings,
                    &DeliveryModel::reliable(),
                    &policy,
                    42,
                    &mut scratch,
                );
                assert!(out.delivered);
                assert_eq!(out.retransmissions, 0);
                assert_eq!(out.dropped_messages, 0);
                assert_eq!(out.cost, plain_cost, "{mode:?}: cost must be bitwise equal");
                let exact: Vec<Option<f64>> = state.results().iter().map(|&r| Some(r)).collect();
                assert_eq!(
                    out.results, exact,
                    "{mode:?}: results must be bitwise equal"
                );
                assert_eq!(out.degraded_destinations(), 0);
                for c in &out.coverage {
                    assert!(c.complete());
                    assert_eq!(c.fraction(), 1.0);
                    assert!(c.missing.is_empty());
                }
            }
        }
    }

    #[test]
    fn demanded_sources_match_the_spec() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::ShortestPathTrees);
        let faulty = FaultyExec::new(&net, &compiled);
        let readings = dense_readings(&compiled);
        let mut scratch = faulty.scratch();
        let out = faulty.run(
            &readings,
            &DeliveryModel::reliable(),
            &RetryPolicy::default(),
            0,
            &mut scratch,
        );
        for c in &out.coverage {
            let f = spec.function(c.destination).unwrap();
            assert_eq!(
                c.demanded,
                f.sources().count(),
                "destination {} demanded-set size",
                c.destination
            );
        }
    }

    #[test]
    fn lossy_rounds_retransmit_and_still_deliver_with_unlimited_retries() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::ShortestPathTrees);
        let faulty = FaultyExec::new(&net, &compiled);
        let readings = dense_readings(&compiled);
        let mut scratch = faulty.scratch();
        let out = faulty.run(
            &readings,
            &DeliveryModel::uniform(0.3, 7),
            &RetryPolicy::unlimited(10_000),
            1,
            &mut scratch,
        );
        assert!(out.delivered);
        assert!(out.retransmissions > 0);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.degraded_destinations(), 0);
        assert!(out.slots_used >= faulty.slot_schedule().slot_count);
        // Retransmissions burn tx energy beyond the static round.
        assert!(out.cost.tx_uj > compiled.round_cost().tx_uj);
        assert!((out.cost.rx_uj - compiled.round_cost().rx_uj).abs() < 1e-9);
    }

    #[test]
    fn a_dead_link_degrades_exactly_its_downstream_destinations() {
        // Line network 0-1-2-3-4: dest 4 aggregates 0 and 3. Killing link
        // 0-1 forever loses source 0 but not source 3.
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(4),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(3), 1.0)]),
        );
        let compiled = compile(&net, &s, RoutingMode::ShortestPathTrees);
        let faulty = FaultyExec::new(&net, &compiled);
        let trace = FailureTrace::new().down(NodeId(0), NodeId(1), 0, u64::MAX);
        let model = DeliveryModel::trace(trace);
        let readings = dense_readings(&compiled);
        let mut scratch = faulty.scratch();
        let out = faulty.run(
            &readings,
            &model,
            &RetryPolicy::bounded(3, 0, 1_000),
            0,
            &mut scratch,
        );
        assert!(!out.delivered);
        assert!(out.dropped_messages >= 1);
        assert_eq!(out.coverage.len(), 1);
        let c = &out.coverage[0];
        assert_eq!(c.destination, NodeId(4));
        assert_eq!(c.demanded, 2);
        assert_eq!(c.covered, 1);
        assert_eq!(c.missing, vec![NodeId(0)]);
        assert!((c.fraction() - 0.5).abs() < 1e-12);
        // The surviving half still evaluates: result is Σ over {3} only.
        let idx = compiled.sources().slot(NodeId(3)).unwrap();
        let expected = readings[idx];
        assert_eq!(out.results[0], Some(expected));
    }

    #[test]
    fn run_rounds_is_deterministic_across_thread_counts() {
        let net = network();
        let spec = spec();
        let compiled = compile(&net, &spec, RoutingMode::ShortestPathTrees);
        let faulty = FaultyExec::new(&net, &compiled);
        let slots = compiled.sources().len();
        let rounds: Vec<Vec<f64>> = (0..13)
            .map(|r| (0..slots).map(|s| (r * 17 + s) as f64 * 0.25).collect())
            .collect();
        let model = DeliveryModel::uniform(0.25, 11);
        let policy = RetryPolicy::bounded(4, 1, 5_000);
        let serial = faulty.run_rounds(&rounds, &model, &policy, 99, 1);
        for threads in [2, 8] {
            assert_eq!(
                faulty.run_rounds(&rounds, &model, &policy, 99, threads),
                serial,
                "threads={threads}"
            );
        }
        // And rerunning gives the same outcomes (seeded, replayable).
        assert_eq!(faulty.run_rounds(&rounds, &model, &policy, 99, 4), serial);
    }

    #[test]
    fn degradation_tracker_ages_and_resets() {
        let mk = |complete: bool| FaultOutcome {
            results: vec![None],
            coverage: vec![DestCoverage {
                destination: NodeId(9),
                covered: usize::from(complete),
                demanded: 1,
                missing: if complete { vec![] } else { vec![NodeId(1)] },
            }],
            cost: RoundCost::default(),
            slots_used: 0,
            retransmissions: 0,
            dropped_messages: 0,
            delivered: complete,
            link_events: vec![],
        };
        let mut t = DegradationTracker::new();
        t.observe(&mk(false));
        t.observe(&mk(false));
        assert_eq!(t.staleness(NodeId(9)), 2);
        assert_eq!(t.max_staleness(), 2);
        t.observe(&mk(true));
        assert_eq!(t.staleness(NodeId(9)), 0);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.staleness(NodeId(1)), 0, "unobserved dest is fresh");
    }

    /// One-destination outcome with the given coverage, for tracker
    /// edge-case tests.
    fn coverage_outcome(dest: NodeId, complete: bool) -> FaultOutcome {
        FaultOutcome {
            results: vec![None],
            coverage: vec![DestCoverage {
                destination: dest,
                covered: usize::from(complete),
                demanded: 1,
                missing: if complete { vec![] } else { vec![NodeId(1)] },
            }],
            cost: RoundCost::default(),
            slots_used: 0,
            retransmissions: 0,
            dropped_messages: 0,
            delivered: complete,
            link_events: vec![],
        }
    }

    #[test]
    fn degradation_tracker_never_covered_destination_ages_unboundedly() {
        // A destination that never sees full coverage must age one round
        // per round — no cap, no wraparound, no accidental reset.
        let mut t = DegradationTracker::new();
        for round in 1..=1_000u64 {
            t.observe(&coverage_outcome(NodeId(7), false));
            assert_eq!(t.staleness(NodeId(7)), round);
        }
        assert_eq!(t.max_staleness(), 1_000);
        assert_eq!(t.rounds(), 1_000);
    }

    #[test]
    fn degradation_tracker_recovers_fully_after_long_outage() {
        // A single complete round clears an arbitrarily long outage —
        // staleness is "rounds since last full coverage", not a decaying
        // average — and a relapse restarts the count from one.
        let mut t = DegradationTracker::new();
        for _ in 0..500 {
            t.observe(&coverage_outcome(NodeId(7), false));
        }
        assert_eq!(t.staleness(NodeId(7)), 500);
        t.observe(&coverage_outcome(NodeId(7), true));
        assert_eq!(t.staleness(NodeId(7)), 0);
        assert_eq!(t.max_staleness(), 0);
        t.observe(&coverage_outcome(NodeId(7), false));
        assert_eq!(t.staleness(NodeId(7)), 1, "relapse restarts from 1");
    }

    #[test]
    fn degradation_tracker_reset_forgets_debt_but_keeps_rounds() {
        // A reroute makes accumulated staleness meaningless (it measured
        // paths that no longer exist): reset clears every destination's
        // debt, keeps the round count, and aging restarts from scratch.
        let mut t = DegradationTracker::new();
        for _ in 0..9 {
            t.observe(&coverage_outcome(NodeId(7), false));
            t.observe(&coverage_outcome(NodeId(8), false));
        }
        assert_eq!(t.max_staleness(), 9);
        t.reset_staleness();
        assert_eq!(t.staleness(NodeId(7)), 0);
        assert_eq!(t.staleness(NodeId(8)), 0);
        assert_eq!(t.max_staleness(), 0);
        assert_eq!(t.rounds(), 18, "reset must not rewrite history length");
        t.observe(&coverage_outcome(NodeId(7), false));
        assert_eq!(t.staleness(NodeId(7)), 1, "post-reset aging is fresh");
    }

    #[test]
    fn churn_controller_respects_hysteresis() {
        let net = network();
        let base = LinkQuality::distance_based(&net, 0.2, 3);
        let mut ctl = ChurnController::new(base.clone(), 0.3);
        // No drift: suppressed.
        assert!(!ctl.should_reroute(&base));
        assert_eq!(ctl.suppressed(), 1);
        // Small drift stays under the threshold.
        let small = base.with_drift(0.05, 7);
        assert!(ctl.drift(&small) < 0.3);
        assert!(!ctl.should_reroute(&small));
        // A link collapsing to near-unusable blows way past it.
        let mut bad = base.clone();
        let ((a, b), _) = base.links().next().unwrap();
        bad.set_loss(a, b, 0.95);
        assert!(ctl.drift(&bad) > 0.3);
        assert!(ctl.should_reroute(&bad));
        assert_eq!(ctl.reroutes(), 1);
        ctl.rebase(bad.clone());
        assert!(!ctl.should_reroute(&bad), "rebase resets the reference");
    }
}
