//! Per-node state tables (§3, "Implementing Node Behavior").
//!
//! The plan is executed inside the network by four tables at each node:
//!
//! * **Raw table** `⟨s, g⟩` — forward the raw value of source `s` into
//!   outgoing message `g`;
//! * **Pre-aggregation table** `⟨s, d, w_{d,s}⟩` — this node applies the
//!   pre-aggregation function to `s`'s raw value on behalf of destination
//!   `d` (including the case `d = n`);
//! * **Partial aggregate table** `⟨d, c, m_d, g⟩` — this node combines `c`
//!   partial records for `d` (received + locally pre-aggregated) and
//!   forwards the result in message `g` (`g` omitted when `d = n`);
//! * **Outgoing message table** `⟨g, c, n'⟩` — message `g` carries `c`
//!   units to neighbor `n'`.
//!
//! Tables are computed out-of-network from the [`GlobalPlan`] and would be
//! disseminated into the network; Theorem 3 bounds their total size by
//! `O(min(Σ|T_s|, Σ|A_d|))` — asserted by the tests in
//! `tests/plan_invariants.rs`.
//!
//! One generalization over the paper's presentation: partial-aggregate and
//! pre-aggregation entries carry the *continuation group* (destination +
//! remaining route) rather than the destination alone, so the tables stay
//! executable even when the §2.1 sharing restriction does not hold (see
//! [`crate::edge_opt`]). Under the restriction each destination has one
//! group per node and the entries collapse to the paper's exact shape.

use std::collections::BTreeMap;

use m2m_graph::NodeId;

use crate::edge_opt::{AggGroup, DirectedEdge};
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;

/// Where a partial-aggregate contribution is headed: into a record on an
/// outgoing edge, or into the local final evaluation (`d = n`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecordTarget {
    /// Merge into the record for `group` transmitted on `edge`.
    Edge(DirectedEdge, AggGroup),
    /// This node is the destination: merge into the final record.
    Local(NodeId),
}

/// One input slot of a partial-aggregate accumulator, in the canonical
/// merge order the compiled executor folds in ([`crate::exec`] compiles
/// its op stream from the same sorted contribution sets). A node machine
/// that buffers arrivals into these slots and folds them slot-by-slot
/// reproduces the executor's floating-point results *bit-identically*,
/// independent of radio arrival order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum InputKey {
    /// A contribution pre-aggregated at this node from this source's raw
    /// value (own reading or received raw unit).
    Pre(NodeId),
    /// A partial record received from this neighbor.
    Record(NodeId),
}

/// Raw table entry: forward raw value of `source` into message `message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawEntry {
    /// The source whose raw value is forwarded.
    pub source: NodeId,
    /// Outgoing message index (into [`NodeState::outgoing`]).
    pub message: usize,
}

/// Pre-aggregation table entry: apply `w_{d,s}` here.
#[derive(Clone, Debug, PartialEq)]
pub struct PreAggEntry {
    /// The source whose raw value is transformed.
    pub source: NodeId,
    /// The destination the transform is specific to.
    pub destination: NodeId,
    /// The weight parameterizing `w_{d,s}`.
    pub weight: f64,
    /// Where the resulting contribution is merged.
    pub target: RecordTarget,
}

/// Partial aggregate table entry: merge `merge_count` records for a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialEntry {
    /// The destination of the record.
    pub destination: NodeId,
    /// The continuation-group suffix identifying the record (starts at
    /// this node's successor; see [`AggGroup`]). `None` for the local
    /// (final) record at the destination itself.
    pub group: Option<AggGroup>,
    /// Number of inputs merged at this node: received records plus locally
    /// pre-aggregated raw values (the paper's `c`).
    pub merge_count: u32,
    /// Outgoing message index; `None` when this node is the destination.
    pub message: Option<usize>,
    /// The accumulator's input slots in canonical merge order (the
    /// paper's `c` inputs, made explicit). `inputs.len() == merge_count`.
    pub inputs: Vec<InputKey>,
}

/// Outgoing message table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutgoingMessage {
    /// Message index at this node.
    pub message: usize,
    /// Number of message units inside.
    pub unit_count: u32,
    /// The receiving neighbor.
    pub next_hop: NodeId,
}

/// All four tables for one node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeState {
    /// Raw-forwarding entries.
    pub raw: Vec<RawEntry>,
    /// Pre-aggregation entries.
    pub preagg: Vec<PreAggEntry>,
    /// Partial-aggregate entries.
    pub partial: Vec<PartialEntry>,
    /// Outgoing messages.
    pub outgoing: Vec<OutgoingMessage>,
}

impl NodeState {
    /// Total entries across the four tables (Theorem 3 accounting).
    pub fn entry_count(&self) -> usize {
        self.raw.len() + self.preagg.len() + self.partial.len() + self.outgoing.len()
    }
}

/// The complete in-network state of a plan.
#[derive(Clone, Debug)]
pub struct NodeTables {
    per_node: BTreeMap<NodeId, NodeState>,
}

impl NodeTables {
    /// Builds tables directly from per-node states — used by
    /// fault-injection tests and custom dissemination flows.
    pub fn from_states(per_node: BTreeMap<NodeId, NodeState>) -> Self {
        NodeTables { per_node }
    }

    /// Derives the node tables from a plan.
    ///
    /// The tables are derived *from the transmission schedule* rather
    /// than re-walking the plan, so the message grouping in the outgoing
    /// table is exactly the cycle-safe grouping the merger chose — if an
    /// edge needed two messages to break a wait-for cycle, the tables say
    /// so, and the node automata stay deadlock-free.
    ///
    /// # Panics
    /// Panics if the plan is unschedulable (a wait-for cycle among units,
    /// which Theorem 2 rules out for plans built by this crate).
    pub fn build(spec: &AggregationSpec, plan: &GlobalPlan) -> Self {
        let schedule = crate::schedule::build_schedule(spec, plan)
            .expect("plan must be schedulable (Theorem 2)");
        Self::from_schedule(spec, &schedule)
    }

    /// Derives the node tables from an already-built schedule.
    pub fn from_schedule(spec: &AggregationSpec, schedule: &crate::schedule::Schedule) -> Self {
        use crate::schedule::{Contribution, UnitContent};

        let mut per_node: BTreeMap<NodeId, NodeState> = BTreeMap::new();

        // Outgoing message table: one entry per schedule message, indexed
        // per sender in schedule order.
        let mut node_msg_index: Vec<usize> = Vec::with_capacity(schedule.messages.len());
        for m in &schedule.messages {
            let state = per_node.entry(m.edge.0).or_default();
            let idx = state.outgoing.len();
            node_msg_index.push(idx);
            state.outgoing.push(OutgoingMessage {
                message: idx,
                unit_count: m.units.len() as u32,
                next_hop: m.edge.1,
            });
        }
        // Per-unit: the sender-local index of the message carrying it.
        let mut unit_msg = vec![usize::MAX; schedule.units.len()];
        for (mi, m) in schedule.messages.iter().enumerate() {
            for &u in &m.units {
                unit_msg[u] = node_msg_index[mi];
            }
        }

        // Raw, partial, and pre-aggregation entries from the units.
        for (ui, unit) in schedule.units.iter().enumerate() {
            let n = unit.edge.0;
            let msg = unit_msg[ui];
            match &unit.content {
                UnitContent::Raw(s) => {
                    let state = per_node.entry(n).or_default();
                    if !state.raw.iter().any(|e| e.source == *s && e.message == msg) {
                        state.raw.push(RawEntry {
                            source: *s,
                            message: msg,
                        });
                    }
                }
                UnitContent::Record(group) => {
                    let d = group.destination;
                    let c = schedule.contributions[ui].len() as u32;
                    let inputs: Vec<InputKey> = schedule.contributions[ui]
                        .iter()
                        .map(|contrib| match contrib {
                            Contribution::Pre(s) => InputKey::Pre(*s),
                            Contribution::FromUnit(p) => {
                                InputKey::Record(schedule.units[*p].edge.0)
                            }
                        })
                        .collect();
                    let state = per_node.entry(n).or_default();
                    state.partial.push(PartialEntry {
                        destination: d,
                        group: Some(group.clone()),
                        merge_count: c.max(1),
                        message: Some(msg),
                        inputs,
                    });
                    for contrib in &schedule.contributions[ui] {
                        if let Contribution::Pre(s) = contrib {
                            let weight = spec
                                .function(d)
                                .expect("destination has a function")
                                .weight(*s)
                                .expect("pair in spec");
                            state.preagg.push(PreAggEntry {
                                source: *s,
                                destination: d,
                                weight,
                                target: RecordTarget::Edge(unit.edge, group.clone()),
                            });
                        }
                    }
                }
            }
        }

        // Destination-local evaluation entries.
        for (&d, inputs) in &schedule.destination_inputs {
            let state = per_node.entry(d).or_default();
            state.partial.push(PartialEntry {
                destination: d,
                group: None,
                merge_count: inputs.len() as u32,
                message: None,
                inputs: inputs
                    .iter()
                    .map(|contrib| match contrib {
                        Contribution::Pre(s) => InputKey::Pre(*s),
                        Contribution::FromUnit(p) => InputKey::Record(schedule.units[*p].edge.0),
                    })
                    .collect(),
            });
            for contrib in inputs {
                if let Contribution::Pre(s) = contrib {
                    let weight = spec
                        .function(d)
                        .expect("destination has a function")
                        .weight(*s)
                        .expect("pair in spec");
                    state.preagg.push(PreAggEntry {
                        source: *s,
                        destination: d,
                        weight,
                        target: RecordTarget::Local(d),
                    });
                }
            }
        }

        NodeTables { per_node }
    }

    /// The tables at node `n`, if it participates in the plan.
    pub fn node(&self, n: NodeId) -> Option<&NodeState> {
        self.per_node.get(&n)
    }

    /// Iterator over `(node, state)`.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeState)> {
        self.per_node.iter().map(|(&n, s)| (n, s))
    }

    /// Total entries across all nodes and tables (Theorem 3's measure).
    pub fn total_entries(&self) -> usize {
        self.per_node.values().map(|s| s.entry_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::plan::GlobalPlan;
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn build(
        spec: &AggregationSpec,
        mode: RoutingMode,
    ) -> (Network, RoutingTables, GlobalPlan, NodeTables) {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(&net, spec, &routing);
        plan.validate(spec, &routing).unwrap();
        let tables = NodeTables::build(spec, &plan);
        (net, routing, plan, tables)
    }

    fn two_dest_spec() -> AggregationSpec {
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 2.0)]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 3.0), (NodeId(1), 4.0)]),
        );
        spec
    }

    #[test]
    fn destinations_get_local_entries() {
        let spec = two_dest_spec();
        let (_, _, _, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        for d in [NodeId(12), NodeId(15)] {
            let state = tables.node(d).expect("destination has state");
            let local = state
                .partial
                .iter()
                .find(|p| p.destination == d && p.message.is_none())
                .expect("local evaluation entry");
            assert!(local.merge_count >= 1);
        }
    }

    #[test]
    fn sources_have_outgoing_state() {
        let spec = two_dest_spec();
        let (_, _, _, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        for s in [NodeId(0), NodeId(1)] {
            let state = tables.node(s).expect("source has state");
            assert!(!state.outgoing.is_empty(), "source must transmit something");
        }
    }

    #[test]
    fn outgoing_unit_counts_match_solutions() {
        let spec = two_dest_spec();
        let (_, _, plan, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        for (n, state) in tables.nodes() {
            for out in &state.outgoing {
                let edge = (n, out.next_hop);
                let sol = plan.solution(edge).expect("edge in plan");
                assert_eq!(out.unit_count as usize, sol.unit_count());
            }
        }
    }

    #[test]
    fn preagg_weights_come_from_spec() {
        let spec = two_dest_spec();
        let (_, _, _, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        for (_, state) in tables.nodes() {
            for e in &state.preagg {
                let expected = spec
                    .function(e.destination)
                    .unwrap()
                    .weight(e.source)
                    .unwrap();
                assert_eq!(e.weight, expected);
            }
        }
    }

    #[test]
    fn self_source_destination_is_local_only() {
        let mut spec = AggregationSpec::new();
        // Node 5 aggregates itself and node 6.
        spec.add_function(
            NodeId(5),
            AggregateFunction::weighted_sum([(NodeId(5), 1.0), (NodeId(6), 1.0)]),
        );
        let (_, _, _, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        let state = tables.node(NodeId(5)).unwrap();
        assert!(state
            .preagg
            .iter()
            .any(|e| e.source == NodeId(5) && e.destination == NodeId(5)));
        let local = state.partial.iter().find(|p| p.message.is_none()).unwrap();
        assert_eq!(local.merge_count, 2);
    }

    #[test]
    fn total_entries_positive_and_finite() {
        let spec = two_dest_spec();
        let (_, routing, _, tables) = build(&spec, RoutingMode::ShortestPathTrees);
        assert!(tables.total_entries() > 0);
        // Crude sanity ceiling: a few entries per tree node.
        assert!(tables.total_entries() <= 8 * routing.total_tree_size());
    }
}
