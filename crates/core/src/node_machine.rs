//! Event-driven node automata executing straight from the §3 tables.
//!
//! [`crate::runtime`] evaluates a plan centrally over the unit DAG; this
//! module is the *distributed* counterpart the paper actually deploys:
//! each node runs an automaton whose entire program is its four state
//! tables ("Each node, upon receiving an incoming message unit, produces
//! and transmits all outgoing message units that are no longer waiting
//! for any additional message units" — §3). Nodes exchange
//! [`WireMessage`]s; nothing else is shared. The integration tests drive
//! both runtimes over the same workloads and require identical results,
//! which makes [`crate::tables`] load-bearing rather than merely audited.
//!
//! Two properties distinguish this from the original prototype:
//!
//! * **Canonical merge order.** Accumulators no longer merge in radio
//!   arrival order: every [`crate::tables::PartialEntry`] carries its
//!   input slots ([`crate::tables::InputKey`]) in the same sorted
//!   contribution order the compiled executor folds in, arrivals are
//!   buffered into their slot, and the fold runs slot-by-slot once the
//!   last input lands. Distributed results are therefore *bit-identical*
//!   to [`crate::exec`] (and to the [`crate::sim`] event runtime), not
//!   merely within float tolerance — `tests/sim_equivalence.rs` pins
//!   this across routing modes.
//! * **Allocation-free steady state.** The prototype allocated a fresh
//!   `Vec<WireUnit>` per staged message per round and rebuilt every
//!   automaton per round. [`DistributedRunner`] keeps the machines warm
//!   ([`NodeMachine::reset`] rearms without allocating), recycles unit
//!   buffers through a [`UnitPool`] free list, and resolves incoming
//!   records against a boot-time interned group map instead of
//!   constructing a fresh suffix per hop — after the first round the
//!   message path performs no unit-buffer allocations at all
//!   (`tests/alloc_budget.rs` counts them; numbers in EXPERIMENTS.md).

use std::collections::{BTreeMap, VecDeque};

use m2m_graph::NodeId;

use crate::agg::PartialRecord;
use crate::edge_opt::AggGroup;
use crate::spec::AggregationSpec;
use crate::tables::{InputKey, NodeState, NodeTables, RecordTarget};

/// One unit on the wire.
#[derive(Clone, Debug)]
pub enum WireUnit {
    /// A raw value, tagged by its source (§3: "a raw value, tagged by the
    /// source node identifier").
    Raw {
        /// The producing source.
        source: NodeId,
        /// The reading.
        value: f64,
    },
    /// A partial aggregate record, tagged by its continuation group
    /// ("a partial aggregate record, tagged by the destination node
    /// identifier" — the group generalizes the tag, see
    /// [`crate::edge_opt`]).
    Record {
        /// The record's group (destination + remaining route).
        group: AggGroup,
        /// The accumulated partial aggregate.
        record: PartialRecord,
    },
}

/// A radio message between neighbors.
#[derive(Clone, Debug)]
pub struct WireMessage {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The merged units.
    pub units: Vec<WireUnit>,
}

/// Free list of unit buffers: emitted messages draw their `units`
/// backing store here, and consumed messages return it. After one warm-up
/// round every message reuses a buffer — the steady-state message path
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct UnitPool {
    free: Vec<Vec<WireUnit>>,
    fresh: u64,
    reused: u64,
}

impl UnitPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty buffer, reusing a returned one when available.
    pub fn take(&mut self) -> Vec<WireUnit> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Returns a consumed message's buffer for reuse.
    pub fn put(&mut self, buf: Vec<WireUnit>) {
        self.free.push(buf);
    }

    /// Buffers allocated fresh (pool misses) since construction.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }

    /// Buffers served from the free list since construction.
    pub fn reuses(&self) -> u64 {
        self.reused
    }
}

/// A record accumulator: buffers inputs into canonical slots, folds and
/// fires when the last slot fills.
#[derive(Clone, Debug)]
struct Accumulator {
    /// One slot per [`InputKey`] of the program entry, same order.
    slots: Vec<Option<PartialRecord>>,
    filled: u32,
    fired: bool,
}

/// One node's runtime automaton.
#[derive(Clone, Debug)]
pub struct NodeMachine {
    id: NodeId,
    program: NodeState,
    /// Accumulators aligned with `program.partial`.
    accs: Vec<Accumulator>,
    /// Incoming wire group → accumulator index, interned at boot so the
    /// receive path never constructs a suffix.
    incoming: BTreeMap<AggGroup, usize>,
    /// Per `program.preagg` entry: `(accumulator, slot)` resolved at boot.
    preagg_route: Vec<(usize, usize)>,
    /// Units staged per outgoing message index.
    staged: Vec<Vec<WireUnit>>,
    /// Messages already emitted (each outgoing message fires once).
    emitted: Vec<bool>,
    /// Final results if this node is a destination.
    results: BTreeMap<NodeId, f64>,
}

impl NodeMachine {
    /// Boots a node from its disseminated state tables.
    ///
    /// # Panics
    /// Panics if the tables are internally inconsistent (a pre-aggregation
    /// entry pointing at a missing accumulator, an input slot absent from
    /// its entry).
    pub fn new(id: NodeId, program: NodeState) -> Self {
        let mut accs = Vec::with_capacity(program.partial.len());
        let mut incoming = BTreeMap::new();
        for (i, entry) in program.partial.iter().enumerate() {
            accs.push(Accumulator {
                slots: vec![None; entry.inputs.len()],
                filled: 0,
                fired: false,
            });
            // The wire form of this accumulator's records: suffix as the
            // *sender* tags it, i.e. starting at this node.
            let key = match (&entry.group, entry.message) {
                (Some(group), Some(_)) => {
                    let mut suffix = Vec::with_capacity(group.suffix.len() + 1);
                    suffix.push(id);
                    suffix.extend_from_slice(&group.suffix);
                    AggGroup {
                        destination: entry.destination,
                        suffix: suffix.into(),
                    }
                }
                (None, None) => AggGroup {
                    destination: entry.destination,
                    suffix: std::sync::Arc::from([id].as_slice()),
                },
                other => unreachable!("inconsistent partial entry: {other:?}"),
            };
            incoming.insert(key, i);
        }
        let preagg_route = program
            .preagg
            .iter()
            .map(|e| {
                let acc = match &e.target {
                    RecordTarget::Edge(edge, group) => program
                        .partial
                        .iter()
                        .position(|p| {
                            p.group.as_ref() == Some(group)
                                && p.message
                                    .is_some_and(|m| program.outgoing[m].next_hop == edge.1)
                        })
                        .unwrap_or_else(|| panic!("{id}: no accumulator for {:?}", e.target)),
                    RecordTarget::Local(d) => program
                        .partial
                        .iter()
                        .position(|p| p.destination == *d && p.message.is_none())
                        .unwrap_or_else(|| panic!("{id}: no local accumulator for {d}")),
                };
                let slot = program.partial[acc]
                    .inputs
                    .iter()
                    .position(|k| *k == InputKey::Pre(e.source))
                    .unwrap_or_else(|| panic!("{id}: no Pre({}) slot in entry {acc}", e.source));
                (acc, slot)
            })
            .collect();
        let staged = vec![Vec::new(); program.outgoing.len()];
        let emitted = vec![false; program.outgoing.len()];
        NodeMachine {
            id,
            program,
            accs,
            incoming,
            preagg_route,
            staged,
            emitted,
            results: BTreeMap::new(),
        }
    }

    /// Rearms the automaton for a fresh round without reallocating any
    /// of its state.
    pub fn reset(&mut self) {
        for acc in &mut self.accs {
            acc.slots.fill(None);
            acc.filled = 0;
            acc.fired = false;
        }
        self.emitted.fill(false);
        for buf in &mut self.staged {
            buf.clear();
        }
        self.results.clear();
    }

    /// Results computed at this node so far (destination nodes only).
    pub fn results(&self) -> &BTreeMap<NodeId, f64> {
        &self.results
    }

    /// True if every outgoing message fired and every accumulator
    /// completed — the node finished its round.
    pub fn is_quiescent(&self) -> bool {
        self.emitted.iter().all(|&e| e) && self.accs.iter().all(|a| a.fired)
    }

    /// Human-readable description of unfinished work (for deadlock
    /// diagnostics).
    fn pending_description(&self) -> String {
        let mut parts = Vec::new();
        for (i, &emitted) in self.emitted.iter().enumerate() {
            if !emitted {
                parts.push(format!(
                    "message {} to {}: {}/{} units staged",
                    i,
                    self.program.outgoing[i].next_hop,
                    self.staged[i].len(),
                    self.program.outgoing[i].unit_count
                ));
            }
        }
        for (i, acc) in self.accs.iter().enumerate() {
            if !acc.fired {
                parts.push(format!(
                    "{:?}: {}/{} inputs",
                    self.program.partial[i],
                    acc.filled,
                    acc.slots.len()
                ));
            }
        }
        parts.join("; ")
    }

    /// Feeds this node's own sensor reading; any messages that become
    /// ready are pushed onto `out` with buffers drawn from `pool`.
    pub fn inject_local_reading(
        &mut self,
        spec: &AggregationSpec,
        value: f64,
        pool: &mut UnitPool,
        out: &mut VecDeque<WireMessage>,
    ) {
        self.handle_raw(spec, self.id, value, pool, out);
    }

    /// Delivers one radio message; any messages that become ready are
    /// pushed onto `out`. The caller owns `message.units` and should
    /// return the buffer to the pool afterwards.
    pub fn on_receive(
        &mut self,
        spec: &AggregationSpec,
        message: &WireMessage,
        pool: &mut UnitPool,
        out: &mut VecDeque<WireMessage>,
    ) {
        debug_assert_eq!(message.to, self.id);
        for unit in &message.units {
            match unit {
                WireUnit::Raw { source, value } => {
                    self.handle_raw(spec, *source, *value, pool, out);
                }
                WireUnit::Record { group, record } => {
                    self.handle_record(spec, message.from, group, *record, pool, out);
                }
            }
        }
    }

    /// Processes a raw value available at this node (own reading or
    /// received): forwards it per the raw table and pre-aggregates it per
    /// the pre-aggregation table.
    fn handle_raw(
        &mut self,
        spec: &AggregationSpec,
        source: NodeId,
        value: f64,
        pool: &mut UnitPool,
        out: &mut VecDeque<WireMessage>,
    ) {
        for i in 0..self.program.raw.len() {
            if self.program.raw[i].source != source {
                continue;
            }
            let msg = self.program.raw[i].message;
            self.staged[msg].push(WireUnit::Raw { source, value });
            self.try_emit(msg, pool, out);
        }
        for i in 0..self.program.preagg.len() {
            if self.program.preagg[i].source != source {
                continue;
            }
            let destination = self.program.preagg[i].destination;
            let f = spec
                .function(destination)
                .expect("destination has a function");
            let part = f.pre_aggregate(source, value);
            let (acc, slot) = self.preagg_route[i];
            self.fill_slot(spec, acc, slot, part, pool, out);
        }
    }

    /// Routes an incoming record into its continuation accumulator via
    /// the interned group map — no suffix construction on the hot path.
    /// The slot key is the sending neighbor (the wire unit does not
    /// repeat it; the enclosing message carries it).
    fn handle_record(
        &mut self,
        spec: &AggregationSpec,
        from: NodeId,
        group: &AggGroup,
        record: PartialRecord,
        pool: &mut UnitPool,
        out: &mut VecDeque<WireMessage>,
    ) {
        debug_assert_eq!(group.suffix[0], self.id, "record delivered to wrong node");
        let acc = *self
            .incoming
            .get(group)
            .unwrap_or_else(|| panic!("{}: no accumulator for incoming {group:?}", self.id));
        let slot = self.program.partial[acc]
            .inputs
            .iter()
            .position(|k| *k == InputKey::Record(from))
            .unwrap_or_else(|| panic!("{}: no Record({from}) slot in entry {acc}", self.id));
        self.fill_slot(spec, acc, slot, record, pool, out);
    }

    /// Adds one input into slot `slot` of accumulator `acc`; folds and
    /// fires the accumulator when it completes.
    fn fill_slot(
        &mut self,
        spec: &AggregationSpec,
        acc: usize,
        slot: usize,
        part: PartialRecord,
        pool: &mut UnitPool,
        out: &mut VecDeque<WireMessage>,
    ) {
        {
            let a = &mut self.accs[acc];
            assert!(!a.fired, "{}: late input for entry {acc}", self.id);
            assert!(
                a.slots[slot].is_none(),
                "{}: duplicate input for entry {acc} slot {slot}",
                self.id
            );
            a.slots[slot] = Some(part);
            a.filled += 1;
            if (a.filled as usize) < a.slots.len() {
                return;
            }
            a.fired = true;
        }
        // Fold in slot order — the canonical contribution order the
        // compiled executor uses, so results match it bit-for-bit.
        let entry = &self.program.partial[acc];
        let f = spec
            .function(entry.destination)
            .expect("destination has a function");
        let mut folded: Option<PartialRecord> = None;
        for s in &self.accs[acc].slots {
            let part = s.expect("completed accumulator has all slots");
            folded = Some(match folded {
                None => part,
                Some(prev) => f.merge(prev, part),
            });
        }
        let record = folded.expect("accumulator has at least one input");
        match entry.message {
            None => {
                let d = entry.destination;
                self.results.insert(d, f.evaluate(record));
            }
            Some(msg) => {
                // The table told us which message carries this record —
                // the same cycle-safe grouping the schedule merger chose.
                let group = entry.group.clone().expect("edge-targeted record has group");
                self.staged[msg].push(WireUnit::Record { group, record });
                self.try_emit(msg, pool, out);
            }
        }
    }

    /// Emits an outgoing message once all its units are staged (§3: the
    /// merged message carries `unit_count` units). The staged buffer is
    /// moved onto the wire and replaced from the pool.
    fn try_emit(&mut self, msg: usize, pool: &mut UnitPool, out: &mut VecDeque<WireMessage>) {
        let expected = self.program.outgoing[msg].unit_count as usize;
        assert!(
            self.staged[msg].len() <= expected,
            "{}: message {msg} overfilled",
            self.id
        );
        if self.emitted[msg] || self.staged[msg].len() < expected {
            return;
        }
        self.emitted[msg] = true;
        let units = std::mem::replace(&mut self.staged[msg], pool.take());
        out.push_back(WireMessage {
            from: self.id,
            to: self.program.outgoing[msg].next_hop,
            units,
        });
    }
}

/// Outcome of one distributed round.
#[derive(Clone, Debug)]
pub struct DistributedRound {
    /// Final aggregate per destination.
    pub results: BTreeMap<NodeId, f64>,
    /// Every radio message exchanged, in delivery order.
    pub messages: Vec<WireMessage>,
}

/// A warm fleet of node automata: machines boot once, rounds rearm them
/// in place, and message buffers cycle through a [`UnitPool`] — the
/// steady-state message path is allocation-free.
#[derive(Clone, Debug)]
pub struct DistributedRunner {
    /// Participating nodes, ascending; machine index = slot.
    ids: Vec<NodeId>,
    machines: Vec<NodeMachine>,
    pool: UnitPool,
    queue: VecDeque<WireMessage>,
    results: BTreeMap<NodeId, f64>,
}

impl DistributedRunner {
    /// Boots one automaton per node in the tables.
    pub fn new(tables: &NodeTables) -> Self {
        let mut ids = Vec::new();
        let mut machines = Vec::new();
        for (n, state) in tables.nodes() {
            ids.push(n);
            machines.push(NodeMachine::new(n, state.clone()));
        }
        DistributedRunner {
            ids,
            machines,
            pool: UnitPool::new(),
            queue: VecDeque::new(),
            results: BTreeMap::new(),
        }
    }

    /// The buffer pool (for allocation accounting).
    pub fn pool(&self) -> &UnitPool {
        &self.pool
    }

    /// Runs one full round, recycling every message buffer; returns the
    /// per-destination results. This is the fast path: no message log,
    /// no per-hop allocation once the pool is warm.
    pub fn run_round(
        &mut self,
        spec: &AggregationSpec,
        readings: &BTreeMap<NodeId, f64>,
    ) -> Result<&BTreeMap<NodeId, f64>, String> {
        self.run_round_inner(spec, readings, None)?;
        Ok(&self.results)
    }

    /// Runs one full round, keeping every exchanged message (and hence
    /// allocating fresh buffers for them) for inspection.
    pub fn run_round_logged(
        &mut self,
        spec: &AggregationSpec,
        readings: &BTreeMap<NodeId, f64>,
    ) -> Result<DistributedRound, String> {
        let mut log = Vec::new();
        self.run_round_inner(spec, readings, Some(&mut log))?;
        Ok(DistributedRound {
            results: self.results.clone(),
            messages: log,
        })
    }

    fn run_round_inner(
        &mut self,
        spec: &AggregationSpec,
        readings: &BTreeMap<NodeId, f64>,
        mut log: Option<&mut Vec<WireMessage>>,
    ) -> Result<(), String> {
        self.queue.clear();
        for (i, machine) in self.machines.iter_mut().enumerate() {
            machine.reset();
            // Readings may cover only the spec's sources (matching the
            // compiled executor); a source missing its reading surfaces
            // below as a quiescence failure, not a panic.
            if let Some(&value) = readings.get(&self.ids[i]) {
                machine.inject_local_reading(spec, value, &mut self.pool, &mut self.queue);
            }
        }
        while let Some(message) = self.queue.pop_front() {
            let slot = self
                .ids
                .binary_search(&message.to)
                .map_err(|_| format!("message to {} but node has no tables", message.to))?;
            self.machines[slot].on_receive(spec, &message, &mut self.pool, &mut self.queue);
            match log.as_deref_mut() {
                Some(l) => l.push(message),
                None => self.pool.put(message.units),
            }
        }
        self.results.clear();
        for machine in &self.machines {
            self.results
                .extend(machine.results().iter().map(|(&d, &v)| (d, v)));
            if !machine.is_quiescent() {
                return Err(format!(
                    "node {} did not quiesce: {}",
                    machine.id,
                    machine.pending_description()
                ));
            }
        }
        for (d, _) in spec.functions() {
            if !self.results.contains_key(&d) {
                return Err(format!("destination {d} produced no result"));
            }
        }
        Ok(())
    }
}

/// Runs one full round of the distributed automata: every node processes
/// its own reading, messages are delivered in FIFO order until the
/// network quiesces.
///
/// Returns an error if the network deadlocks (some accumulator or message
/// never completes) — which Theorem 2 rules out for plans produced by
/// this crate. For repeated rounds, build a [`DistributedRunner`] once
/// and rearm it instead.
pub fn run_distributed_round(
    spec: &AggregationSpec,
    tables: &NodeTables,
    readings: &BTreeMap<NodeId, f64>,
) -> Result<DistributedRound, String> {
    DistributedRunner::new(tables).run_round_logged(spec, readings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::plan::GlobalPlan;
    use crate::tables::NodeTables;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn run(
        net: &Network,
        spec: &AggregationSpec,
        mode: RoutingMode,
        readings: &BTreeMap<NodeId, f64>,
    ) -> DistributedRound {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        let tables = NodeTables::build(spec, &plan);
        run_distributed_round(spec, &tables, readings).expect("no deadlock")
    }

    #[test]
    fn distributed_round_matches_reference_on_grid() {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, f64::from(v.0) - 4.5)).collect();
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_average([
                (NodeId(0), 1.0),
                (NodeId(1), 2.0),
                (NodeId(6), 1.5),
            ]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_average([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let round = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        for (d, f) in spec.functions() {
            let expected = f.reference_result(&readings);
            assert!((round.results[&d] - expected).abs() < 1e-9, "dest {d}");
        }
    }

    #[test]
    fn message_count_matches_active_edges() {
        let net = Network::with_default_energy(Deployment::great_duck_island(5));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, 3));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, 1.0 + f64::from(v.0 % 9))).collect();
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        let round = run_distributed_round(&spec, &tables, &readings).unwrap();
        // One radio message per active plan edge (full merging).
        assert_eq!(round.messages.len(), plan.solutions().len());
        // Every wire message travels a plan edge with the right unit count.
        for m in &round.messages {
            let sol = plan.solution((m.from, m.to)).expect("message on plan edge");
            assert_eq!(m.units.len(), sol.unit_count());
        }
    }

    #[test]
    fn warm_runner_rounds_reuse_every_buffer() {
        let net = Network::with_default_energy(Deployment::great_duck_island(5));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, 3));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        let mut runner = DistributedRunner::new(&tables);
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, 1.0 + f64::from(v.0 % 9))).collect();
        runner.run_round(&spec, &readings).unwrap();
        let fresh_after_warmup = runner.pool().fresh_allocations();
        assert!(fresh_after_warmup > 0, "first round must populate the pool");
        for round in 0..5 {
            let readings: BTreeMap<NodeId, f64> = net
                .nodes()
                .map(|v| (v, f64::from(v.0 % 7) + f64::from(round)))
                .collect();
            let results = runner.run_round(&spec, &readings).unwrap().clone();
            for (d, f) in spec.functions() {
                let expected = f.reference_result(&readings);
                assert!((results[&d] - expected).abs() < 1e-9, "dest {d}");
            }
        }
        assert_eq!(
            runner.pool().fresh_allocations(),
            fresh_after_warmup,
            "warm rounds must not allocate any unit buffers"
        );
        assert!(runner.pool().reuses() >= 5 * fresh_after_warmup);
    }

    #[test]
    fn self_sourcing_destination_quiesces() {
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 12.0));
        let readings: BTreeMap<NodeId, f64> = net.nodes().map(|v| (v, f64::from(v.0))).collect();
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(4),
            AggregateFunction::weighted_sum([(NodeId(4), 2.0), (NodeId(0), 1.0)]),
        );
        let round = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        assert!((round.results[&NodeId(4)] - (2.0 * 4.0 + 0.0)).abs() < 1e-12);
    }

    #[test]
    fn both_routing_modes_agree() {
        let net = Network::with_default_energy(Deployment::great_duck_island(8));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 8, 7));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, f64::from(v.0) * 0.25)).collect();
        let a = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        let b = run(&net, &spec, RoutingMode::SharedSpanningTree, &readings);
        for (d, _) in spec.functions() {
            assert!((a.results[&d] - b.results[&d]).abs() < 1e-9);
        }
    }

    #[test]
    fn corrupted_tables_are_detected_as_deadlock() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        // Sabotage: drop node 1's state entirely — the relay goes silent.
        let mut broken: BTreeMap<NodeId, _> = tables.nodes().map(|(n, s)| (n, s.clone())).collect();
        broken.remove(&NodeId(1));
        let broken = NodeTables::from_states(broken);
        let readings: BTreeMap<NodeId, f64> = net.nodes().map(|v| (v, 1.0)).collect();
        let result = run_distributed_round(&spec, &broken, &readings);
        assert!(result.is_err(), "silent relay must be detected");
    }
}
