//! Event-driven node automata executing straight from the §3 tables.
//!
//! [`crate::runtime`] evaluates a plan centrally over the unit DAG; this
//! module is the *distributed* counterpart the paper actually deploys:
//! each node runs an automaton whose entire program is its four state
//! tables ("Each node, upon receiving an incoming message unit, produces
//! and transmits all outgoing message units that are no longer waiting
//! for any additional message units" — §3). Nodes exchange
//! [`WireMessage`]s; nothing else is shared. The integration tests drive
//! both runtimes over the same workloads and require identical results,
//! which makes [`crate::tables`] load-bearing rather than merely audited.

use std::collections::{BTreeMap, VecDeque};

use m2m_graph::NodeId;

use crate::agg::PartialRecord;
use crate::edge_opt::AggGroup;
use crate::spec::AggregationSpec;
use crate::tables::{NodeState, NodeTables, RecordTarget};

/// One unit on the wire.
#[derive(Clone, Debug)]
pub enum WireUnit {
    /// A raw value, tagged by its source (§3: "a raw value, tagged by the
    /// source node identifier").
    Raw {
        /// The producing source.
        source: NodeId,
        /// The reading.
        value: f64,
    },
    /// A partial aggregate record, tagged by its continuation group
    /// ("a partial aggregate record, tagged by the destination node
    /// identifier" — the group generalizes the tag, see
    /// [`crate::edge_opt`]).
    Record {
        /// The record's group (destination + remaining route).
        group: AggGroup,
        /// The accumulated partial aggregate.
        record: PartialRecord,
    },
}

/// A radio message between neighbors.
#[derive(Clone, Debug)]
pub struct WireMessage {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The merged units.
    pub units: Vec<WireUnit>,
}

/// A record accumulator: merges `expected` inputs, then fires.
#[derive(Clone, Debug)]
struct Accumulator {
    record: Option<PartialRecord>,
    received: u32,
    expected: u32,
    fired: bool,
    /// Outgoing message carrying the completed record (`None` = local
    /// evaluation).
    message: Option<usize>,
}

/// One node's runtime automaton.
#[derive(Clone, Debug)]
pub struct NodeMachine {
    id: NodeId,
    program: NodeState,
    /// Accumulators keyed by merge target.
    accumulators: BTreeMap<RecordTarget, Accumulator>,
    /// Units staged per outgoing message index.
    staged: Vec<Vec<WireUnit>>,
    /// Messages already emitted (each outgoing message fires once).
    emitted: Vec<bool>,
    /// Final results if this node is a destination.
    results: BTreeMap<NodeId, f64>,
}

impl NodeMachine {
    /// Boots a node from its disseminated state tables.
    pub fn new(id: NodeId, program: NodeState) -> Self {
        let mut accumulators = BTreeMap::new();
        for entry in &program.partial {
            let target = match (&entry.group, entry.message) {
                (Some(group), Some(msg)) => {
                    let next_hop = program.outgoing[msg].next_hop;
                    RecordTarget::Edge((id, next_hop), group.clone())
                }
                (None, None) => RecordTarget::Local(entry.destination),
                other => unreachable!("inconsistent partial entry: {other:?}"),
            };
            accumulators.insert(
                target,
                Accumulator {
                    record: None,
                    received: 0,
                    expected: entry.merge_count,
                    fired: false,
                    message: entry.message,
                },
            );
        }
        let staged = vec![Vec::new(); program.outgoing.len()];
        let emitted = vec![false; program.outgoing.len()];
        NodeMachine {
            id,
            program,
            accumulators,
            staged,
            emitted,
            results: BTreeMap::new(),
        }
    }

    /// Results computed at this node so far (destination nodes only).
    pub fn results(&self) -> &BTreeMap<NodeId, f64> {
        &self.results
    }

    /// True if every outgoing message fired and every accumulator
    /// completed — the node finished its round.
    pub fn is_quiescent(&self) -> bool {
        self.emitted.iter().all(|&e| e) && self.accumulators.values().all(|a| a.fired)
    }

    /// Human-readable description of unfinished work (for deadlock
    /// diagnostics).
    fn pending_description(&self) -> String {
        let mut parts = Vec::new();
        for (i, &emitted) in self.emitted.iter().enumerate() {
            if !emitted {
                parts.push(format!(
                    "message {} to {}: {}/{} units staged",
                    i,
                    self.program.outgoing[i].next_hop,
                    self.staged[i].len(),
                    self.program.outgoing[i].unit_count
                ));
            }
        }
        for (target, acc) in &self.accumulators {
            if !acc.fired {
                parts.push(format!(
                    "{target:?}: {}/{} inputs",
                    acc.received, acc.expected
                ));
            }
        }
        parts.join("; ")
    }

    /// Feeds this node's own sensor reading; returns any messages that
    /// become ready.
    pub fn inject_local_reading(&mut self, spec: &AggregationSpec, value: f64) -> Vec<WireMessage> {
        self.handle_raw(spec, self.id, value)
    }

    /// Delivers one radio message; returns any messages that become
    /// ready.
    pub fn on_receive(
        &mut self,
        spec: &AggregationSpec,
        message: &WireMessage,
    ) -> Vec<WireMessage> {
        debug_assert_eq!(message.to, self.id);
        let mut out = Vec::new();
        for unit in &message.units {
            match unit {
                WireUnit::Raw { source, value } => {
                    out.extend(self.handle_raw(spec, *source, *value));
                }
                WireUnit::Record { group, record } => {
                    out.extend(self.handle_record(spec, group, *record));
                }
            }
        }
        out
    }

    /// Processes a raw value available at this node (own reading or
    /// received): forwards it per the raw table and pre-aggregates it per
    /// the pre-aggregation table.
    fn handle_raw(
        &mut self,
        spec: &AggregationSpec,
        source: NodeId,
        value: f64,
    ) -> Vec<WireMessage> {
        let mut out = Vec::new();
        let forwards: Vec<usize> = self
            .program
            .raw
            .iter()
            .filter(|e| e.source == source)
            .map(|e| e.message)
            .collect();
        for msg in forwards {
            self.staged[msg].push(WireUnit::Raw { source, value });
            out.extend(self.try_emit(msg));
        }
        let preaggs: Vec<(NodeId, RecordTarget)> = self
            .program
            .preagg
            .iter()
            .filter(|e| e.source == source)
            .map(|e| (e.destination, e.target.clone()))
            .collect();
        for (destination, target) in preaggs {
            let f = spec
                .function(destination)
                .expect("destination has a function");
            let part = f.pre_aggregate(source, value);
            out.extend(self.merge_into(spec, &target, part));
        }
        out
    }

    /// Merges an incoming record into its continuation accumulator.
    fn handle_record(
        &mut self,
        spec: &AggregationSpec,
        group: &AggGroup,
        record: PartialRecord,
    ) -> Vec<WireMessage> {
        debug_assert_eq!(group.suffix[0], self.id, "record delivered to wrong node");
        let target = if group.suffix.len() == 1 {
            RecordTarget::Local(group.destination)
        } else {
            RecordTarget::Edge(
                (self.id, group.suffix[1]),
                AggGroup {
                    destination: group.destination,
                    suffix: group.suffix[1..].into(),
                },
            )
        };
        self.merge_into(spec, &target, record)
    }

    /// Adds one input to an accumulator; fires it when complete.
    fn merge_into(
        &mut self,
        spec: &AggregationSpec,
        target: &RecordTarget,
        part: PartialRecord,
    ) -> Vec<WireMessage> {
        let destination = match target {
            RecordTarget::Edge(_, g) => g.destination,
            RecordTarget::Local(d) => *d,
        };
        let f = spec
            .function(destination)
            .expect("destination has a function");
        let acc = self
            .accumulators
            .get_mut(target)
            .unwrap_or_else(|| panic!("{}: no accumulator for {target:?}", self.id));
        assert!(!acc.fired, "{}: late input for {target:?}", self.id);
        acc.record = Some(match acc.record.take() {
            None => part,
            Some(prev) => f.merge(prev, part),
        });
        acc.received += 1;
        if acc.received < acc.expected {
            return Vec::new();
        }
        acc.fired = true;
        let record = acc.record.expect("completed accumulator has a record");
        let message = acc.message;
        match target.clone() {
            RecordTarget::Local(d) => {
                self.results.insert(d, f.evaluate(record));
                Vec::new()
            }
            RecordTarget::Edge(_, group) => {
                // The table told us which message carries this record —
                // the same cycle-safe grouping the schedule merger chose.
                let msg = message.expect("edge-targeted record has a message");
                self.staged[msg].push(WireUnit::Record { group, record });
                self.try_emit(msg)
            }
        }
    }

    /// Emits an outgoing message once all its units are staged (§3: the
    /// merged message carries `unit_count` units).
    fn try_emit(&mut self, msg: usize) -> Vec<WireMessage> {
        let expected = self.program.outgoing[msg].unit_count as usize;
        assert!(
            self.staged[msg].len() <= expected,
            "{}: message {msg} overfilled",
            self.id
        );
        if self.emitted[msg] || self.staged[msg].len() < expected {
            return Vec::new();
        }
        self.emitted[msg] = true;
        vec![WireMessage {
            from: self.id,
            to: self.program.outgoing[msg].next_hop,
            units: std::mem::take(&mut self.staged[msg]),
        }]
    }
}

/// Outcome of one distributed round.
#[derive(Clone, Debug)]
pub struct DistributedRound {
    /// Final aggregate per destination.
    pub results: BTreeMap<NodeId, f64>,
    /// Every radio message exchanged, in delivery order.
    pub messages: Vec<WireMessage>,
}

/// Runs one full round of the distributed automata: every node processes
/// its own reading, messages are delivered in FIFO order until the
/// network quiesces.
///
/// Returns an error if the network deadlocks (some accumulator or message
/// never completes) — which Theorem 2 rules out for plans produced by
/// this crate.
pub fn run_distributed_round(
    spec: &AggregationSpec,
    tables: &NodeTables,
    readings: &BTreeMap<NodeId, f64>,
) -> Result<DistributedRound, String> {
    let mut machines: BTreeMap<NodeId, NodeMachine> = tables
        .nodes()
        .map(|(n, state)| (n, NodeMachine::new(n, state.clone())))
        .collect();

    let mut in_flight: VecDeque<WireMessage> = VecDeque::new();
    let mut log = Vec::new();
    for (&node, machine) in machines.iter_mut() {
        let value = *readings
            .get(&node)
            .unwrap_or_else(|| panic!("no reading for node {node}"));
        in_flight.extend(machine.inject_local_reading(spec, value));
    }
    while let Some(message) = in_flight.pop_front() {
        let receiver = machines
            .get_mut(&message.to)
            .ok_or_else(|| format!("message to {} but node has no tables", message.to))?;
        in_flight.extend(receiver.on_receive(spec, &message));
        log.push(message);
    }

    let mut results = BTreeMap::new();
    for machine in machines.values() {
        results.extend(machine.results().iter().map(|(&d, &v)| (d, v)));
        if !machine.is_quiescent() {
            return Err(format!(
                "node {} did not quiesce: {}",
                machine.id,
                machine.pending_description()
            ));
        }
    }
    for (d, _) in spec.functions() {
        if !results.contains_key(&d) {
            return Err(format!("destination {d} produced no result"));
        }
    }
    Ok(DistributedRound {
        results,
        messages: log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::plan::GlobalPlan;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn run(
        net: &Network,
        spec: &AggregationSpec,
        mode: RoutingMode,
        readings: &BTreeMap<NodeId, f64>,
    ) -> DistributedRound {
        let routing = RoutingTables::build(net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(net, spec, &routing);
        let tables = NodeTables::build(spec, &plan);
        run_distributed_round(spec, &tables, readings).expect("no deadlock")
    }

    #[test]
    fn distributed_round_matches_reference_on_grid() {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, f64::from(v.0) - 4.5)).collect();
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(12),
            AggregateFunction::weighted_average([
                (NodeId(0), 1.0),
                (NodeId(1), 2.0),
                (NodeId(6), 1.5),
            ]),
        );
        spec.add_function(
            NodeId(15),
            AggregateFunction::weighted_average([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let round = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        for (d, f) in spec.functions() {
            let expected = f.reference_result(&readings);
            assert!((round.results[&d] - expected).abs() < 1e-9, "dest {d}");
        }
    }

    #[test]
    fn message_count_matches_active_edges() {
        let net = Network::with_default_energy(Deployment::great_duck_island(5));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(10, 10, 3));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, 1.0 + f64::from(v.0 % 9))).collect();
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        let round = run_distributed_round(&spec, &tables, &readings).unwrap();
        // One radio message per active plan edge (full merging).
        assert_eq!(round.messages.len(), plan.solutions().len());
        // Every wire message travels a plan edge with the right unit count.
        for m in &round.messages {
            let sol = plan.solution((m.from, m.to)).expect("message on plan edge");
            assert_eq!(m.units.len(), sol.unit_count());
        }
    }

    #[test]
    fn self_sourcing_destination_quiesces() {
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 12.0));
        let readings: BTreeMap<NodeId, f64> = net.nodes().map(|v| (v, f64::from(v.0))).collect();
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(4),
            AggregateFunction::weighted_sum([(NodeId(4), 2.0), (NodeId(0), 1.0)]),
        );
        let round = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        assert!((round.results[&NodeId(4)] - (2.0 * 4.0 + 0.0)).abs() < 1e-12);
    }

    #[test]
    fn both_routing_modes_agree() {
        let net = Network::with_default_energy(Deployment::great_duck_island(8));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 8, 7));
        let readings: BTreeMap<NodeId, f64> =
            net.nodes().map(|v| (v, f64::from(v.0) * 0.25)).collect();
        let a = run(&net, &spec, RoutingMode::ShortestPathTrees, &readings);
        let b = run(&net, &spec, RoutingMode::SharedSpanningTree, &readings);
        for (d, _) in spec.functions() {
            assert!((a.results[&d] - b.results[&d]).abs() < 1e-9);
        }
    }

    #[test]
    fn corrupted_tables_are_detected_as_deadlock() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        let mut spec = AggregationSpec::new();
        spec.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let tables = NodeTables::build(&spec, &plan);
        // Sabotage: drop node 1's state entirely — the relay goes silent.
        let mut broken: BTreeMap<NodeId, _> = tables.nodes().map(|(n, s)| (n, s.clone())).collect();
        broken.remove(&NodeId(1));
        let broken = NodeTables::from_states(broken);
        let readings: BTreeMap<NodeId, f64> = net.nodes().map(|v| (v, 1.0)).collect();
        let result = run_distributed_round(&spec, &broken, &readings);
        assert!(result.is_err(), "silent relay must be detected");
    }
}
