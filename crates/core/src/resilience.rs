//! Slotted execution under transient link failures (§3, "Handling
//! Failures").
//!
//! The paper's fully specified routes require "reliable message delivery
//! on every hop (using acknowledgments and retransmissions)". This module
//! is the legacy *delivery-level* view of that simulation: makespan,
//! retransmission count, and energy for one round under a seeded
//! [`DeliveryModel`], with unlimited retries up to a slot budget. It is a
//! thin façade over the fault engine ([`crate::faults::FaultyExec`]) —
//! the same compiled executor that also computes degraded results and
//! per-destination coverage; here only the delivery ledger is reported.
//! The outcome quantifies the §3 motivation for milestones: the round's
//! makespan and energy grow with the failure rate when every hop is
//! pinned.

use m2m_graph::bridges::bridges;
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::Network;

use crate::exec::CompiledSchedule;
use crate::faults::{FaultyExec, RetryPolicy};
use crate::metrics::RoundCost;
use crate::schedule::Schedule;

/// Radio links the communication layer cannot route around: the bridges
/// of the connectivity graph. Milestone routing (§3) only helps where a
/// detour exists; a deployment review should treat these links — and any
/// plan traffic crossing them — as the dominant failure risk.
pub fn critical_links(network: &Network) -> Vec<(NodeId, NodeId)> {
    bridges(network.graph())
}

/// The subset of a schedule's messages that cross a critical link
/// (in either direction), as indices into `schedule.messages`.
pub fn messages_on_critical_links(network: &Network, schedule: &Schedule) -> Vec<usize> {
    let critical = critical_links(network);
    schedule
        .messages
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            let (a, b) = m.edge;
            let key = if a < b { (a, b) } else { (b, a) };
            critical.binary_search(&key).is_ok()
        })
        .map(|(i, _)| i)
        .collect()
}

/// Result of one failure-prone round.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceOutcome {
    /// Slots actually used (≥ the failure-free makespan).
    pub slots_used: u32,
    /// Failed transmission attempts.
    pub retransmissions: usize,
    /// Energy including retransmissions (failed attempts pay transmit
    /// energy; receive energy is paid only on successful delivery).
    pub cost: RoundCost,
    /// False if `max_slots` elapsed before every message was delivered.
    pub delivered: bool,
}

/// Executes one round of `compiled` under `failures`, with `round_salt`
/// decorrelating this round's failures from other rounds'.
///
/// A message becomes *ready* once every message it waits for has been
/// delivered; it is attempted in every slot from `max(its assigned slot,
/// readiness)` until its link is up. Retries never give up on a message
/// (the paper's acknowledge-and-retransmit hop contract), but the round
/// as a whole is abandoned after `max_slots`.
///
/// One-shot convenience over [`FaultyExec`]; multi-round callers should
/// build the engine once and call [`FaultyExec::run_delivery_only`] per
/// round.
pub fn execute_with_failures(
    network: &Network,
    compiled: &CompiledSchedule,
    failures: &DeliveryModel,
    round_salt: u64,
    max_slots: u32,
) -> ResilienceOutcome {
    let engine = FaultyExec::new(network, compiled);
    let mut scratch = engine.scratch();
    let policy = RetryPolicy::unlimited(max_slots);
    let (slots_used, retransmissions, _dropped, cost, delivered) =
        engine.run_delivery_only(failures, &policy, round_salt, &mut scratch);
    ResilienceOutcome {
        slots_used,
        retransmissions,
        cost,
        delivered,
    }
}

/// Averages [`execute_with_failures`] over `rounds` independent rounds.
/// Returns `(mean slots, mean retransmissions, mean energy µJ, delivery
/// rate)`. The fault engine is built once and reused for every round.
pub fn average_over_rounds(
    network: &Network,
    compiled: &CompiledSchedule,
    failures: &DeliveryModel,
    rounds: u32,
    max_slots: u32,
) -> (f64, f64, f64, f64) {
    let engine = FaultyExec::new(network, compiled);
    let mut scratch = engine.scratch();
    let policy = RetryPolicy::unlimited(max_slots);
    let mut slot_sum = 0.0;
    let mut retx_sum = 0.0;
    let mut energy_sum = 0.0;
    let mut delivered_rounds = 0u32;
    for r in 0..rounds {
        let salt = u64::from(r).wrapping_mul(crate::faults::SALT_STRIDE);
        let (slots_used, retransmissions, _dropped, cost, delivered) =
            engine.run_delivery_only(failures, &policy, salt, &mut scratch);
        slot_sum += f64::from(slots_used);
        retx_sum += retransmissions as f64;
        energy_sum += cost.total_uj();
        delivered_rounds += u32::from(delivered);
    }
    let n = f64::from(rounds);
    (
        slot_sum / n,
        retx_sum / n,
        energy_sum / n,
        f64::from(delivered_rounds) / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GlobalPlan;
    use crate::slots::assign_slots;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn setup() -> (Network, CompiledSchedule) {
        let net = Network::with_default_energy(Deployment::great_duck_island(6));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 10, 2));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
        (net, compiled)
    }

    #[test]
    fn reliable_links_match_the_static_schedule() {
        let (net, compiled) = setup();
        let out = execute_with_failures(&net, &compiled, &DeliveryModel::reliable(), 0, 10_000);
        assert!(out.delivered);
        assert_eq!(out.retransmissions, 0);
        let slots = assign_slots(&net, compiled.schedule());
        assert_eq!(out.slots_used, slots.slot_count);
        let baseline = compiled.schedule().round_cost(net.energy());
        assert!((out.cost.total_uj() - baseline.total_uj()).abs() < 1e-6);
        assert_eq!(out.cost.messages, baseline.messages);
    }

    #[test]
    fn fault_engine_reuse_matches_one_shot() {
        let (net, compiled) = setup();
        let engine = FaultyExec::new(&net, &compiled);
        let mut scratch = engine.scratch();
        let policy = RetryPolicy::unlimited(10_000);
        let flaky = DeliveryModel::uniform(0.3, 5);
        for salt in [0u64, 7, 99] {
            let fresh = execute_with_failures(&net, &compiled, &flaky, salt, 10_000);
            let (slots_used, retransmissions, _, cost, delivered) =
                engine.run_delivery_only(&flaky, &policy, salt, &mut scratch);
            let reused = ResilienceOutcome {
                slots_used,
                retransmissions,
                cost,
                delivered,
            };
            assert_eq!(fresh, reused, "salt={salt}");
        }
    }

    #[test]
    fn failures_cost_retransmissions_and_slots() {
        let (net, compiled) = setup();
        let flaky = DeliveryModel::uniform(0.3, 5);
        let out = execute_with_failures(&net, &compiled, &flaky, 1, 10_000);
        assert!(out.delivered);
        assert!(out.retransmissions > 0);
        let slots = assign_slots(&net, compiled.schedule());
        assert!(out.slots_used >= slots.slot_count);
        let baseline = compiled.schedule().round_cost(net.energy());
        assert!(
            out.cost.tx_uj > baseline.tx_uj,
            "failed attempts burn tx energy"
        );
        assert!(
            (out.cost.rx_uj - baseline.rx_uj).abs() < 1e-6,
            "rx only on delivery"
        );
    }

    #[test]
    fn energy_grows_with_failure_rate() {
        let (net, compiled) = setup();
        let mut previous = 0.0;
        for p in [0.0, 0.2, 0.4] {
            let model = DeliveryModel::uniform(p, 9);
            let (_, _, energy, delivery) = average_over_rounds(&net, &compiled, &model, 10, 10_000);
            assert_eq!(delivery, 1.0, "p={p} must still deliver eventually");
            assert!(energy >= previous, "energy must grow with p (p={p})");
            previous = energy;
        }
    }

    #[test]
    fn critical_links_on_a_line_are_every_link() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        assert_eq!(critical_links(&net).len(), 3);
    }

    #[test]
    fn critical_message_detection() {
        // A line network forces every message over critical links.
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        let mut spec = crate::spec::AggregationSpec::new();
        spec.add_function(
            m2m_graph::NodeId(4),
            crate::agg::AggregateFunction::weighted_sum([(m2m_graph::NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let compiled = CompiledSchedule::compile(&net, &spec, &plan).unwrap();
        let critical = messages_on_critical_links(&net, compiled.schedule());
        assert_eq!(critical.len(), compiled.schedule().messages.len());
    }

    #[test]
    fn dense_networks_have_few_critical_messages() {
        let (net, compiled) = setup();
        let critical = messages_on_critical_links(&net, compiled.schedule());
        // The GDI layout is well-connected; only a small fraction of
        // traffic should ride bridges.
        assert!(
            critical.len() * 4 <= compiled.schedule().messages.len(),
            "{} of {} messages on bridges",
            critical.len(),
            compiled.schedule().messages.len()
        );
    }

    #[test]
    fn slot_budget_can_be_exhausted() {
        let (net, compiled) = setup();
        let hopeless = DeliveryModel::uniform(1.0, 2);
        let out = execute_with_failures(&net, &compiled, &hopeless, 3, 50);
        assert!(!out.delivered);
        assert_eq!(out.cost.messages, 0);
        assert!(out.retransmissions > 0);
    }
}
