//! Slotted execution under transient link failures (§3, "Handling
//! Failures").
//!
//! The paper's fully specified routes require "reliable message delivery
//! on every hop (using acknowledgments and retransmissions)". This module
//! simulates exactly that: the TDMA schedule from [`crate::slots`] is
//! executed slot by slot against a seeded
//! [`LinkFailureModel`] — a message
//! whose link is down in its slot is retried in subsequent slots (paying
//! transmit energy per attempt), and downstream messages wait for their
//! inputs. The outcome quantifies the §3 motivation for milestones: the
//! round's makespan and energy grow with the failure rate when every hop
//! is pinned.

use m2m_graph::bridges::bridges;
use m2m_graph::NodeId;
use m2m_netsim::failure::LinkFailureModel;
use m2m_netsim::Network;

use crate::metrics::RoundCost;
use crate::schedule::Schedule;
use crate::slots::SlotSchedule;

/// Radio links the communication layer cannot route around: the bridges
/// of the connectivity graph. Milestone routing (§3) only helps where a
/// detour exists; a deployment review should treat these links — and any
/// plan traffic crossing them — as the dominant failure risk.
pub fn critical_links(network: &Network) -> Vec<(NodeId, NodeId)> {
    bridges(network.graph())
}

/// The subset of a schedule's messages that cross a critical link
/// (in either direction), as indices into `schedule.messages`.
pub fn messages_on_critical_links(network: &Network, schedule: &Schedule) -> Vec<usize> {
    let critical = critical_links(network);
    schedule
        .messages
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            let (a, b) = m.edge;
            let key = if a < b { (a, b) } else { (b, a) };
            critical.binary_search(&key).is_ok()
        })
        .map(|(i, _)| i)
        .collect()
}

/// Result of one failure-prone round.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceOutcome {
    /// Slots actually used (≥ the failure-free makespan).
    pub slots_used: u32,
    /// Failed transmission attempts.
    pub retransmissions: usize,
    /// Energy including retransmissions (failed attempts pay transmit
    /// energy; receive energy is paid only on successful delivery).
    pub cost: RoundCost,
    /// False if `max_slots` elapsed before every message was delivered.
    pub delivered: bool,
}

/// One message's precomputed execution facts.
#[derive(Clone, Debug)]
struct MessageExec {
    edge: (NodeId, NodeId),
    unit_count: usize,
    body: u32,
    /// Energy of one transmission attempt / one successful reception.
    tx_uj: f64,
    rx_uj: f64,
    /// Range into [`ResilienceExec::pred_pool`].
    preds: (u32, u32),
}

/// Failure-prone round executor compiled once per schedule: message-level
/// dependencies, bodies, and per-attempt energies are derived up front,
/// so each simulated round only walks flat arrays (the reference
/// implementation recomputed all of it per round — the dominant cost of
/// [`average_over_rounds`] sweeps).
#[derive(Clone, Debug)]
pub struct ResilienceExec {
    messages: Vec<MessageExec>,
    pred_pool: Vec<u32>,
}

/// Reusable per-round scratch for [`ResilienceExec::run`].
#[derive(Clone, Debug, Default)]
pub struct ResilienceScratch {
    delivered: Vec<bool>,
}

impl ResilienceExec {
    /// Precomputes the message-level execution facts for `schedule`.
    pub fn new(network: &Network, schedule: &Schedule) -> Self {
        let energy = network.energy();
        let message_count = schedule.messages.len();

        // Message-level dependency lists (as in the slot assigner).
        let mut message_of = vec![usize::MAX; schedule.units.len()];
        for (m, msg) in schedule.messages.iter().enumerate() {
            for &u in &msg.units {
                message_of[u] = m;
            }
        }
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); message_count];
        for &(u, v) in &schedule.unit_arcs {
            let (a, b) = (message_of[u], message_of[v]);
            if a != b && !preds[b].contains(&(a as u32)) {
                preds[b].push(a as u32);
            }
        }

        let mut messages = Vec::with_capacity(message_count);
        let mut pred_pool: Vec<u32> = Vec::new();
        for (m, msg) in schedule.messages.iter().enumerate() {
            let body: u32 = msg
                .units
                .iter()
                .map(|&u| schedule.units[u].size_bytes)
                .sum();
            let start = pred_pool.len() as u32;
            pred_pool.extend(&preds[m]);
            messages.push(MessageExec {
                edge: msg.edge,
                unit_count: msg.units.len(),
                body,
                tx_uj: energy.tx_cost_uj(body),
                rx_uj: energy.rx_cost_uj(body),
                preds: (start, pred_pool.len() as u32),
            });
        }
        crate::m2m_log!(
            crate::telemetry::Level::Debug,
            "resilience exec compiled: {} messages, {} dependency arcs",
            messages.len(),
            pred_pool.len()
        );
        ResilienceExec {
            messages,
            pred_pool,
        }
    }

    /// Allocates a scratch arena sized for this executor.
    pub fn scratch(&self) -> ResilienceScratch {
        ResilienceScratch {
            delivered: vec![false; self.messages.len()],
        }
    }

    /// Executes one round under `failures` (see [`execute_with_failures`]
    /// for the model), reusing `scratch` — no allocation per round.
    pub fn run(
        &self,
        slots: &SlotSchedule,
        failures: &LinkFailureModel,
        round_salt: u64,
        max_slots: u32,
        scratch: &mut ResilienceScratch,
    ) -> ResilienceOutcome {
        let message_count = self.messages.len();
        assert_eq!(
            scratch.delivered.len(),
            message_count,
            "scratch/exec mismatch"
        );
        scratch.delivered.fill(false);
        let delivered = &mut scratch.delivered;

        let mut cost = RoundCost::default();
        let mut retransmissions = 0usize;
        let mut slots_used = 0u32;
        let mut remaining = message_count;

        for slot in 0..max_slots {
            if remaining == 0 {
                break;
            }
            let mut progressed = false;
            for m in 0..message_count {
                let msg = &self.messages[m];
                let preds = &self.pred_pool[msg.preds.0 as usize..msg.preds.1 as usize];
                if delivered[m]
                    || slots.slots[m] > slot
                    || preds.iter().any(|&p| !delivered[p as usize])
                {
                    continue;
                }
                // Every attempt pays transmit energy.
                cost.tx_uj += msg.tx_uj;
                if failures.is_down(
                    msg.edge.0,
                    msg.edge.1,
                    round_salt.wrapping_add(u64::from(slot)),
                ) {
                    retransmissions += 1;
                    continue;
                }
                cost.rx_uj += msg.rx_uj;
                cost.messages += 1;
                cost.units += msg.unit_count;
                cost.payload_bytes += u64::from(msg.body);
                delivered[m] = true;
                remaining -= 1;
                slots_used = slots_used.max(slot + 1);
                progressed = true;
            }
            // Even slots with only failed attempts advance the clock.
            if !progressed && remaining > 0 {
                slots_used = slots_used.max(slot + 1);
            }
        }

        ResilienceOutcome {
            slots_used,
            retransmissions,
            cost,
            delivered: remaining == 0,
        }
    }
}

/// Executes one round of `schedule` under `failures`, with `round_salt`
/// decorrelating this round's failures from other rounds'.
///
/// A message becomes *ready* once every message it waits for has been
/// delivered; it is attempted in every slot from `max(its assigned slot,
/// readiness)` until its link is up. Retries give up after `max_slots`.
///
/// One-shot convenience over [`ResilienceExec`]; multi-round callers
/// should build the executor once.
pub fn execute_with_failures(
    network: &Network,
    schedule: &Schedule,
    slots: &SlotSchedule,
    failures: &LinkFailureModel,
    round_salt: u64,
    max_slots: u32,
) -> ResilienceOutcome {
    let exec = ResilienceExec::new(network, schedule);
    let mut scratch = exec.scratch();
    exec.run(slots, failures, round_salt, max_slots, &mut scratch)
}

/// Averages [`execute_with_failures`] over `rounds` independent rounds.
/// Returns `(mean slots, mean retransmissions, mean energy µJ, delivery
/// rate)`. The executor is compiled once and reused for every round.
pub fn average_over_rounds(
    network: &Network,
    schedule: &Schedule,
    slots: &SlotSchedule,
    failures: &LinkFailureModel,
    rounds: u32,
    max_slots: u32,
) -> (f64, f64, f64, f64) {
    let exec = ResilienceExec::new(network, schedule);
    let mut scratch = exec.scratch();
    let mut slot_sum = 0.0;
    let mut retx_sum = 0.0;
    let mut energy_sum = 0.0;
    let mut delivered = 0u32;
    for r in 0..rounds {
        let out = exec.run(
            slots,
            failures,
            u64::from(r) * 1_000_003,
            max_slots,
            &mut scratch,
        );
        slot_sum += f64::from(out.slots_used);
        retx_sum += out.retransmissions as f64;
        energy_sum += out.cost.total_uj();
        delivered += u32::from(out.delivered);
    }
    let n = f64::from(rounds);
    (
        slot_sum / n,
        retx_sum / n,
        energy_sum / n,
        f64::from(delivered) / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GlobalPlan;
    use crate::schedule::build_schedule;
    use crate::slots::assign_slots;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn setup() -> (Network, Schedule, SlotSchedule) {
        let net = Network::with_default_energy(Deployment::great_duck_island(6));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 10, 2));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let slots = assign_slots(&net, &schedule);
        (net, schedule, slots)
    }

    #[test]
    fn reliable_links_match_the_static_schedule() {
        let (net, schedule, slots) = setup();
        let out = execute_with_failures(
            &net,
            &schedule,
            &slots,
            &LinkFailureModel::reliable(),
            0,
            10_000,
        );
        assert!(out.delivered);
        assert_eq!(out.retransmissions, 0);
        assert_eq!(out.slots_used, slots.slot_count);
        let baseline = schedule.round_cost(net.energy());
        assert!((out.cost.total_uj() - baseline.total_uj()).abs() < 1e-6);
        assert_eq!(out.cost.messages, baseline.messages);
    }

    #[test]
    fn compiled_exec_reuse_matches_one_shot() {
        let (net, schedule, slots) = setup();
        let exec = ResilienceExec::new(&net, &schedule);
        let mut scratch = exec.scratch();
        let flaky = LinkFailureModel::new(0.3, 5);
        for salt in [0u64, 7, 99] {
            let fresh = execute_with_failures(&net, &schedule, &slots, &flaky, salt, 10_000);
            let reused = exec.run(&slots, &flaky, salt, 10_000, &mut scratch);
            assert_eq!(fresh, reused, "salt={salt}");
        }
    }

    #[test]
    fn failures_cost_retransmissions_and_slots() {
        let (net, schedule, slots) = setup();
        let flaky = LinkFailureModel::new(0.3, 5);
        let out = execute_with_failures(&net, &schedule, &slots, &flaky, 1, 10_000);
        assert!(out.delivered);
        assert!(out.retransmissions > 0);
        assert!(out.slots_used >= slots.slot_count);
        let baseline = schedule.round_cost(net.energy());
        assert!(
            out.cost.tx_uj > baseline.tx_uj,
            "failed attempts burn tx energy"
        );
        assert!(
            (out.cost.rx_uj - baseline.rx_uj).abs() < 1e-6,
            "rx only on delivery"
        );
    }

    #[test]
    fn energy_grows_with_failure_rate() {
        let (net, schedule, slots) = setup();
        let mut previous = 0.0;
        for p in [0.0, 0.2, 0.4] {
            let model = LinkFailureModel::new(p, 9);
            let (_, _, energy, delivery) =
                average_over_rounds(&net, &schedule, &slots, &model, 10, 10_000);
            assert_eq!(delivery, 1.0, "p={p} must still deliver eventually");
            assert!(energy >= previous, "energy must grow with p (p={p})");
            previous = energy;
        }
    }

    #[test]
    fn critical_links_on_a_line_are_every_link() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        assert_eq!(critical_links(&net).len(), 3);
    }

    #[test]
    fn critical_message_detection() {
        // A line network forces every message over critical links.
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        let mut spec = crate::spec::AggregationSpec::new();
        spec.add_function(
            m2m_graph::NodeId(4),
            crate::agg::AggregateFunction::weighted_sum([(m2m_graph::NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let critical = messages_on_critical_links(&net, &schedule);
        assert_eq!(critical.len(), schedule.messages.len());
    }

    #[test]
    fn dense_networks_have_few_critical_messages() {
        let (net, schedule, _) = setup();
        let critical = messages_on_critical_links(&net, &schedule);
        // The GDI layout is well-connected; only a small fraction of
        // traffic should ride bridges.
        assert!(
            critical.len() * 4 <= schedule.messages.len(),
            "{} of {} messages on bridges",
            critical.len(),
            schedule.messages.len()
        );
    }

    #[test]
    fn slot_budget_can_be_exhausted() {
        let (net, schedule, slots) = setup();
        let hopeless = LinkFailureModel::new(1.0, 2);
        let out = execute_with_failures(&net, &schedule, &slots, &hopeless, 3, 50);
        assert!(!out.delivered);
        assert_eq!(out.cost.messages, 0);
        assert!(out.retransmissions > 0);
    }
}
