//! Slotted execution under transient link failures (§3, "Handling
//! Failures").
//!
//! The paper's fully specified routes require "reliable message delivery
//! on every hop (using acknowledgments and retransmissions)". This module
//! simulates exactly that: the TDMA schedule from [`crate::slots`] is
//! executed slot by slot against a seeded
//! [`LinkFailureModel`] — a message
//! whose link is down in its slot is retried in subsequent slots (paying
//! transmit energy per attempt), and downstream messages wait for their
//! inputs. The outcome quantifies the §3 motivation for milestones: the
//! round's makespan and energy grow with the failure rate when every hop
//! is pinned.

use m2m_graph::bridges::bridges;
use m2m_graph::NodeId;
use m2m_netsim::failure::LinkFailureModel;
use m2m_netsim::Network;

use crate::metrics::RoundCost;
use crate::schedule::Schedule;
use crate::slots::SlotSchedule;

/// Radio links the communication layer cannot route around: the bridges
/// of the connectivity graph. Milestone routing (§3) only helps where a
/// detour exists; a deployment review should treat these links — and any
/// plan traffic crossing them — as the dominant failure risk.
pub fn critical_links(network: &Network) -> Vec<(NodeId, NodeId)> {
    bridges(network.graph())
}

/// The subset of a schedule's messages that cross a critical link
/// (in either direction), as indices into `schedule.messages`.
pub fn messages_on_critical_links(network: &Network, schedule: &Schedule) -> Vec<usize> {
    let critical = critical_links(network);
    schedule
        .messages
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            let (a, b) = m.edge;
            let key = if a < b { (a, b) } else { (b, a) };
            critical.binary_search(&key).is_ok()
        })
        .map(|(i, _)| i)
        .collect()
}

/// Result of one failure-prone round.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceOutcome {
    /// Slots actually used (≥ the failure-free makespan).
    pub slots_used: u32,
    /// Failed transmission attempts.
    pub retransmissions: usize,
    /// Energy including retransmissions (failed attempts pay transmit
    /// energy; receive energy is paid only on successful delivery).
    pub cost: RoundCost,
    /// False if `max_slots` elapsed before every message was delivered.
    pub delivered: bool,
}

/// Executes one round of `schedule` under `failures`, with `round_salt`
/// decorrelating this round's failures from other rounds'.
///
/// A message becomes *ready* once every message it waits for has been
/// delivered; it is attempted in every slot from `max(its assigned slot,
/// readiness)` until its link is up. Retries give up after `max_slots`.
pub fn execute_with_failures(
    network: &Network,
    schedule: &Schedule,
    slots: &SlotSchedule,
    failures: &LinkFailureModel,
    round_salt: u64,
    max_slots: u32,
) -> ResilienceOutcome {
    let energy = network.energy();
    let message_count = schedule.messages.len();

    // Message-level dependency lists (as in the slot assigner).
    let mut message_of = vec![usize::MAX; schedule.units.len()];
    for (m, msg) in schedule.messages.iter().enumerate() {
        for &u in &msg.units {
            message_of[u] = m;
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); message_count];
    for &(u, v) in &schedule.unit_arcs {
        let (a, b) = (message_of[u], message_of[v]);
        if a != b && !preds[b].contains(&a) {
            preds[b].push(a);
        }
    }

    let bodies: Vec<u32> = schedule
        .messages
        .iter()
        .map(|m| m.units.iter().map(|&u| schedule.units[u].size_bytes).sum())
        .collect();

    let mut delivered = vec![false; message_count];
    let mut cost = RoundCost::default();
    let mut retransmissions = 0usize;
    let mut slots_used = 0u32;
    let mut remaining = message_count;

    for slot in 0..max_slots {
        if remaining == 0 {
            break;
        }
        let mut progressed = false;
        for m in 0..message_count {
            if delivered[m]
                || slots.slots[m] > slot
                || preds[m].iter().any(|&p| !delivered[p])
            {
                continue;
            }
            let edge = schedule.messages[m].edge;
            // Every attempt pays transmit energy.
            cost.tx_uj += energy.tx_cost_uj(bodies[m]);
            if failures.is_down(edge.0, edge.1, round_salt.wrapping_add(u64::from(slot))) {
                retransmissions += 1;
                continue;
            }
            cost.rx_uj += energy.rx_cost_uj(bodies[m]);
            cost.messages += 1;
            cost.units += schedule.messages[m].units.len();
            cost.payload_bytes += u64::from(bodies[m]);
            delivered[m] = true;
            remaining -= 1;
            slots_used = slots_used.max(slot + 1);
            progressed = true;
        }
        // Even slots with only failed attempts advance the clock.
        if !progressed && remaining > 0 {
            slots_used = slots_used.max(slot + 1);
        }
    }

    ResilienceOutcome {
        slots_used,
        retransmissions,
        cost,
        delivered: remaining == 0,
    }
}

/// Averages [`execute_with_failures`] over `rounds` independent rounds.
/// Returns `(mean slots, mean retransmissions, mean energy µJ, delivery
/// rate)`.
pub fn average_over_rounds(
    network: &Network,
    schedule: &Schedule,
    slots: &SlotSchedule,
    failures: &LinkFailureModel,
    rounds: u32,
    max_slots: u32,
) -> (f64, f64, f64, f64) {
    let mut slot_sum = 0.0;
    let mut retx_sum = 0.0;
    let mut energy_sum = 0.0;
    let mut delivered = 0u32;
    for r in 0..rounds {
        let out = execute_with_failures(
            network,
            schedule,
            slots,
            failures,
            u64::from(r) * 1_000_003,
            max_slots,
        );
        slot_sum += f64::from(out.slots_used);
        retx_sum += out.retransmissions as f64;
        energy_sum += out.cost.total_uj();
        delivered += u32::from(out.delivered);
    }
    let n = f64::from(rounds);
    (
        slot_sum / n,
        retx_sum / n,
        energy_sum / n,
        f64::from(delivered) / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GlobalPlan;
    use crate::schedule::build_schedule;
    use crate::slots::assign_slots;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, RoutingMode, RoutingTables};

    fn setup() -> (Network, Schedule, SlotSchedule) {
        let net = Network::with_default_energy(Deployment::great_duck_island(6));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(8, 10, 2));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let schedule = build_schedule(&spec, &routing, &plan).unwrap();
        let slots = assign_slots(&net, &schedule);
        (net, schedule, slots)
    }

    #[test]
    fn reliable_links_match_the_static_schedule() {
        let (net, schedule, slots) = setup();
        let out = execute_with_failures(
            &net,
            &schedule,
            &slots,
            &LinkFailureModel::reliable(),
            0,
            10_000,
        );
        assert!(out.delivered);
        assert_eq!(out.retransmissions, 0);
        assert_eq!(out.slots_used, slots.slot_count);
        let baseline = schedule.round_cost(net.energy());
        assert!((out.cost.total_uj() - baseline.total_uj()).abs() < 1e-6);
        assert_eq!(out.cost.messages, baseline.messages);
    }

    #[test]
    fn failures_cost_retransmissions_and_slots() {
        let (net, schedule, slots) = setup();
        let flaky = LinkFailureModel::new(0.3, 5);
        let out = execute_with_failures(&net, &schedule, &slots, &flaky, 1, 10_000);
        assert!(out.delivered);
        assert!(out.retransmissions > 0);
        assert!(out.slots_used >= slots.slot_count);
        let baseline = schedule.round_cost(net.energy());
        assert!(out.cost.tx_uj > baseline.tx_uj, "failed attempts burn tx energy");
        assert!((out.cost.rx_uj - baseline.rx_uj).abs() < 1e-6, "rx only on delivery");
    }

    #[test]
    fn energy_grows_with_failure_rate() {
        let (net, schedule, slots) = setup();
        let mut previous = 0.0;
        for p in [0.0, 0.2, 0.4] {
            let model = LinkFailureModel::new(p, 9);
            let (_, _, energy, delivery) =
                average_over_rounds(&net, &schedule, &slots, &model, 10, 10_000);
            assert_eq!(delivery, 1.0, "p={p} must still deliver eventually");
            assert!(energy >= previous, "energy must grow with p (p={p})");
            previous = energy;
        }
    }

    #[test]
    fn critical_links_on_a_line_are_every_link() {
        let net = Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0));
        assert_eq!(critical_links(&net).len(), 3);
    }

    #[test]
    fn critical_message_detection() {
        // A line network forces every message over critical links.
        let net = Network::with_default_energy(Deployment::grid(5, 1, 10.0, 12.0));
        let mut spec = crate::spec::AggregationSpec::new();
        spec.add_function(
            m2m_graph::NodeId(4),
            crate::agg::AggregateFunction::weighted_sum([(m2m_graph::NodeId(0), 1.0)]),
        );
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &spec, &routing);
        let schedule = build_schedule(&spec, &routing, &plan).unwrap();
        let critical = messages_on_critical_links(&net, &schedule);
        assert_eq!(critical.len(), schedule.messages.len());
    }

    #[test]
    fn dense_networks_have_few_critical_messages() {
        let (net, schedule, _) = setup();
        let critical = messages_on_critical_links(&net, &schedule);
        // The GDI layout is well-connected; only a small fraction of
        // traffic should ride bridges.
        assert!(
            critical.len() * 4 <= schedule.messages.len(),
            "{} of {} messages on bridges",
            critical.len(),
            schedule.messages.len()
        );
    }

    #[test]
    fn slot_budget_can_be_exhausted() {
        let (net, schedule, slots) = setup();
        let hopeless = LinkFailureModel::new(1.0, 2);
        let out = execute_with_failures(&net, &schedule, &slots, &hopeless, 3, 50);
        assert!(!out.delivered);
        assert_eq!(out.cost.messages, 0);
        assert!(out.retransmissions > 0);
    }
}
